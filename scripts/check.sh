#!/usr/bin/env bash
# Repository health gate: formatting, lints, build, tests. Run before pushing.
#
#   scripts/check.sh           full gate (fmt, clippy, release build, tests,
#                              bench smoke)
#   scripts/check.sh --fast    skip clippy (the slowest step) for quick loops
#   scripts/check.sh --seed N  replay the fault-injection suites with
#                              HEDC_TEST_SEED=N (the seed a failing run
#                              prints), then exit — no full gate
#   scripts/check.sh --bench-smoke
#                              run only the bench-binary smoke pass (each
#                              harness binary on a tiny config, seconds not
#                              minutes), then exit
#   scripts/check.sh --ingest-smoke
#                              run only the ingest pipeline smoke: a tiny
#                              downlink-day load (serial + parallel) plus a
#                              WAL crash/resume cycle, then exit
#   scripts/check.sh --obs-smoke
#                              run only the observability smoke: boot a node,
#                              force a slow trace, and assert it pins in the
#                              flight recorder, serves /hedc/trace/<id>, and
#                              surfaces exemplar/saturation/flight fields in
#                              stats.json, then exit
#   scripts/check.sh --pl-smoke
#                              run only the PL redundancy smoke: the
#                              zipf duplicate-heavy pl_bench on a tiny
#                              config plus the seeded coalescing/fairness/
#                              staleness suites, then exit
#   scripts/check.sh --shard-smoke
#                              run only the sharding smoke: the seeded
#                              scatter-gather oracle, shard-failover,
#                              rebalance crash-matrix, and epoch-churn
#                              suites plus the fig5_shards scale-out sweep
#                              on a tiny config, then exit
#
# The full gate also fails if the test run minted new proptest-regressions
# entries: a fresh regression file is a real counterexample that must be
# committed alongside its fix, never silently accumulated.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
seed=""
smoke_only=0
ingest_smoke_only=0
obs_smoke_only=0
pl_smoke_only=0
shard_smoke_only=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --fast) fast=1; shift ;;
    --bench-smoke) smoke_only=1; shift ;;
    --ingest-smoke) ingest_smoke_only=1; shift ;;
    --obs-smoke) obs_smoke_only=1; shift ;;
    --pl-smoke) pl_smoke_only=1; shift ;;
    --shard-smoke) shard_smoke_only=1; shift ;;
    --seed)
      [[ $# -ge 2 ]] || { echo "usage: $0 [--fast] [--bench-smoke] [--ingest-smoke] [--obs-smoke] [--pl-smoke] [--shard-smoke] [--seed N]" >&2; exit 2; }
      seed="$2"; shift 2 ;;
    *) echo "usage: $0 [--fast] [--bench-smoke] [--ingest-smoke] [--obs-smoke] [--pl-smoke] [--shard-smoke] [--seed N]" >&2; exit 2 ;;
  esac
done

# Smoke-run every bench harness binary on a tiny configuration so the
# harnesses cannot silently rot. HEDC_BENCH_SMOKE shrinks sweeps inside the
# binaries; HEDC_NET_SECS bounds the real-socket windows; reports go to a
# throwaway dir so committed results/ JSONs are never clobbered by a smoke
# pass.
bench_smoke() {
  echo "==> bench smoke (tiny configs)"
  local out
  out="$(mktemp -d)"
  run_bin() {
    echo "    -> $*"
    HEDC_BENCH_SMOKE=1 HEDC_NET_SECS=1 HEDC_RESULTS_DIR="$out" \
      cargo run --release -q -p hedc-bench --bin "$1" -- "${@:2}" >/dev/null
  }
  run_bin batch_bench --net
  run_bin fig4_browse_clients --batch --attribution
  run_bin fig5_browse_nodes --shards
  run_bin table1_processing
  run_bin table23_characteristics
  run_bin store_bench
  run_bin pl_bench
  # Every binary must have written its report.
  for report in BENCH_batch_bench BENCH_fig4_browse_clients BENCH_fig5_shards BENCH_store BENCH_pl; do
    [[ -s "$out/$report.json" ]] || {
      echo "FAIL: bench smoke produced no $report.json" >&2; exit 1; }
  done
  # The smoke reports must satisfy the documented row schema. The pl and
  # fig5_shards reports are gated even in smoke: the >=5x
  # redundancy-elimination ratio must hold on a measured run, tiny config
  # or not, and the shard sweep must still show a real (>=1.2x smoke-bar)
  # speedup; the committed full-size fig5_shards report carries the 1.6x
  # claim.
  cargo run --release -q -p hedc-bench --bin bench_schema -- "$out" \
    fig4_browse_clients fig5_shards batch_bench store pl
  rm -rf "$out"
  # The *committed* Figure-4 report must also hold: its net-tier rows carry
  # the scaling claim (check_fig4: throughput flat-or-rising 16 -> 512
  # clients, bounded p99 and shed rate), so a regression committed alongside
  # stale results cannot slip past the smoke gate.
  cargo run --release -q -p hedc-bench --bin bench_schema -- results \
    fig4_browse_clients
}

# Observability smoke: the tail-latency diagnosis loop must close end to
# end — a forced-slow trace pins in the flight recorder, /hedc/trace/<id>
# serves its critical-path waterfall, and stats.json exposes the exemplar,
# saturation, and flight-recorder fields.
obs_smoke() {
  echo "==> obs smoke (flight recorder + trace page + stats fields)"
  cargo run --release -q -p hedc-bench --bin hedc_doctor -- --obs-smoke
}

# PL redundancy smoke: the §3.5 redundant-work claim end to end — the
# zipf duplicate-heavy pl_bench (coalesce on vs off, gated by check_pl's
# >=5x ratio) plus the seeded single-flight, fairness, and recalibration-
# staleness integration suites.
pl_smoke() {
  echo "==> pl smoke (single-flight coalescing + versioned reuse + fairness)"
  local out
  out="$(mktemp -d)"
  HEDC_BENCH_SMOKE=1 HEDC_RESULTS_DIR="$out" \
    cargo run --release -q -p hedc-bench --bin pl_bench >/dev/null
  cargo run --release -q -p hedc-bench --bin bench_schema -- "$out" pl
  rm -rf "$out"
  cargo test --release -q -p hedc-pl --test coalesce --test fairness \
    --test staleness --test obs_metrics
}

# Sharding smoke: the partitioned-DM correctness tier end to end — the
# seeded scatter-gather oracle, the shard-failover fault suite, the
# rebalance crash matrix, the epoch-churn protocol suite, and the
# fig5_shards scale-out sweep (gated by check_fig5's noise-tolerant
# >=1.2x smoke bar; the committed report carries the 1.6x claim) on a
# tiny config.
shard_smoke() {
  echo "==> shard smoke (oracle + failover + rebalance + epoch churn + scale-out)"
  local out
  out="$(mktemp -d)"
  HEDC_BENCH_SMOKE=1 HEDC_RESULTS_DIR="$out" \
    cargo run --release -q -p hedc-bench --bin fig5_browse_nodes -- --shards >/dev/null
  cargo run --release -q -p hedc-bench --bin bench_schema -- "$out" fig5_shards
  rm -rf "$out"
  cargo test --release -q -p hedc-dm --test shard_prop --test shard_fault \
    --test shard_rebalance
  cargo test --release -q -p hedc-net --test shard_epoch
}

# Ingest pipeline smoke: a tiny downlink day through the serial and staged
# executors plus a WAL-backed crash/resume cycle — the whole §5.2 recovery
# path, in seconds. The report goes to a throwaway dir so the committed
# results/BENCH_ingest.json is never clobbered by a smoke pass.
ingest_smoke() {
  echo "==> ingest smoke (downlink day + crash/resume cycle)"
  local out
  out="$(mktemp -d)"
  HEDC_BENCH_SMOKE=1 HEDC_RESULTS_DIR="$out" \
    cargo run --release -q -p hedc-bench --bin ingest_bench >/dev/null
  [[ -s "$out/BENCH_ingest.json" ]] || {
    echo "FAIL: ingest smoke produced no BENCH_ingest.json" >&2; exit 1; }
  rm -rf "$out"
}

if [[ "$smoke_only" -eq 1 ]]; then
  cargo build --release -q -p hedc-bench
  bench_smoke
  echo "OK (bench smoke)"
  exit 0
fi

if [[ "$ingest_smoke_only" -eq 1 ]]; then
  cargo build --release -q -p hedc-bench
  ingest_smoke
  echo "OK (ingest smoke)"
  exit 0
fi

if [[ "$obs_smoke_only" -eq 1 ]]; then
  cargo build --release -q -p hedc-bench
  obs_smoke
  echo "OK (obs smoke)"
  exit 0
fi

if [[ "$pl_smoke_only" -eq 1 ]]; then
  cargo build --release -q -p hedc-bench
  pl_smoke
  echo "OK (pl smoke)"
  exit 0
fi

if [[ "$shard_smoke_only" -eq 1 ]]; then
  cargo build --release -q -p hedc-bench
  shard_smoke
  echo "OK (shard smoke)"
  exit 0
fi

if [[ -n "$seed" ]]; then
  # Deterministic replay: pin every FaultPlan and cache/fault suite to the
  # printed seed and run just the suites that consume it.
  echo "==> replaying fault-injection suites with HEDC_TEST_SEED=$seed"
  export HEDC_TEST_SEED="$seed"
  cargo test -q -p hedc-dm --test failover --test cache --test ingest_crash \
    --test ingest_browse --test shard_prop --test shard_fault \
    --test shard_rebalance -- --nocapture
  cargo test -q -p hedc-metadb --test paged_model -- --nocapture
  cargo test -q -p hedc-net --test cluster --test churn --test mux_prop \
    --test slow_client --test shard_epoch -- --nocapture
  cargo test -q -p hedc-pl --test coalesce --test fairness \
    --test staleness -- --nocapture
  echo "OK (seed $seed)"
  exit 0
fi

# Snapshot proptest-regressions before the tests so new counterexample
# files (or new entries in existing ones) fail the gate.
regressions_before="$(find . -path ./target -prune -o -name '*.txt' -path '*proptest-regressions*' -print 2>/dev/null | sort | xargs -r md5sum 2>/dev/null || true)"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

if [[ "$fast" -eq 0 ]]; then
  echo "==> cargo clippy --workspace -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "==> (skipping clippy: --fast)"
fi

# The tier-1 gate builds release before testing; mirror it so local runs
# catch release-only breakage (e.g. debug_assertions-gated code).
echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

bench_smoke
ingest_smoke
obs_smoke
pl_smoke
shard_smoke

# The committed results/ reports must satisfy the schema, and the committed
# tier (fig4, fig5_shards, batch, ingest, store, pl) must be present.
echo "==> bench_schema (committed results/)"
cargo run --release -q -p hedc-bench --bin bench_schema -- results \
  fig4_browse_clients fig5_shards batch_bench ingest store pl

regressions_after="$(find . -path ./target -prune -o -name '*.txt' -path '*proptest-regressions*' -print 2>/dev/null | sort | xargs -r md5sum 2>/dev/null || true)"
if [[ "$regressions_before" != "$regressions_after" ]]; then
  echo "FAIL: the test run recorded new proptest regressions:" >&2
  diff <(printf '%s\n' "$regressions_before") <(printf '%s\n' "$regressions_after") >&2 || true
  echo "fix the property violation and commit the regression file with it" >&2
  exit 1
fi

echo "OK"
