#!/usr/bin/env bash
# Repository health gate: formatting, lints, tests. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q --workspace

echo "OK"
