#!/usr/bin/env bash
# Repository health gate: formatting, lints, build, tests. Run before pushing.
#
#   scripts/check.sh          full gate (fmt, clippy, release build, tests)
#   scripts/check.sh --fast   skip clippy (the slowest step) for quick loops
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    *) echo "usage: $0 [--fast]" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

if [[ "$fast" -eq 0 ]]; then
  echo "==> cargo clippy --workspace -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "==> (skipping clippy: --fast)"
fi

# The tier-1 gate builds release before testing; mirror it so local runs
# catch release-only breakage (e.g. debug_assertions-gated code).
echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "OK"
