//! §10's closing vision: "a scientific data warehouse, even if hosting a
//! huge data collection, can be organized as a set of collaborating
//! systems. As every StreamCorder is in reality a fully functional server,
//! requests may also be sent to peer clients to allow peer to peer
//! interaction." Two fat clients mirror the repository, then browse load
//! is answered by the peers without touching the server's database.

use hedc_core::{Hedc, HedcConfig};
use hedc_dm::{DmNode, DmRouter, Rights, SessionKind};
use hedc_events::GenConfig;
use hedc_metadb::{AggFunc, Query};
use hedc_web::{CacheStrategy, StreamCorder};
use std::sync::Arc;

#[test]
fn peers_serve_browse_load_without_the_server() {
    let hedc = Hedc::start(HedcConfig::default()).unwrap();
    hedc.load_telemetry(
        &GenConfig {
            duration_ms: 20 * 60 * 1000,
            flares_per_hour: 6.0,
            background_rate: 15.0,
            seed: 1010,
            ..GenConfig::default()
        },
        usize::MAX,
    )
    .unwrap();

    // Two scientists connect fat clients and mirror the catalog.
    let mut peers = Vec::new();
    let mut corders = Vec::new();
    for (name, ip) in [("peer-a", "ip-a"), ("peer-b", "ip-b")] {
        hedc.dm()
            .create_user(name, "pw", "sci", Rights::SCIENTIST)
            .unwrap();
        let cookie = hedc.dm().login(name, "pw", ip).unwrap();
        let session = hedc.dm().session(ip, cookie, SessionKind::Hle).unwrap();
        let sc = StreamCorder::connect(Arc::clone(hedc.dm()), session, CacheStrategy::V2LocalClone)
            .unwrap();
        let (hles, _) = sc.mirror_metadata().unwrap();
        assert!(hles > 0);
        peers.push(sc.share_as_peer(name).unwrap());
        corders.push(sc);
    }

    // A router over the two peers answers browse queries.
    let router = DmRouter::new(
        peers
            .iter()
            .map(|p| Arc::clone(p) as Arc<dyn DmNode>)
            .collect(),
    );
    let server_db_before = hedc.dm().io.databases()[0].stats();
    let mut total = None;
    for _ in 0..20 {
        let r = router
            .execute_query(&Query::table("hle").aggregate(AggFunc::CountStar))
            .unwrap();
        let count = r.scalar_int().unwrap();
        assert!(count > 0);
        match total {
            None => total = Some(count),
            Some(t) => assert_eq!(t, count, "peers agree"),
        }
    }
    // The server's database saw none of it.
    let delta = hedc.dm().io.databases()[0].stats().since(&server_db_before);
    assert_eq!(delta.queries, 0, "peer network offloaded the server");
    assert_eq!(peers[0].served() + peers[1].served(), 20);
    assert!(
        peers[0].served() >= 9 && peers[1].served() >= 9,
        "round robin"
    );

    hedc.shutdown();
}

#[test]
fn v1_clients_cannot_peer_serve() {
    let hedc = Hedc::start(HedcConfig::default()).unwrap();
    hedc.dm()
        .create_user("thin", "pw", "sci", Rights::SCIENTIST)
        .unwrap();
    let cookie = hedc.dm().login("thin", "pw", "ip").unwrap();
    let session = hedc.dm().session("ip", cookie, SessionKind::Hle).unwrap();
    let sc =
        StreamCorder::connect(Arc::clone(hedc.dm()), session, CacheStrategy::V1StaticPath).unwrap();
    assert!(sc.share_as_peer("nope").is_err());
    hedc.shutdown();
}
