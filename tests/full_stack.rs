//! Cross-crate integration tests: the complete HEDC lifecycle over the
//! public API. These are the "does the assembled system behave like the
//! paper's system" tests, as opposed to each crate's unit suites.

use hedc_core::{Hedc, HedcConfig};
use hedc_dm::{Rights, SessionKind};
use hedc_events::{Calibration, GenConfig};
use hedc_metadb::{AggFunc, Expr, Query};
use hedc_pl::{Outcome, RequestSpec};
use hedc_web::{CacheStrategy, HttpRequest, StreamCorder};
use std::sync::Arc;

fn gen(seed: u64, minutes: u64) -> GenConfig {
    GenConfig {
        duration_ms: minutes * 60 * 1000,
        flares_per_hour: 6.0,
        background_rate: 15.0,
        seed,
        ..GenConfig::default()
    }
}

#[test]
fn lifecycle_ingest_browse_analyze_share() {
    let hedc = Hedc::start(HedcConfig::default()).unwrap();
    let report = hedc.load_telemetry(&gen(1, 20), 300_000).unwrap();
    assert!(report.events > 0);

    // Two scientists.
    hedc.dm()
        .create_user("alice", "a", "sci", Rights::SCIENTIST)
        .unwrap();
    hedc.dm()
        .create_user("bob", "b", "sci", Rights::SCIENTIST)
        .unwrap();
    let ca = hedc.dm().login("alice", "a", "ip-a").unwrap();
    let cb = hedc.dm().login("bob", "b", "ip-b").unwrap();
    let alice = hedc
        .dm()
        .session("ip-a", ca, SessionKind::Analysis)
        .unwrap();
    let bob = hedc
        .dm()
        .session("ip-b", cb, SessionKind::Analysis)
        .unwrap();

    // Alice analyzes a detected event.
    let hle = hedc
        .dm()
        .services()
        .query(&alice, Query::table("hle").limit(1))
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap();
    let params = hedc_analysis::AnalysisParams::window(0, 600_000);
    let outcome = hedc
        .pl()
        .submit_sync(
            Arc::clone(&alice),
            RequestSpec::new("spectrum", params.clone(), hle),
        )
        .unwrap();
    let ana_id = outcome.ana_id();

    // Bob cannot see Alice's private analysis; the PL will not reuse it
    // for him either — he computes his own.
    let bob_outcome = hedc
        .pl()
        .submit_sync(
            Arc::clone(&bob),
            RequestSpec::new("spectrum", params.clone(), hle),
        )
        .unwrap();
    assert!(!bob_outcome.was_reused());
    assert_ne!(bob_outcome.ana_id(), ana_id);

    // Alice publishes; now a third request (by Bob) reuses her result.
    hedc.dm().services().publish(&alice, "ana", ana_id).unwrap();
    // Bob's own is also private; delete it so the shared one is the match.
    hedc.dm()
        .services()
        .delete_analysis(&bob, bob_outcome.ana_id())
        .unwrap();
    let shared = hedc
        .pl()
        .submit_sync(Arc::clone(&bob), RequestSpec::new("spectrum", params, hle))
        .unwrap();
    assert!(shared.was_reused());
    assert_eq!(shared.ana_id(), ana_id);

    hedc.shutdown();
}

#[test]
fn web_and_streamcorder_see_the_same_repository() {
    let hedc = Hedc::start(HedcConfig::default()).unwrap();
    hedc.load_telemetry(&gen(2, 20), usize::MAX).unwrap();
    hedc.dm()
        .create_user("web", "pw", "sci", Rights::SCIENTIST)
        .unwrap();
    let cookie = hedc.dm().login("web", "pw", "shared-ip").unwrap();
    let session = hedc
        .dm()
        .session("shared-ip", cookie, SessionKind::Hle)
        .unwrap();

    // Thin client: count events on the catalog page.
    let resp = hedc.web().handle(
        &HttpRequest::get(
            &format!("/hedc/catalog/{}", hedc.dm().extended_catalog),
            "shared-ip",
        )
        .with_cookie(cookie),
    );
    assert_eq!(resp.status, 200);
    let web_events = resp.text().matches("/hedc/hle/").count();

    // Fat client: mirror and count locally.
    let sc =
        StreamCorder::connect(Arc::clone(hedc.dm()), session, CacheStrategy::V2LocalClone).unwrap();
    let (hles, _) = sc.mirror_metadata().unwrap();
    assert_eq!(hles, web_events, "both clients see the same events");
    let local = sc
        .local_query(&Query::table("hle").aggregate(AggFunc::CountStar))
        .unwrap();
    assert_eq!(local.scalar_int().unwrap() as usize, web_events);
    hedc.shutdown();
}

#[test]
fn recalibration_invalidates_then_recomputes() {
    let hedc = Hedc::start(HedcConfig::default()).unwrap();
    hedc.load_telemetry(&gen(3, 20), usize::MAX).unwrap();
    let session = hedc.dm().import_session();
    // Detection may legitimately find nothing in a quiet random window;
    // the recalibration path only needs *an* event to hang an analysis on.
    let hle = {
        let r = hedc
            .dm()
            .services()
            .query(&session, Query::table("hle").limit(1))
            .unwrap();
        match r.rows.first() {
            Some(row) => row[0].as_int().unwrap(),
            None => hedc
                .dm()
                .services()
                .create_hle(&session, &hedc_dm::HleSpec::window(0, 300_000, "flare"))
                .unwrap(),
        }
    };
    let params = hedc_analysis::AnalysisParams::window(0, 300_000);
    let v1_outcome = hedc
        .pl()
        .submit_sync(
            Arc::clone(&session),
            RequestSpec::new("histogram", params.clone(), hle),
        )
        .unwrap();

    // Recalibrate.
    let v1 = Calibration::launch();
    let v2 = v1.recalibrated(0.04, 0.1);
    let report = hedc
        .dm()
        .versioning()
        .apply_recalibration(&v1, &v2)
        .unwrap();
    assert_eq!(report.units_recalibrated, 1);
    assert!(report.analyses_invalidated >= 1);

    // The old analysis is stale; a fresh request must NOT reuse it.
    let stale = hedc.dm().versioning().stale_analyses().unwrap();
    assert!(stale.contains(&v1_outcome.ana_id()));
    let new_outcome = hedc
        .pl()
        .submit_sync(
            Arc::clone(&session),
            RequestSpec::new("histogram", params, hle),
        )
        .unwrap();
    assert!(
        !new_outcome.was_reused(),
        "obsolete results must not be reused"
    );
    assert_ne!(new_outcome.ana_id(), v1_outcome.ana_id());
    hedc.shutdown();
}

#[test]
fn archive_relocation_is_transparent_to_readers() {
    let hedc = Hedc::start(HedcConfig::default()).unwrap();
    hedc.load_telemetry(&gen(4, 15), usize::MAX).unwrap();
    let raw = hedc.dm().io.query(&Query::table("raw_unit")).unwrap();
    let item = raw.rows[0][6].as_int().unwrap();
    let before = hedc.dm().names().fetch_data(item).unwrap();

    // Find the file's current path and move it to tape (archive 3).
    let resolved = hedc
        .dm()
        .names()
        .resolve(item, hedc_dm::NameType::File)
        .unwrap();
    let path = resolved[0].archive_path.clone();
    let from = resolved[0].archive_id;
    hedc.dm()
        .processes()
        .relocate(from, 3, std::slice::from_ref(&path))
        .unwrap();

    // Same item id, same bytes, different physical home.
    let after = hedc.dm().names().fetch_data(item).unwrap();
    assert_eq!(before, after);
    let resolved = hedc
        .dm()
        .names()
        .resolve(item, hedc_dm::NameType::File)
        .unwrap();
    assert_eq!(resolved[0].archive_id, 3);

    // And analyses can still stage data from tape.
    let session = hedc.dm().import_session();
    let hle = hedc
        .dm()
        .services()
        .query(&session, Query::table("hle").limit(1))
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap();
    let outcome = hedc
        .pl()
        .submit_sync(
            session,
            RequestSpec::new(
                "lightcurve",
                hedc_analysis::AnalysisParams::window(0, 120_000),
                hle,
            ),
        )
        .unwrap();
    assert!(matches!(outcome, Outcome::Computed { .. }));
    hedc.shutdown();
}

#[test]
fn consistency_check_is_clean_after_ingest() {
    let hedc = Hedc::start(HedcConfig::default()).unwrap();
    hedc.load_telemetry(&gen(5, 15), usize::MAX).unwrap();
    // Collect every file reference from the location tables.
    let entries = hedc.dm().io.query(&Query::table("loc_entry")).unwrap();
    let mut expected = Vec::new();
    for row in &entries.rows {
        let archive = row[3].as_int().unwrap() as u32;
        let path = row[4].as_text().unwrap().to_string();
        expected.push(hedc_filestore::ExpectedFile { archive, path });
    }
    assert!(!expected.is_empty());
    let report = hedc_filestore::consistency_check(&hedc.dm().io.files, &expected);
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.consistent, expected.len());

    // Sabotage: delete a file behind the DM's back; the auditor sees it.
    let victim = &expected[0];
    hedc.dm()
        .io
        .files
        .delete(victim.archive, &victim.path)
        .unwrap();
    let report = hedc_filestore::consistency_check(&hedc.dm().io.files, &expected);
    assert_eq!(report.missing.len(), 1);
    hedc.shutdown();
}

#[test]
fn analysis_server_failures_are_invisible_to_users() {
    let hedc = Hedc::start(HedcConfig::default()).unwrap();
    hedc.load_telemetry(&gen(6, 15), usize::MAX).unwrap();
    let session = hedc.dm().import_session();
    let hle = hedc
        .dm()
        .services()
        .query(&session, Query::table("hle").limit(1))
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap();
    // Arm a crash on the first analysis server; the PL recovers silently.
    hedc.pl()
        .manager
        .fault_plan(0)
        .unwrap()
        .crash_next
        .store(true, std::sync::atomic::Ordering::SeqCst);
    let outcome = hedc
        .pl()
        .submit_sync(
            session,
            RequestSpec::new(
                "histogram",
                hedc_analysis::AnalysisParams::window(0, 120_000),
                hle,
            ),
        )
        .unwrap();
    assert!(matches!(outcome, Outcome::Computed { .. }));
    let stats = hedc.pl().manager.stats();
    assert!(stats.crashes_recovered >= 1 || stats.timeouts >= 1);
    hedc.shutdown();
}

#[test]
fn observability_traces_a_browse_request_end_to_end() {
    let hedc = Hedc::start(HedcConfig::default()).unwrap();
    hedc.load_telemetry(&gen(8, 15), usize::MAX).unwrap();
    hedc.dm()
        .create_user("tracer", "pw", "sci", Rights::SCIENTIST)
        .unwrap();
    let cookie = hedc.dm().login("tracer", "pw", "obs-ip").unwrap();
    let session = hedc
        .dm()
        .session("obs-ip", cookie, SessionKind::Analysis)
        .unwrap();

    // One PL submission so the queue-wait histogram has samples.
    let hle = hedc
        .dm()
        .services()
        .query(&session, Query::table("hle").limit(1))
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap();
    hedc.pl()
        .submit_sync(
            session,
            RequestSpec::new(
                "lightcurve",
                hedc_analysis::AnalysisParams::window(0, 120_000),
                hle,
            ),
        )
        .unwrap();

    // Pick a stored file to browse: the single request under test is a
    // /files/ download, which walks metadata (metadb queries), the name
    // mapping, and the filestore — all under one web.request root span.
    let raw = hedc
        .dm()
        .io
        .query(&Query::table("raw_unit").limit(1))
        .unwrap();
    let item = raw.rows[0][6].as_int().unwrap();
    let resolved = hedc
        .dm()
        .names()
        .resolve(item, hedc_dm::NameType::File)
        .unwrap();
    let path = resolved[0].archive_path.clone();
    let resp = hedc
        .web()
        .handle(&HttpRequest::get(&format!("/files/{path}"), "obs-ip").with_cookie(cookie));
    assert_eq!(resp.status, 200);

    // Find our trace: a web.request root whose trace touched the filestore.
    // (Other tests in this process issue web requests too, but none
    // downloads a file through the web tier.)
    let store = hedc_obs::span_store();
    let trace = store
        .recent(4096)
        .into_iter()
        .filter(|s| s.parent_id == 0 && s.name == "web.request")
        .map(|root| store.spans_for(root.trace_id))
        .find(|spans| spans.iter().any(|s| s.name == "fs.read"))
        .expect("a web.request trace that reached the filestore");

    // One root; every other span links to a parent within the same trace —
    // a connected tree under a single trace ID.
    let roots: Vec<_> = trace.iter().filter(|s| s.parent_id == 0).collect();
    assert_eq!(roots.len(), 1, "{trace:?}");
    assert_eq!(roots[0].name, "web.request");
    let ids: std::collections::BTreeSet<u64> = trace.iter().map(|s| s.span_id).collect();
    for s in &trace {
        assert_eq!(s.trace_id, roots[0].trace_id);
        assert!(
            s.parent_id == 0 || ids.contains(&s.parent_id),
            "span {} has dangling parent {}",
            s.name,
            s.parent_id
        );
        assert!(s.duration_us > 0);
    }
    // The tiers the request crossed, by span name.
    for expected in ["dm.io.query", "metadb.query", "dm.name_map", "fs.read"] {
        assert!(
            trace.iter().any(|s| s.name == expected),
            "missing span {expected} in {trace:?}"
        );
    }

    // The latency histograms behind the stats page are populated.
    let snap = hedc_obs::global().snapshot();
    for name in [
        "metadb.query",
        "dm.query",
        "dm.name_map",
        "db.pool.acquire",
        "pl.queue_wait",
    ] {
        let h = snap
            .histogram(name)
            .unwrap_or_else(|| panic!("histogram {name} missing"));
        assert!(h.count > 0, "{name} never recorded");
        assert!(
            h.p50_us > 0 && h.p50_us <= h.p95_us && h.p95_us <= h.p99_us,
            "{name}: {h:?}"
        );
    }

    // And the web tier serves them.
    let stats = hedc
        .web()
        .handle(&HttpRequest::get("/hedc/stats", "obs-ip"));
    assert_eq!(stats.status, 200);
    assert!(stats.text().contains("metadb.query"));
    let json = hedc
        .web()
        .handle(&HttpRequest::get("/hedc/stats.json", "obs-ip"));
    assert_eq!(json.status, 200);
    assert!(json.text().contains("\"histograms\""));
    hedc.shutdown();
}

#[test]
fn open_event_model_supports_user_defined_types() {
    // §3.3: "HEDC does not provide predefined types ... there are only
    // events." A user invents a type the designers never anticipated.
    let hedc = Hedc::start(HedcConfig::default()).unwrap();
    hedc.load_telemetry(&gen(7, 15), usize::MAX).unwrap();
    hedc.dm()
        .create_user("maverick", "pw", "sci", Rights::SCIENTIST)
        .unwrap();
    let c = hedc.dm().login("maverick", "pw", "ip").unwrap();
    let session = hedc.dm().session("ip", c, SessionKind::Hle).unwrap();
    let mut spec = hedc_dm::HleSpec::window(60_000, 240_000, "terrestrial-gamma-flash");
    spec.title = Some("TGF candidate over the Pacific".to_string());
    let id = hedc.dm().services().create_hle(&session, &spec).unwrap();
    hedc.dm().services().publish(&session, "hle", id).unwrap();
    // It is queryable like any first-class type.
    let r = hedc
        .dm()
        .io
        .user_sql("SELECT id FROM hle WHERE event_type = 'terrestrial-gamma-flash'")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    hedc.shutdown();
}
