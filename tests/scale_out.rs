//! Integration tests for the cluster story (§5.4/§7.3): several DM nodes
//! behind the router, browse load spread across them, node failure and
//! recovery, and the partitioned-database configuration.

use hedc_dm::{Dm, DmConfig, DmNode, DmRouter, HleSpec, Partitioning, RemoteDm};
use hedc_filestore::{Archive, ArchiveTier, FileStore};
use hedc_metadb::{AggFunc, Expr, Query};
use std::sync::Arc;

fn files() -> Arc<FileStore> {
    let fs = FileStore::new();
    fs.register(Archive::in_memory(
        1,
        "raw",
        ArchiveTier::OnlineDisk,
        1 << 30,
    ));
    fs.register(Archive::in_memory(
        2,
        "derived",
        ArchiveTier::OnlineRaid,
        1 << 30,
    ));
    Arc::new(fs)
}

fn seeded_node(events: i64) -> Arc<Dm> {
    let dm = Dm::bootstrap(files(), DmConfig::default()).unwrap();
    let session = dm.import_session();
    let svc = dm.services();
    for i in 0..events {
        let id = svc
            .create_hle(
                &session,
                &HleSpec::window(i as u64 * 1000, i as u64 * 1000 + 500, "flare"),
            )
            .unwrap();
        svc.publish(&session, "hle", id).unwrap();
    }
    dm
}

#[test]
fn router_spreads_browse_load_and_survives_failures() {
    // Three replicas of the same catalog (read scale-out, §7.3).
    let nodes: Vec<Arc<RemoteDm<Dm>>> = (0..3)
        .map(|i| Arc::new(RemoteDm::new(seeded_node(40), format!("node-{i}"), 150)))
        .collect();
    let router = DmRouter::new(
        nodes
            .iter()
            .map(|n| Arc::clone(n) as Arc<dyn DmNode>)
            .collect(),
    );

    // Browse mix round-robins over all nodes.
    for _ in 0..30 {
        let r = router
            .execute_query(
                &Query::table("hle")
                    .filter(Expr::eq("public", true))
                    .limit(10),
            )
            .unwrap();
        assert_eq!(r.rows.len(), 10);
    }
    for n in &nodes {
        assert_eq!(n.calls(), 10, "even spread");
    }

    // Node 1 dies; traffic flows on.
    nodes[1].set_down(true);
    for _ in 0..20 {
        router
            .execute_query(&Query::table("hle").aggregate(AggFunc::CountStar))
            .unwrap();
    }
    assert_eq!(nodes[1].calls(), 10, "no calls while down");

    // It comes back and rejoins the rotation.
    nodes[1].set_down(false);
    for _ in 0..6 {
        router.execute_query(&Query::table("hle").limit(1)).unwrap();
    }
    assert!(nodes[1].calls() > 10);
}

#[test]
fn partitioned_databases_separate_browse_from_processing() {
    // §5.2: "data requests for certain parts of a database schema are
    // routed to a different DBMS. We use this feature to separate
    // processing from browsing clients."
    let config = DmConfig {
        databases: 2,
        partitioning: Partitioning::single()
            .route("raw_unit", 1)
            .route("view_meta", 1),
        ..DmConfig::default()
    };
    let dm = Dm::bootstrap(files(), config).unwrap();
    let session = dm.import_session();

    // Browse writes land on db 0; processing-side tables on db 1.
    let svc = dm.services();
    let hle = svc
        .create_hle(&session, &HleSpec::window(0, 1000, "flare"))
        .unwrap();
    let _ = hle;
    dm.io
        .insert(
            "raw_unit",
            vec![
                hedc_metadb::Value::Int(999),
                hedc_metadb::Value::Int(0),
                hedc_metadb::Value::Int(0),
                hedc_metadb::Value::Int(1000),
                hedc_metadb::Value::Int(10),
                hedc_metadb::Value::Int(1),
                hedc_metadb::Value::Int(1),
                hedc_metadb::Value::Int(100),
                hedc_metadb::Value::Bool(false),
            ],
        )
        .unwrap();

    let dbs = dm.io.databases();
    assert_eq!(dbs[0].row_count("hle").unwrap(), 1);
    assert_eq!(dbs[1].row_count("hle").unwrap(), 0);
    assert_eq!(dbs[0].row_count("raw_unit").unwrap(), 0);
    assert_eq!(dbs[1].row_count("raw_unit").unwrap(), 1);

    // Query stats prove isolation: browsing hle doesn't touch db 1.
    let before = dbs[1].stats();
    for _ in 0..5 {
        dm.io.query(&Query::table("hle")).unwrap();
    }
    assert_eq!(dbs[1].stats().since(&before).queries, 0);
}

#[test]
fn network_accounting_scales_with_traffic() {
    let node = Arc::new(RemoteDm::new(seeded_node(5), "far-node", 2_000));
    let router = DmRouter::new(vec![Arc::clone(&node) as Arc<dyn DmNode>]);
    for _ in 0..10 {
        router.execute_query(&Query::table("hle").limit(1)).unwrap();
    }
    // 10 calls × 2 ms hop × 2 directions.
    assert_eq!(node.network_us(), 40_000);
}
