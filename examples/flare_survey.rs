//! Flare survey: the §2.2 workflow — ingest an active observing day,
//! build a flare catalog, and batch-produce quicklook analyses for the
//! strongest events, with detection quality scored against ground truth.
//!
//! Run with: `cargo run --release -p hedc-core --example flare_survey`

use hedc_core::{Hedc, HedcConfig};
use hedc_dm::SessionKind;
use hedc_events::{generate, recall, EventKind, GenConfig};
use hedc_metadb::{Expr, OrderDir, Query};
use hedc_pl::{Priority, RequestSpec};

fn main() {
    let hedc = Hedc::start(HedcConfig::default()).expect("boot");

    // A 4-hour active stretch; keep the ground truth for scoring.
    let gen = GenConfig {
        duration_ms: 4 * 3600 * 1000,
        flares_per_hour: 3.0,
        background_rate: 25.0,
        seed: 20020205, // launch day
        ..GenConfig::default()
    };
    let telemetry = generate(&gen);
    let truth_flares = telemetry
        .truth
        .iter()
        .filter(|t| matches!(t.kind, EventKind::Flare(_)))
        .count();
    let report = hedc.load_generated(&telemetry, 400_000).expect("ingest");
    println!(
        "ingested {} units, detected {} events ({} true flares injected)",
        report.units, report.events, truth_flares
    );

    // Detection quality against ground truth.
    let session = hedc.dm().import_session();
    let svc = hedc.dm().services();
    let detected = svc
        .query(
            &session,
            Query::table("hle").filter(Expr::eq("event_type", "flare")),
        )
        .expect("query");
    let as_events: Vec<hedc_events::DetectedEvent> = detected
        .rows
        .iter()
        .map(|r| hedc_events::DetectedEvent {
            kind: EventKind::Flare(hedc_events::FlareClass::C),
            start_ms: r[3].as_int().unwrap() as u64,
            end_ms: r[4].as_int().unwrap() as u64,
            peak_rate: r[9].as_float().unwrap_or(0.0),
            hardness: r[10].as_float().unwrap_or(0.0),
            photon_count: r[11].as_int().unwrap_or(0) as u64,
        })
        .collect();
    println!(
        "flare recall vs ground truth: {:.0}%",
        recall(&telemetry.truth, &as_events, &["flare"]) * 100.0
    );

    // Generate a survey catalog of the strongest flares.
    let (catalog_id, n) = hedc
        .dm()
        .processes()
        .generate_catalog(
            &session,
            "strong-flares",
            Expr::eq("event_type", "flare").and(Expr::cmp(
                "peak_rate",
                hedc_metadb::CmpOp::Ge,
                500.0,
            )),
        )
        .expect("catalog");
    println!("catalog `strong-flares` (#{catalog_id}) holds {n} events");

    // Quicklook batch: lightcurve + spectrum per strong flare, batch
    // priority so interactive users would still preempt us.
    let strongest = svc
        .query(
            &session,
            Query::table("hle")
                .filter(Expr::eq("event_type", "flare"))
                .order_by("peak_rate", OrderDir::Desc)
                .limit(5),
        )
        .expect("query");
    let analysis_session = hedc
        .dm()
        .session("localhost", session.cookie, SessionKind::Analysis)
        .expect("session");
    println!("\n  event          window [s]  kind        result      ms");
    for row in &strongest.rows {
        let hle = row[0].as_int().unwrap();
        let t0 = row[3].as_int().unwrap() as u64;
        let t1 = row[4].as_int().unwrap() as u64;
        for kind in ["lightcurve", "spectrum"] {
            let params = hedc_analysis::AnalysisParams::window(t0, t1);
            let outcome = hedc
                .pl()
                .submit_sync(
                    analysis_session.clone(),
                    RequestSpec::new(kind, params, hle).priority(Priority::Batch),
                )
                .expect("analysis");
            let (label, ms) = match &outcome {
                hedc_pl::Outcome::Reused { .. } => ("reused", 0),
                hedc_pl::Outcome::Computed { duration_ms, .. } => ("computed", *duration_ms),
            };
            println!(
                "  hle #{hle:<6}  {:>5}-{:<6} {kind:<11} {label:<10} {ms}",
                t0 / 1000,
                t1 / 1000
            );
        }
    }

    // Survey summary by class, through the user-SQL path (§1).
    let counts = hedc
        .dm()
        .io
        .user_sql(
            "SELECT flare_class, COUNT(*) FROM hle WHERE event_type = 'flare' GROUP BY flare_class",
        )
        .expect("sql");
    println!("\nflare classes:");
    for row in &counts.rows {
        println!("  class {:>2}: {}", row[0], row[1]);
    }

    hedc.shutdown();
}
