//! The moving target itself (§3.1): a **new data source** arrives — the
//! Phoenix-2 broadband radio spectrometer (§2.2) — and needs its own
//! domain schema. Because the generic part (location tables, users, logs)
//! is instrument-agnostic, onboarding Phoenix is *runtime DDL plus an
//! ingest loop*: no changes to the repository code.
//!
//! The finale is the scientific payoff of hosting both instruments: a
//! cross-instrument search for RHESSI flares accompanied by radio bursts.
//!
//! Run with: `cargo run --release -p hedc-core --example new_instrument`

use hedc_core::{Hedc, HedcConfig};
use hedc_dm::NameType;
use hedc_events::{generate_phoenix, GenConfig, PhoenixConfig};
use hedc_filestore::checksum;
use hedc_metadb::{Expr, Query, Value};

fn main() {
    let hedc = Hedc::start(HedcConfig::default()).expect("boot");
    let span_ms = 2 * 3600 * 1000;

    // RHESSI first, business as usual.
    hedc.load_telemetry(
        &GenConfig {
            duration_ms: span_ms,
            flares_per_hour: 3.0,
            background_rate: 20.0,
            seed: 1998, // HEDC development start
            ..GenConfig::default()
        },
        600_000,
    )
    .expect("rhessi ingest");

    // --- A new instrument arrives: define its schema at run time ---------
    let dm = hedc.dm();
    dm.io
        .execute_ddl(
            "CREATE TABLE phoenix_scan (
                id INT NOT NULL,
                seq INT NOT NULL,
                t_start TIMESTAMP NOT NULL,
                t_end TIMESTAMP NOT NULL,
                freq_lo FLOAT NOT NULL,
                freq_hi FLOAT NOT NULL,
                burst_type TEXT,
                item_id INT NOT NULL,
                PRIMARY KEY (id))",
        )
        .expect("create phoenix_scan");
    dm.io
        .execute_ddl("CREATE INDEX phoenix_time ON phoenix_scan (t_start)")
        .expect("create index");
    println!("phoenix_scan table created at run time (generic schema untouched)");

    // --- Ingest Phoenix-2 scans through the same generic machinery --------
    let scans = generate_phoenix(&PhoenixConfig {
        duration_ms: span_ms,
        bursts_per_hour: 5.0,
        seed: 2,
        ..PhoenixConfig::default()
    });
    let names = dm.names();
    let derived = hedc.config().derived_archive();
    let mut n_bursts = 0usize;
    for scan in &scans {
        let bytes = scan.to_fits().to_bytes();
        let path = scan.archive_path();
        dm.io
            .files
            .store(derived, &path, &bytes)
            .expect("store scan");
        let item = names.new_item().expect("item");
        names
            .attach(
                item,
                NameType::File,
                derived,
                &path,
                bytes.len() as u64,
                Some(checksum(&bytes)),
                "data",
            )
            .expect("attach");
        // One row per detected burst (plus one for the scan itself).
        let burst_label = scan.bursts.first().map(|(k, _, _)| k.label());
        let id = dm.io.next_id();
        dm.io
            .insert(
                "phoenix_scan",
                vec![
                    Value::Int(id),
                    Value::Int(i64::from(scan.seq)),
                    Value::Int(scan.t_start as i64),
                    Value::Int(scan.t_end as i64),
                    Value::Float(scan.freq_lo),
                    Value::Float(scan.freq_hi),
                    burst_label
                        .map(|l| Value::Text(l.into()))
                        .unwrap_or(Value::Null),
                    Value::Int(item),
                ],
            )
            .expect("insert scan");
        n_bursts += scan.bursts.len();
    }
    println!(
        "ingested {} Phoenix scans ({} radio bursts) through the generic location tables",
        scans.len(),
        n_bursts
    );

    // --- Cross-instrument science ------------------------------------------
    // RHESSI flares with a Phoenix radio counterpart within ±2 minutes:
    // exactly the kind of question a single-instrument schema forecloses.
    let session = dm.import_session();
    let flares = dm
        .services()
        .query(
            &session,
            Query::table("hle").filter(Expr::eq("event_type", "flare")),
        )
        .expect("flares");
    let mut matches = 0usize;
    println!("\nRHESSI flares with Phoenix-2 radio counterparts (±2 min):");
    for row in &flares.rows {
        let t0 = row[3].as_int().unwrap();
        let t1 = row[4].as_int().unwrap();
        for scan in &scans {
            for (kind, b0, b1) in &scan.bursts {
                let overlap = (*b0 as i64) < t1 + 120_000 && t0 - 120_000 < (*b1 as i64);
                if overlap {
                    println!(
                        "  flare #{} @ {:>7}s  <->  {} burst @ {:>7}s",
                        row[0],
                        t0 / 1000,
                        kind.label(),
                        b0 / 1000
                    );
                    matches += 1;
                }
            }
        }
    }
    if matches == 0 {
        println!("  (none in this random realization — rerun with another seed)");
    }

    // The new table is first-class: user SQL works immediately.
    let r = dm
        .io
        .user_sql("SELECT burst_type, COUNT(*) FROM phoenix_scan GROUP BY burst_type")
        .expect("sql");
    println!("\nphoenix catalog by burst type:");
    for row in &r.rows {
        println!("  {:>10}: {}", row[0], row[1]);
    }

    hedc.shutdown();
}
