//! Gamma-ray-burst hunt: the paper's §3.2 argument made concrete. RHESSI
//! is a *solar* instrument, but an open repository ("no question is ruled
//! out from the beginning") lets non-solar science happen: find hard,
//! short transients — including ones during spacecraft night, when the Sun
//! is occulted — then cross-search remote synoptic archives around them.
//!
//! Run with: `cargo run --release -p hedc-core --example grb_search`

use hedc_core::{Hedc, HedcConfig};
use hedc_events::GenConfig;
use hedc_metadb::Query;
use hedc_pl::RequestSpec;
use hedc_web::{MockArchive, RemoteArchive, SynopticSearch};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let hedc = Hedc::start(HedcConfig::default()).expect("boot");

    // A day of data with a realistic GRB rate.
    let report = hedc
        .load_telemetry(
            &GenConfig {
                duration_ms: 12 * 3600 * 1000,
                flares_per_hour: 1.5,
                grbs_per_day: 6.0,
                background_rate: 20.0,
                seed: 19730704, // Vela-era homage
                ..GenConfig::default()
            },
            600_000,
        )
        .expect("ingest");
    println!("ingested {} events total", report.events);

    // A "solar flare only" system could not ask this question. HEDC can:
    // hard-spectrum short events, straight through the user-SQL path.
    let grbs = hedc
        .dm()
        .io
        .user_sql(
            "SELECT id, time_start, time_end, hardness, n_photons FROM hle \
             WHERE event_type = 'grb' ORDER BY time_start",
        )
        .expect("sql");
    println!("\ncandidate gamma-ray bursts: {}", grbs.rows.len());
    for row in &grbs.rows {
        println!(
            "  hle #{:<5} t={:>8}s dur={:>3}s hardness={:.2} photons={}",
            row[0],
            row[1].as_int().unwrap() / 1000,
            (row[2].as_int().unwrap() - row[1].as_int().unwrap()) / 1000,
            row[3].as_float().unwrap_or(0.0),
            row[4]
        );
    }

    if let Some(first) = grbs.rows.first() {
        let hle = first[0].as_int().unwrap();
        let t0 = first[1].as_int().unwrap() as u64;
        let t1 = first[2].as_int().unwrap() as u64;

        // High-resolution spectrogram over the burst (hard band).
        let session = hedc.dm().import_session();
        let params = hedc_analysis::AnalysisParams::window(t0.saturating_sub(10_000), t1 + 10_000)
            .energy(25.0, 8000.0)
            .with("time_bins", 64.0)
            .with("energy_bins", 32.0);
        let outcome = hedc
            .pl()
            .submit_sync(session, RequestSpec::new("spectrogram", params, hle))
            .expect("spectrogram");
        println!(
            "\nspectrogram for hle #{hle} -> analysis #{}",
            outcome.ana_id()
        );

        // §6.4: best-effort parallel search of remote synoptic archives
        // around the burst time (one archive is down — best effort).
        let archives: Vec<Arc<MockArchive>> = vec![
            MockArchive::new(
                "soho.nascom.nasa.gov",
                "EIT-195",
                600_000,
                Duration::from_millis(10),
            ),
            MockArchive::new(
                "phoenix.ethz.ch",
                "Phoenix-2",
                120_000,
                Duration::from_millis(15),
            ),
            MockArchive::new(
                "batse.msfc.nasa.gov",
                "BATSE",
                300_000,
                Duration::from_millis(5),
            ),
            MockArchive::new(
                "konus.ioffe.ru",
                "Konus-Wind",
                300_000,
                Duration::from_millis(8),
            ),
        ];
        archives[3].set_down(true); // an unreachable host must not stall us
        let search = SynopticSearch::new(
            archives
                .iter()
                .map(|a| Arc::clone(a) as Arc<dyn RemoteArchive>)
                .collect(),
            Duration::from_millis(250),
        );
        let window = (t0.saturating_sub(600_000), t1 + 600_000);
        let results = search.search(window.0, window.1);
        println!("\nsynoptic search ±10 min around the burst:");
        for (archive, records) in &results.by_archive {
            println!("  {archive}: {} records", records.len());
        }
        for name in &results.timed_out {
            println!("  {name}: TIMED OUT (best effort, no results)");
        }
    }

    // How many of those bursts happened during spacecraft night? (The
    // detector still sees them; a flare-only schema would have dropped
    // the data outright.)
    let night = hedc
        .dm()
        .io
        .query(&Query::table("hle"))
        .expect("query")
        .rows
        .iter()
        .filter(|r| r[7].as_text() == Some("grb"))
        .count();
    println!(
        "\n{} GRB candidates preserved in the open event model",
        night
    );

    hedc.shutdown();
}
