//! Quickstart: boot a repository, load telemetry, browse it, run an
//! analysis — the five-minute tour of the public API.
//!
//! Run with: `cargo run --release -p hedc-core --example quickstart`

use hedc_core::{Hedc, HedcConfig};
use hedc_dm::{Rights, SessionKind};
use hedc_events::GenConfig;
use hedc_metadb::Query;
use hedc_pl::RequestSpec;
use hedc_web::HttpRequest;

fn main() {
    // 1. Boot a repository: archives, metadata DB, DM, PL, web frontend.
    let hedc = Hedc::start(HedcConfig::default()).expect("boot");
    println!(
        "HEDC is up: archives={:?}",
        hedc.dm().io.files.archive_ids()
    );

    // 2. Load an hour of (synthetic) RHESSI telemetry. Ingest stores the
    //    FITS units, detects events into the extended catalog, and builds
    //    the load-time wavelet views.
    let report = hedc
        .load_telemetry(
            &GenConfig {
                duration_ms: 60 * 60 * 1000,
                flares_per_hour: 4.0,
                ..GenConfig::default()
            },
            500_000,
        )
        .expect("ingest");
    println!(
        "loaded {} units / {} photons -> {} detected events, {} KiB stored",
        report.units,
        report.photons,
        report.events,
        report.bytes_stored / 1024
    );

    // 3. Browse anonymously, like the public web interface.
    let page = hedc
        .web()
        .handle(&HttpRequest::get("/hedc/catalogs", "10.0.0.1"));
    println!(
        "GET /hedc/catalogs -> {} ({} bytes)",
        page.status,
        page.body.len()
    );

    // 4. Create an account, log in, run an analysis on the first event.
    hedc.dm()
        .create_user("demo", "demo-pw", "science", Rights::SCIENTIST)
        .expect("create user");
    let cookie = hedc
        .dm()
        .login("demo", "demo-pw", "10.0.0.1")
        .expect("login");
    let session = hedc
        .dm()
        .session("10.0.0.1", cookie, SessionKind::Analysis)
        .expect("session");
    let hle = hedc
        .dm()
        .services()
        .query(&session, Query::table("hle").limit(1))
        .expect("query")
        .rows[0][0]
        .as_int()
        .unwrap();

    let params = hedc_analysis::AnalysisParams::window(0, 3_600_000).with("bin_ms", 4000.0);
    let outcome = hedc
        .pl()
        .submit_sync(
            session.clone(),
            RequestSpec::new("lightcurve", params.clone(), hle),
        )
        .expect("analysis");
    println!("lightcurve committed as analysis #{}", outcome.ana_id());

    // 5. Ask for the same analysis again: §3.5 redundancy detection
    //    answers from the catalog without recomputing.
    let again = hedc
        .pl()
        .submit_sync(session, RequestSpec::new("lightcurve", params, hle))
        .expect("analysis");
    println!(
        "same request again -> reused={} (analysis #{})",
        again.was_reused(),
        again.ana_id()
    );

    hedc.shutdown();
}
