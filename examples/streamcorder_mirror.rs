//! StreamCorder session: the §6.2/§6.3 fat-client workflow. Mirror the
//! server's metadata into a local clone, fetch wavelet views progressively
//! (watching the byte meter), run a local analysis, and upload the result
//! back for other users.
//!
//! Run with: `cargo run --release -p hedc-core --example streamcorder_mirror`

use hedc_core::{Hedc, HedcConfig};
use hedc_dm::{Rights, SessionKind};
use hedc_events::GenConfig;
use hedc_metadb::Query;
use hedc_web::{CacheStrategy, StreamCorder};
use std::sync::Arc;

fn main() {
    let hedc = Hedc::start(HedcConfig::default()).expect("boot");
    hedc.load_telemetry(
        &GenConfig {
            duration_ms: 2 * 3600 * 1000,
            flares_per_hour: 3.0,
            background_rate: 20.0,
            seed: 65_537,
            ..GenConfig::default()
        },
        400_000,
    )
    .expect("ingest");

    // A scientist connects the fat client with the V2 (local clone) cache.
    hedc.dm()
        .create_user("remote-sci", "pw", "science", Rights::SCIENTIST)
        .expect("user");
    let cookie = hedc
        .dm()
        .login("remote-sci", "pw", "dialup-41")
        .expect("login");
    let session = hedc
        .dm()
        .session("dialup-41", cookie, SessionKind::Analysis)
        .expect("session");
    let sc = StreamCorder::connect(
        Arc::clone(hedc.dm()),
        Arc::clone(&session),
        CacheStrategy::V2LocalClone,
    )
    .expect("connect");

    // 1. Mirror the visible metadata ("every installation ... is, in fact,
    //    a clone of the HEDC server").
    let (hles, anas) = sc.mirror_metadata().expect("mirror");
    println!("mirrored {hles} events and {anas} analyses into the local clone");

    // 2. Progressive exploration (§6.3): pull the first hour's count view
    //    at increasing fidelity; coarse levels cost a fraction of the bytes.
    let vm = hedc
        .dm()
        .io
        .query(&Query::table("view_meta"))
        .expect("views");
    let view_item = vm.rows[0][6].as_int().unwrap();
    let view_t0 = vm.rows[0][1].as_int().unwrap() as u64;
    println!("\nprogressive view download (1 h of 1 s count bins):");
    for levels in [2usize, 4, 6, usize::MAX] {
        let (series, bytes) = sc
            .progressive_counts(
                view_item,
                1000,
                view_t0,
                view_t0 + 3_600_000,
                view_t0,
                levels,
            )
            .expect("view");
        let peak = series.iter().cloned().fold(0.0f64, f64::max);
        let label = if levels == usize::MAX {
            "full".to_string()
        } else {
            format!("{levels} lvl")
        };
        println!("  {label:>7}: {bytes:>8} bytes on the wire, peak rate ≈ {peak:.0}/s");
    }
    let (down, cached, hits, misses) = sc.meter.snapshot();
    println!(
        "transfer meter: {down} B downloaded, {cached} B served locally ({hits} hits / {misses} misses)"
    );

    // 3. Work offline against the clone.
    let local = sc
        .local_query(&Query::table("hle").aggregate(hedc_metadb::AggFunc::CountStar))
        .expect("local query");
    println!(
        "\nlocal clone holds {} events (offline queryable)",
        local.scalar_int().unwrap()
    );

    // 4. Produce a result locally and upload it (§3.3: results "may be
    //    uploaded and imported into the system").
    let hle = hedc
        .dm()
        .services()
        .query(&session, Query::table("hle").limit(1))
        .expect("query")
        .rows[0][0]
        .as_int()
        .unwrap();
    let spec = hedc_dm::AnaSpec {
        hle_id: hle,
        kind: "lightcurve".into(),
        fingerprint: "streamcorder-local-lc".into(),
        t_start: view_t0,
        t_end: view_t0 + 3_600_000,
        energy_lo: 3.0,
        energy_hi: 100.0,
        param_grid: None,
        param_bins: None,
        param_bin_ms: Some(1000.0),
        duration_ms: 1200,
        cpu_ms: 1100,
        output_bytes: 2048,
        product_type: "series".into(),
        calib_version: 1,
    };
    let files = vec![hedc_dm::FilePayload {
        archive_id: hedc.config().derived_archive(),
        path: "uploads/remote-sci/local-lc.json".into(),
        role: "data".into(),
        data: br#"{"source":"streamcorder","bins":3600}"#.to_vec(),
    }];
    let (ana_id, _) = sc.upload_analysis(&spec, &files).expect("upload");
    hedc.dm()
        .services()
        .publish(&session, "ana", ana_id)
        .expect("publish");
    println!("uploaded local analysis as #{ana_id} and published it");

    hedc.shutdown();
}
