//! Recalibration sweep: the §3.1 "moving target" in action. Load data under
//! calibration v1, compute analyses, then apply a refined calibration:
//! every raw unit is re-derived, dependent analyses are invalidated with a
//! version trail, and the PL recomputes them from the stale queue.
//!
//! Run with: `cargo run --release -p hedc-core --example recalibration`

use hedc_core::{Hedc, HedcConfig};
use hedc_events::{Calibration, GenConfig};
use hedc_metadb::{Expr, Query};
use hedc_pl::{Priority, RequestSpec};

fn main() {
    let hedc = Hedc::start(HedcConfig::default()).expect("boot");
    hedc.load_telemetry(
        &GenConfig {
            duration_ms: 3600 * 1000,
            flares_per_hour: 4.0,
            background_rate: 20.0,
            seed: 3,
            ..GenConfig::default()
        },
        300_000,
    )
    .expect("ingest");

    // Compute a spectrum for every detected flare under calibration v1.
    let session = hedc.dm().import_session();
    let svc = hedc.dm().services();
    let flares = svc
        .query(
            &session,
            Query::table("hle")
                .filter(Expr::eq("event_type", "flare"))
                .limit(4),
        )
        .expect("query");
    println!("computing {} v1 spectra...", flares.rows.len());
    for row in &flares.rows {
        let hle = row[0].as_int().unwrap();
        let t0 = row[3].as_int().unwrap() as u64;
        let t1 = row[4].as_int().unwrap() as u64;
        hedc.pl()
            .submit_sync(
                session.clone(),
                RequestSpec::new(
                    "spectrum",
                    hedc_analysis::AnalysisParams::window(t0, t1),
                    hle,
                ),
            )
            .expect("spectrum");
    }

    // The detector team delivers a refined calibration: +3% gain, +0.2 keV.
    let v1 = Calibration::launch();
    let v2 = v1.recalibrated(0.03, 0.2);
    println!(
        "\napplying calibration v{} -> v{}...",
        v1.version, v2.version
    );
    let report = hedc
        .dm()
        .versioning()
        .apply_recalibration(&v1, &v2)
        .expect("recalibration");
    println!(
        "  {} raw units re-derived, {} analyses invalidated",
        report.units_recalibrated, report.analyses_invalidated
    );

    // Version history of the first raw unit.
    let raw = hedc.dm().io.query(&Query::table("raw_unit")).expect("raw");
    let raw_id = raw.rows[0][0].as_int().unwrap();
    println!("\nversion history of raw unit #{raw_id}:");
    for (version, reason) in hedc.dm().versioning().history(raw_id).expect("history") {
        println!("  v{version}: {reason}");
    }

    // Recompute the stale queue at batch priority (§3.1: "a significant
    // number of the analyses ... may have to be recomputed").
    let stale = hedc.dm().versioning().stale_analyses().expect("stale");
    println!("\nrecomputing {} stale analyses...", stale.len());
    let mut recomputed = 0;
    for ana_id in stale {
        let row = &hedc
            .dm()
            .io
            .query(&Query::table("ana").filter(Expr::eq("id", ana_id)))
            .expect("ana")
            .rows[0];
        let hle = row[1].as_int().unwrap();
        let t0 = row[6].as_int().unwrap() as u64;
        let t1 = row[7].as_int().unwrap() as u64;
        let kind = row[4].as_text().unwrap().to_string();
        let outcome = hedc
            .pl()
            .submit_sync(
                session.clone(),
                RequestSpec::new(&kind, hedc_analysis::AnalysisParams::window(t0, t1), hle)
                    .priority(Priority::Batch)
                    .force(), // the old result is obsolete, never reuse it
            )
            .expect("recompute");
        recomputed += 1;
        println!(
            "  {kind} for hle #{hle} -> new analysis #{}",
            outcome.ana_id()
        );
    }
    println!("\n{recomputed} analyses now current under calibration v2");

    hedc.shutdown();
}
