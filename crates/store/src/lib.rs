//! # hedc-store — paged storage engine
//!
//! A single-file storage engine for the HEDC metadata tier: slotted
//! pages ([`page`]), a budgeted page cache ([`pager`]), copy-on-write
//! B-trees ([`btree`]), and a single-writer/multi-reader MVCC layer
//! ([`Store`] / [`Snapshot`] / [`WriteTxn`]).
//!
//! Design goals (DESIGN.md §13):
//!
//! - **Readers never block the writer, and vice versa.** A snapshot is
//!   an `Arc` of the last committed root set; copy-on-write pages make
//!   every page reachable from it immutable.
//! - **Tables larger than RAM.** The page cache holds a configurable
//!   budget of pages; everything else lives in the backing file.
//! - **Durability rides the WAL above.** The page file is scratch: it
//!   is rebuilt by WAL replay at open, so commits here never fsync.
//!
//! ```
//! use hedc_store::{Store, StoreOptions};
//! use std::ops::Bound;
//!
//! let store = Store::open(StoreOptions::default()).unwrap();
//! let mut txn = store.begin();
//! let tree = txn.create_tree();
//! txn.insert(tree, b"hale-bopp", b"comet").unwrap();
//! txn.commit().unwrap();
//!
//! let snap = store.snapshot();
//! assert_eq!(snap.get(tree, b"hale-bopp").unwrap().as_deref(), Some(&b"comet"[..]));
//! let all: Vec<_> = snap.range(tree, Bound::Unbounded, Bound::Unbounded).collect();
//! assert_eq!(all.len(), 1);
//! ```

#![warn(missing_docs)]

mod btree;
pub mod page;
mod pager;
mod store;

pub use pager::{CacheStats, StoreOptions};
pub use store::{Cursor, Snapshot, Store, TreeId, WriteTxn};

/// Errors surfaced by the storage engine.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A key exceeded the per-page-size key budget.
    KeyTooLarge {
        /// Offending key length in bytes.
        len: usize,
        /// Maximum key length for the configured page size.
        max: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io: {e}"),
            StoreError::KeyTooLarge { len, max } => {
                write!(f, "key of {len} bytes exceeds page budget of {max}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::ops::Bound;

    fn tiny() -> Store {
        Store::open(StoreOptions {
            path: None,
            page_size: 256,
            cache_pages: 16,
        })
        .unwrap()
    }

    #[test]
    fn insert_get_roundtrip_with_splits() {
        let store = tiny();
        let mut txn = store.begin();
        let tree = txn.create_tree();
        for i in 0..500u32 {
            let k = format!("key-{:05}", i * 7919 % 500);
            txn.insert(tree, k.as_bytes(), &i.to_le_bytes()).unwrap();
        }
        txn.commit().unwrap();
        let snap = store.snapshot();
        for i in 0..500u32 {
            let k = format!("key-{:05}", i * 7919 % 500);
            assert!(snap.get(tree, k.as_bytes()).unwrap().is_some(), "{k}");
        }
        let all: Vec<_> = snap
            .range(tree, Bound::Unbounded, Bound::Unbounded)
            .collect();
        assert_eq!(all.len(), 500);
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(all, sorted, "range scan must be in key order");
    }

    #[test]
    fn delete_shrinks_back_to_empty() {
        let store = tiny();
        let mut txn = store.begin();
        let tree = txn.create_tree();
        for i in 0..300u32 {
            txn.insert(tree, format!("k{i:04}").as_bytes(), b"v")
                .unwrap();
        }
        for i in 0..300u32 {
            assert!(txn.delete(tree, format!("k{i:04}").as_bytes()).unwrap());
        }
        txn.commit().unwrap();
        let snap = store.snapshot();
        assert_eq!(
            snap.range(tree, Bound::Unbounded, Bound::Unbounded).count(),
            0
        );
    }

    #[test]
    fn snapshots_are_point_in_time() {
        let store = tiny();
        let mut txn = store.begin();
        let tree = txn.create_tree();
        txn.insert(tree, b"a", b"1").unwrap();
        txn.commit().unwrap();

        let before = store.snapshot();
        let mut txn = store.begin();
        txn.insert(tree, b"a", b"2").unwrap();
        txn.insert(tree, b"b", b"3").unwrap();
        txn.commit().unwrap();
        let after = store.snapshot();

        assert_eq!(before.get(tree, b"a").unwrap().as_deref(), Some(&b"1"[..]));
        assert_eq!(before.get(tree, b"b").unwrap(), None);
        assert_eq!(after.get(tree, b"a").unwrap().as_deref(), Some(&b"2"[..]));
        assert_eq!(after.get(tree, b"b").unwrap().as_deref(), Some(&b"3"[..]));
        assert_eq!(store.active_snapshots(), 2);
        drop(before);
        drop(after);
        assert_eq!(store.active_snapshots(), 0);
    }

    #[test]
    fn rollback_discards_changes_and_reuses_pages() {
        let store = tiny();
        let mut txn = store.begin();
        let tree = txn.create_tree();
        txn.insert(tree, b"keep", b"1").unwrap();
        txn.commit().unwrap();

        let before = store.allocated_pages();
        let mut txn = store.begin();
        for i in 0..200u32 {
            txn.insert(tree, format!("drop{i}").as_bytes(), b"x")
                .unwrap();
        }
        drop(txn); // rollback

        let snap = store.snapshot();
        assert_eq!(snap.get(tree, b"keep").unwrap().as_deref(), Some(&b"1"[..]));
        assert_eq!(snap.get(tree, b"drop0").unwrap(), None);
        drop(snap);

        // A same-sized retry must reuse the rolled-back pages rather
        // than growing the file.
        let mut txn = store.begin();
        for i in 0..200u32 {
            txn.insert(tree, format!("drop{i}").as_bytes(), b"x")
                .unwrap();
        }
        txn.commit().unwrap();
        assert!(
            store.allocated_pages() <= before + 220,
            "rollback must recycle pages: before={} after={}",
            before,
            store.allocated_pages()
        );
    }

    #[test]
    fn overflow_values_roundtrip() {
        let store = tiny();
        let mut txn = store.begin();
        let tree = txn.create_tree();
        let big: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        txn.insert(tree, b"big", &big).unwrap();
        txn.insert(tree, b"small", b"s").unwrap();
        txn.commit().unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.get(tree, b"big").unwrap().unwrap(), big);
        // Replacing an overflow value frees its chain.
        let mut txn = store.begin();
        txn.insert(tree, b"big", b"tiny now").unwrap();
        txn.commit().unwrap();
        drop(snap);
        let snap = store.snapshot();
        assert_eq!(
            snap.get(tree, b"big").unwrap().as_deref(),
            Some(&b"tiny now"[..])
        );
    }

    #[test]
    fn oversized_key_is_rejected() {
        let store = tiny();
        let mut txn = store.begin();
        let tree = txn.create_tree();
        let huge = vec![b'k'; 4096];
        assert!(matches!(
            txn.insert(tree, &huge, b"v"),
            Err(StoreError::KeyTooLarge { .. })
        ));
    }

    #[test]
    fn freed_pages_wait_for_snapshots() {
        let store = tiny();
        let mut txn = store.begin();
        let tree = txn.create_tree();
        for i in 0..100u32 {
            txn.insert(tree, format!("k{i:03}").as_bytes(), b"v1")
                .unwrap();
        }
        txn.commit().unwrap();

        let pinned = store.snapshot();
        // Churn: repeatedly rewrite; the old pages cannot be reused
        // while `pinned` is alive, so the file grows.
        for round in 0..5 {
            let mut txn = store.begin();
            for i in 0..100u32 {
                txn.insert(
                    tree,
                    format!("k{i:03}").as_bytes(),
                    format!("v{round}").as_bytes(),
                )
                .unwrap();
            }
            txn.commit().unwrap();
        }
        // The pinned snapshot still reads the original values.
        assert_eq!(
            pinned.get(tree, b"k000").unwrap().as_deref(),
            Some(&b"v1"[..])
        );
        drop(pinned);

        // After release, churn stops growing the file.
        let grown = store.allocated_pages();
        for round in 0..5 {
            let mut txn = store.begin();
            for i in 0..100u32 {
                txn.insert(
                    tree,
                    format!("k{i:03}").as_bytes(),
                    format!("w{round}").as_bytes(),
                )
                .unwrap();
            }
            txn.commit().unwrap();
        }
        assert!(
            store.allocated_pages() <= grown + 5,
            "reclamation must recycle pages: {} -> {}",
            grown,
            store.allocated_pages()
        );
    }

    #[test]
    fn range_bounds_are_respected() {
        let store = tiny();
        let mut txn = store.begin();
        let tree = txn.create_tree();
        for i in 0..50u32 {
            txn.insert(tree, format!("k{i:02}").as_bytes(), b"")
                .unwrap();
        }
        txn.commit().unwrap();
        let snap = store.snapshot();
        let keys: Vec<String> = snap
            .range(
                tree,
                Bound::Excluded(&b"k10"[..]),
                Bound::Included(b"k13".to_vec()),
            )
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        assert_eq!(keys, vec!["k11", "k12", "k13"]);
    }
}
