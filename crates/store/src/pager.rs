//! File-backed pager with a budgeted page cache.
//!
//! The store file is a flat array of fixed-size pages addressed by
//! [`PageId`]. Committed pages are immutable (copy-on-write discipline
//! lives in the transaction layer), which lets the cache hand out
//! `Arc<Page>` clones with no per-page content locks: a cached page can
//! never change under a reader.
//!
//! The cache is an LRU bounded in *pages* (`cache_pages`); eviction only
//! drops the cache's own reference, so pages pinned by in-flight readers
//! stay alive until they drop their `Arc`.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use std::sync::Mutex;

use crate::page::{Page, PageId};

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// Options controlling a [`crate::Store`]'s file, page size, and cache
/// budget.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Backing file path. `None` creates a scratch file in the OS temp
    /// directory that is deleted when the store is dropped.
    pub path: Option<PathBuf>,
    /// Page size in bytes; clamped to `[128, 32768]` and rounded to a
    /// multiple of 64.
    pub page_size: usize,
    /// Page-cache budget in pages (minimum 8).
    pub cache_pages: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            path: None,
            page_size: 4096,
            cache_pages: 1024,
        }
    }
}

/// Counters describing page-cache traffic since the store opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served from the cache.
    pub hits: u64,
    /// Reads that went to the file.
    pub misses: u64,
    /// Pages dropped to stay within the cache budget.
    pub evictions: u64,
    /// Pages currently resident in the cache.
    pub resident: u64,
}

struct CacheInner {
    map: HashMap<PageId, (Arc<Page>, u64)>,
    lru: BTreeMap<u64, PageId>,
    clock: u64,
    budget: usize,
}

impl CacheInner {
    fn touch(&mut self, id: PageId) -> Option<Arc<Page>> {
        let clock = self.clock;
        self.clock += 1;
        if let Some((page, stamp)) = self.map.get_mut(&id) {
            let old = *stamp;
            *stamp = clock;
            let page = page.clone();
            self.lru.remove(&old);
            self.lru.insert(clock, id);
            Some(page)
        } else {
            None
        }
    }

    /// Insert `page`, returning the number of evictions performed.
    fn insert(&mut self, id: PageId, page: Arc<Page>) -> u64 {
        let clock = self.clock;
        self.clock += 1;
        if let Some((_, old)) = self.map.insert(id, (page, clock)) {
            self.lru.remove(&old);
        }
        self.lru.insert(clock, id);
        let mut evicted = 0;
        while self.map.len() > self.budget {
            let (&stamp, &victim) = self.lru.iter().next().expect("lru tracks map");
            self.lru.remove(&stamp);
            self.map.remove(&victim);
            evicted += 1;
        }
        evicted
    }

    fn remove(&mut self, id: PageId) {
        if let Some((_, stamp)) = self.map.remove(&id) {
            self.lru.remove(&stamp);
        }
    }
}

/// File + cache layer under the store. One pager per store; shared by
/// the writer and all snapshots.
pub(crate) struct Pager {
    file: File,
    path: PathBuf,
    owns_file: bool,
    page_size: usize,
    cache: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    obs_hit: Arc<hedc_obs::Counter>,
    obs_miss: Arc<hedc_obs::Counter>,
    obs_evict: Arc<hedc_obs::Counter>,
    obs_resident: Arc<hedc_obs::Gauge>,
}

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

impl Pager {
    pub(crate) fn open(opts: &StoreOptions) -> io::Result<Pager> {
        let page_size = opts.page_size.clamp(128, 32768) / 64 * 64;
        let (path, owns_file) = match &opts.path {
            Some(p) => (p.clone(), false),
            None => {
                let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
                let name = format!("hedc-store-{}-{}.pages", std::process::id(), seq);
                (std::env::temp_dir().join(name), true)
            }
        };
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let reg = hedc_obs::global();
        Ok(Pager {
            file,
            path,
            owns_file,
            page_size,
            cache: Mutex::new(CacheInner {
                map: HashMap::new(),
                lru: BTreeMap::new(),
                clock: 0,
                budget: opts.cache_pages.max(8),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            obs_hit: reg.counter("store.page_cache.hit"),
            obs_miss: reg.counter("store.page_cache.miss"),
            obs_evict: reg.counter("store.page_cache.evict"),
            obs_resident: reg.gauge("store.page_cache.resident"),
        })
    }

    pub(crate) fn page_size(&self) -> usize {
        self.page_size
    }

    pub(crate) fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Read a committed page, going through the cache.
    pub(crate) fn read(&self, id: PageId) -> io::Result<Arc<Page>> {
        if let Some(page) = self
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .touch(id)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.obs_hit.inc();
            return Ok(page);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.obs_miss.inc();
        let mut buf = vec![0u8; self.page_size];
        self.read_exact_at(&mut buf, id as u64 * self.page_size as u64)?;
        let page = Arc::new(Page::from_bytes(buf));
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        let evicted = cache.insert(id, page.clone());
        let resident = cache.map.len();
        drop(cache);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.obs_evict.add(evicted);
        }
        self.obs_resident.set(resident as i64);
        Ok(page)
    }

    /// Write a freshly committed page to the file and publish it in the
    /// cache.
    pub(crate) fn write(&self, id: PageId, page: Arc<Page>) -> io::Result<()> {
        self.write_all_at(page.bytes(), id as u64 * self.page_size as u64)?;
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        let evicted = cache.insert(id, page);
        let resident = cache.map.len();
        drop(cache);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.obs_evict.add(evicted);
        }
        self.obs_resident.set(resident as i64);
        Ok(())
    }

    /// Drop a reclaimed page from the cache so its slot can be reused
    /// for unrelated content.
    pub(crate) fn forget(&self, id: PageId) {
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(id);
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident: self
                .cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .map
                .len() as u64,
        }
    }

    #[cfg(unix)]
    fn read_exact_at(&self, buf: &mut [u8], off: u64) -> io::Result<()> {
        self.file.read_exact_at(buf, off)
    }

    #[cfg(unix)]
    fn write_all_at(&self, buf: &[u8], off: u64) -> io::Result<()> {
        self.file.write_all_at(buf, off)
    }
}

impl Drop for Pager {
    fn drop(&mut self) {
        if self.owns_file {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}
