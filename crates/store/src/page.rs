//! Slotted-page layout.
//!
//! Every page is a fixed-size byte array with a 16-byte header, a slot
//! array growing forward from the header, and cell content growing
//! backward from the end of the page. Cells are addressed through the
//! slot array so they can be kept sorted by key without moving payload
//! bytes; deleting a cell leaves a fragment that `compact` reclaims when
//! contiguous free space runs out.
//!
//! Header layout (little-endian):
//!
//! | offset | size | field                                          |
//! |--------|------|------------------------------------------------|
//! | 0      | 1    | page kind (1 = leaf, 2 = interior, 3 = overflow) |
//! | 1      | 1    | reserved                                       |
//! | 2      | 2    | cell count (overflow: chunk length in bytes)   |
//! | 4      | 4    | next page (overflow chain only)                |
//! | 8      | 4    | rightmost child (interior only)                |
//! | 12     | 2    | cell content start offset                      |
//! | 14     | 2    | fragmented free bytes                          |
//!
//! Cell formats:
//!
//! - leaf, inline value:   `[klen u16][0u8][vlen u16][key][value]`
//! - leaf, overflow value: `[klen u16][1u8][total u32][head u32][key]`
//! - interior:             `[klen u16][child u32][key]`
//!
//! Interior pages use the *high-key* convention: the separator stored
//! with a child is an upper bound (>=) for every key in that child's
//! subtree, and the `rightmost` child covers everything greater than the
//! last separator. Separators are allowed to go stale-high after
//! deletes; lookups and inserts route identically, so this is safe.

use std::cmp::Ordering;

/// Identifier of a page within the store file. Page 0 is reserved as the
/// null sentinel and never allocated.
pub type PageId = u32;

/// Sentinel meaning "no page" (empty tree root, end of overflow chain).
pub const NULL_PAGE: PageId = 0;

/// Size of the fixed page header in bytes.
pub const HEADER: usize = 16;

const KIND_LEAF: u8 = 1;
const KIND_INTERIOR: u8 = 2;
const KIND_OVERFLOW: u8 = 3;

/// Kind of a page, stored in the first header byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// B-tree leaf holding key/value cells.
    Leaf,
    /// B-tree interior node holding key/child cells.
    Interior,
    /// Overflow-chain page holding a chunk of a large value.
    Overflow,
}

/// A leaf cell's value, which is either inline or spilled to an
/// overflow chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeafValue<'a> {
    /// Value stored inline in the leaf cell.
    Inline(&'a [u8]),
    /// Value spilled to an overflow chain.
    Overflow {
        /// Total value length in bytes across the chain.
        total: u32,
        /// First page of the overflow chain.
        head: PageId,
    },
}

/// Owned form of [`LeafValue`] used when building cells.
#[derive(Debug, Clone)]
pub enum OwnedLeafValue {
    /// Value stored inline.
    Inline(Vec<u8>),
    /// Value spilled to an overflow chain.
    Overflow {
        /// Total value length in bytes across the chain.
        total: u32,
        /// First page of the overflow chain.
        head: PageId,
    },
}

impl OwnedLeafValue {
    fn encoded_len(&self) -> usize {
        match self {
            OwnedLeafValue::Inline(v) => 2 + v.len(),
            OwnedLeafValue::Overflow { .. } => 8,
        }
    }
}

/// A single fixed-size page. Committed pages are immutable; mutation
/// happens only on private copies owned by a write transaction.
#[derive(Clone)]
pub struct Page {
    data: Vec<u8>,
}

fn u16_at(d: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([d[off], d[off + 1]])
}

fn u32_at(d: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([d[off], d[off + 1], d[off + 2], d[off + 3]])
}

impl Page {
    fn blank(size: usize, kind: u8) -> Page {
        debug_assert!((64..=32768).contains(&size));
        let mut data = vec![0u8; size];
        data[0] = kind;
        data[12..14].copy_from_slice(&(size as u16).to_le_bytes());
        Page { data }
    }

    /// Create an empty leaf page.
    pub fn new_leaf(size: usize) -> Page {
        Page::blank(size, KIND_LEAF)
    }

    /// Create an empty interior page.
    pub fn new_interior(size: usize) -> Page {
        Page::blank(size, KIND_INTERIOR)
    }

    /// Create an overflow page holding `chunk`, linked to `next`.
    pub fn new_overflow(size: usize, chunk: &[u8], next: PageId) -> Page {
        debug_assert!(chunk.len() <= size - HEADER);
        let mut p = Page::blank(size, KIND_OVERFLOW);
        p.data[2..4].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
        p.data[4..8].copy_from_slice(&next.to_le_bytes());
        p.data[HEADER..HEADER + chunk.len()].copy_from_slice(chunk);
        p
    }

    /// Reconstruct a page from raw file bytes.
    pub fn from_bytes(data: Vec<u8>) -> Page {
        Page { data }
    }

    /// Raw page bytes (exactly page-size long).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Page size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Kind tag of this page.
    pub fn kind(&self) -> PageKind {
        match self.data[0] {
            KIND_LEAF => PageKind::Leaf,
            KIND_INTERIOR => PageKind::Interior,
            KIND_OVERFLOW => PageKind::Overflow,
            k => panic!("corrupt page kind {k}"),
        }
    }

    /// Number of cells on a leaf/interior page.
    pub fn ncells(&self) -> usize {
        u16_at(&self.data, 2) as usize
    }

    fn set_ncells(&mut self, n: usize) {
        self.data[2..4].copy_from_slice(&(n as u16).to_le_bytes());
    }

    fn content_start(&self) -> usize {
        u16_at(&self.data, 12) as usize
    }

    fn set_content_start(&mut self, v: usize) {
        self.data[12..14].copy_from_slice(&(v as u16).to_le_bytes());
    }

    fn frag(&self) -> usize {
        u16_at(&self.data, 14) as usize
    }

    fn set_frag(&mut self, v: usize) {
        self.data[14..16].copy_from_slice(&(v.min(u16::MAX as usize) as u16).to_le_bytes());
    }

    fn slot(&self, i: usize) -> usize {
        u16_at(&self.data, HEADER + 2 * i) as usize
    }

    fn set_slot(&mut self, i: usize, off: usize) {
        self.data[HEADER + 2 * i..HEADER + 2 * i + 2].copy_from_slice(&(off as u16).to_le_bytes());
    }

    // ---- overflow pages ----

    /// Next page in an overflow chain ([`NULL_PAGE`] at the end).
    pub fn overflow_next(&self) -> PageId {
        u32_at(&self.data, 4)
    }

    /// Payload chunk of an overflow page.
    pub fn overflow_chunk(&self) -> &[u8] {
        let len = u16_at(&self.data, 2) as usize;
        &self.data[HEADER..HEADER + len]
    }

    /// Largest chunk an overflow page of `size` bytes can hold.
    pub fn overflow_capacity(size: usize) -> usize {
        size - HEADER
    }

    // ---- interior pages ----

    /// Rightmost child of an interior page (keys greater than every
    /// separator).
    pub fn rightmost(&self) -> PageId {
        u32_at(&self.data, 8)
    }

    /// Set the rightmost child pointer.
    pub fn set_rightmost(&mut self, child: PageId) {
        self.data[8..12].copy_from_slice(&child.to_le_bytes());
    }

    /// Child pointer of interior cell `i`.
    pub fn cell_child(&self, i: usize) -> PageId {
        let off = self.slot(i);
        u32_at(&self.data, off + 2)
    }

    /// Overwrite the child pointer of interior cell `i` in place (the
    /// cell does not change size, so no reallocation is needed).
    pub fn set_cell_child(&mut self, i: usize, child: PageId) {
        let off = self.slot(i);
        self.data[off + 2..off + 6].copy_from_slice(&child.to_le_bytes());
    }

    // ---- common cell accessors ----

    /// Key bytes of cell `i` (leaf or interior).
    pub fn cell_key(&self, i: usize) -> &[u8] {
        let off = self.slot(i);
        let klen = u16_at(&self.data, off) as usize;
        match self.kind() {
            PageKind::Leaf => {
                let vtag = self.data[off + 2];
                if vtag == 0 {
                    &self.data[off + 5..off + 5 + klen]
                } else {
                    &self.data[off + 11..off + 11 + klen]
                }
            }
            PageKind::Interior => &self.data[off + 6..off + 6 + klen],
            PageKind::Overflow => panic!("cell_key on overflow page"),
        }
    }

    /// Value of leaf cell `i`.
    pub fn cell_value(&self, i: usize) -> LeafValue<'_> {
        debug_assert_eq!(self.kind(), PageKind::Leaf);
        let off = self.slot(i);
        let klen = u16_at(&self.data, off) as usize;
        if self.data[off + 2] == 0 {
            let vlen = u16_at(&self.data, off + 3) as usize;
            let vstart = off + 5 + klen;
            LeafValue::Inline(&self.data[vstart..vstart + vlen])
        } else {
            LeafValue::Overflow {
                total: u32_at(&self.data, off + 3),
                head: u32_at(&self.data, off + 7),
            }
        }
    }

    /// Binary-search the page's cells for `key`. `Ok(i)` = exact match at
    /// cell `i`; `Err(i)` = `key` sorts before cell `i`.
    pub fn search(&self, key: &[u8]) -> Result<usize, usize> {
        let mut lo = 0usize;
        let mut hi = self.ncells();
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.cell_key(mid).cmp(key) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    // ---- free-space bookkeeping ----

    fn slots_end(&self) -> usize {
        HEADER + 2 * self.ncells()
    }

    /// Contiguous free bytes between the slot array and cell content.
    fn gap(&self) -> usize {
        self.content_start() - self.slots_end()
    }

    /// Total free bytes (contiguous gap plus fragments).
    pub fn free_space(&self) -> usize {
        self.gap() + self.frag()
    }

    /// Bytes used by live cell payloads plus slots (excludes header).
    pub fn used(&self) -> usize {
        self.size() - HEADER - self.free_space()
    }

    /// Rewrite the page so all free space is contiguous.
    pub fn compact(&mut self) {
        let n = self.ncells();
        let mut cells: Vec<Vec<u8>> = Vec::with_capacity(n);
        for i in 0..n {
            let off = self.slot(i);
            let len = self.cell_len_at(off);
            cells.push(self.data[off..off + len].to_vec());
        }
        let size = self.size();
        let mut end = size;
        for (i, c) in cells.iter().enumerate() {
            end -= c.len();
            self.data[end..end + c.len()].copy_from_slice(c);
            self.set_slot(i, end);
        }
        self.set_content_start(end);
        self.set_frag(0);
    }

    fn cell_len_at(&self, off: usize) -> usize {
        let klen = u16_at(&self.data, off) as usize;
        match self.kind() {
            PageKind::Leaf => {
                if self.data[off + 2] == 0 {
                    let vlen = u16_at(&self.data, off + 3) as usize;
                    5 + klen + vlen
                } else {
                    11 + klen
                }
            }
            PageKind::Interior => 6 + klen,
            PageKind::Overflow => panic!("cell_len_at on overflow page"),
        }
    }

    /// Size a leaf cell for `key` and `val` would occupy (payload only,
    /// not counting its slot).
    pub fn leaf_cell_size(key: &[u8], val: &OwnedLeafValue) -> usize {
        3 + val.encoded_len() + key.len()
    }

    /// Size an interior cell for `key` would occupy.
    pub fn interior_cell_size(key: &[u8]) -> usize {
        6 + key.len()
    }

    fn insert_cell(&mut self, i: usize, cell: &[u8]) -> bool {
        let need = cell.len() + 2;
        if self.free_space() < need {
            return false;
        }
        if self.gap() < need {
            self.compact();
        }
        let n = self.ncells();
        debug_assert!(i <= n);
        // Shift slots [i..n) right by one.
        for j in (i..n).rev() {
            let s = self.slot(j);
            self.set_slot(j + 1, s);
        }
        let off = self.content_start() - cell.len();
        self.data[off..off + cell.len()].copy_from_slice(cell);
        self.set_content_start(off);
        self.set_slot(i, off);
        self.set_ncells(n + 1);
        true
    }

    /// Insert a leaf cell at position `i`. Returns `false` (page
    /// unchanged) when there is not enough free space.
    pub fn insert_leaf_cell(&mut self, i: usize, key: &[u8], val: &OwnedLeafValue) -> bool {
        debug_assert_eq!(self.kind(), PageKind::Leaf);
        let mut cell = Vec::with_capacity(Page::leaf_cell_size(key, val));
        cell.extend_from_slice(&(key.len() as u16).to_le_bytes());
        match val {
            OwnedLeafValue::Inline(v) => {
                cell.push(0);
                cell.extend_from_slice(&(v.len() as u16).to_le_bytes());
                cell.extend_from_slice(key);
                cell.extend_from_slice(v);
            }
            OwnedLeafValue::Overflow { total, head } => {
                cell.push(1);
                cell.extend_from_slice(&total.to_le_bytes());
                cell.extend_from_slice(&head.to_le_bytes());
                cell.extend_from_slice(key);
            }
        }
        self.insert_cell(i, &cell)
    }

    /// Insert an interior cell at position `i`. Returns `false` when the
    /// page is full.
    pub fn insert_interior_cell(&mut self, i: usize, key: &[u8], child: PageId) -> bool {
        debug_assert_eq!(self.kind(), PageKind::Interior);
        let mut cell = Vec::with_capacity(Page::interior_cell_size(key));
        cell.extend_from_slice(&(key.len() as u16).to_le_bytes());
        cell.extend_from_slice(&child.to_le_bytes());
        cell.extend_from_slice(key);
        self.insert_cell(i, &cell)
    }

    /// Remove cell `i`, leaving its payload bytes as a fragment.
    pub fn remove_cell(&mut self, i: usize) {
        let n = self.ncells();
        debug_assert!(i < n);
        let off = self.slot(i);
        let len = self.cell_len_at(off);
        if off == self.content_start() {
            self.set_content_start(off + len);
        } else {
            self.set_frag(self.frag() + len);
        }
        for j in i + 1..n {
            let s = self.slot(j);
            self.set_slot(j - 1, s);
        }
        self.set_ncells(n - 1);
        // The vacated slot word becomes part of the gap automatically.
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("kind", &self.kind())
            .field("ncells", &self.ncells())
            .field("free", &self.free_space())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_insert_search_remove() {
        let mut p = Page::new_leaf(256);
        for (i, k) in [b"bb", b"dd", b"ff"].iter().enumerate() {
            assert!(p.insert_leaf_cell(i, *k, &OwnedLeafValue::Inline(vec![i as u8])));
        }
        assert_eq!(p.ncells(), 3);
        assert_eq!(p.search(b"dd"), Ok(1));
        assert_eq!(p.search(b"cc"), Err(1));
        assert_eq!(p.search(b"zz"), Err(3));
        assert_eq!(p.cell_value(1), LeafValue::Inline(&[1u8][..]));
        p.remove_cell(1);
        assert_eq!(p.ncells(), 2);
        assert_eq!(p.search(b"dd"), Err(1));
        assert_eq!(p.cell_key(1), b"ff");
    }

    #[test]
    fn compaction_reclaims_fragments() {
        let mut p = Page::new_leaf(128);
        let mut i = 0;
        while p.insert_leaf_cell(
            p.ncells(),
            format!("k{i:03}").as_bytes(),
            &OwnedLeafValue::Inline(vec![0; 4]),
        ) {
            i += 1;
        }
        assert!(i >= 3);
        // Free a middle cell, then insert something that only fits after
        // compaction.
        p.remove_cell(1);
        p.remove_cell(1);
        let before = p.free_space();
        assert!(p.insert_leaf_cell(1, b"k001", &OwnedLeafValue::Inline(vec![9; 8])));
        assert!(p.free_space() < before);
        assert_eq!(p.cell_key(1), b"k001");
    }

    #[test]
    fn interior_cells_and_rightmost() {
        let mut p = Page::new_interior(256);
        assert!(p.insert_interior_cell(0, b"m", 7));
        assert!(p.insert_interior_cell(1, b"t", 9));
        p.set_rightmost(11);
        assert_eq!(p.cell_child(0), 7);
        p.set_cell_child(0, 8);
        assert_eq!(p.cell_child(0), 8);
        assert_eq!(p.cell_key(1), b"t");
        assert_eq!(p.rightmost(), 11);
    }

    #[test]
    fn overflow_roundtrip() {
        let chunk = vec![7u8; 100];
        let p = Page::new_overflow(128, &chunk, 42);
        assert_eq!(p.kind(), PageKind::Overflow);
        assert_eq!(p.overflow_next(), 42);
        assert_eq!(p.overflow_chunk(), &chunk[..]);
    }
}
