//! Store: named B-trees + single-writer/multi-reader MVCC.
//!
//! Concurrency model (mirrors the PulseDB ADR discussed in DESIGN.md
//! §13): exactly one write transaction at a time, serialized by a writer
//! mutex; any number of concurrent snapshots, each pinning the root set
//! published by the last commit. Because pages are copy-on-write, a
//! snapshot never sees a torn page and never takes a lock on the read
//! path beyond the page-cache mutex.
//!
//! Page reclamation: pages superseded by a commit at sequence `s` are
//! still referenced by snapshots opened before `s`. They sit on a
//! pending-free queue tagged with `s` and return to the free pool only
//! once every active snapshot's sequence is `>= s`.

use std::collections::HashMap;
use std::io;
use std::ops::Bound;
use std::sync::Arc;
use std::time::Instant;

use std::sync::{Mutex, MutexGuard};

use crate::btree;
use crate::page::{Page, PageId, NULL_PAGE};
use crate::pager::{CacheStats, Pager, StoreOptions};
use crate::{StoreError, StoreResult};

/// Identifier of one B-tree within a store.
pub type TreeId = u32;

/// Immutable root set published by a commit.
#[derive(Debug, Clone)]
struct Version {
    seq: u64,
    roots: Vec<PageId>,
}

struct State {
    current: Arc<Version>,
    /// Active snapshot sequences → refcount.
    active: std::collections::BTreeMap<u64, usize>,
    /// Pages freed by the commit that produced `seq`, reclaimable once
    /// `min(active) >= seq`.
    pending: std::collections::VecDeque<(u64, Vec<PageId>)>,
    /// Reclaimed page ids ready for reuse.
    free: Vec<PageId>,
    next_page: PageId,
}

impl State {
    fn min_active(&self) -> u64 {
        self.active.keys().next().copied().unwrap_or(u64::MAX)
    }

    fn reclaim(&mut self, pager: &Pager) {
        let min = self.min_active();
        while let Some((seq, _)) = self.pending.front() {
            if *seq > min {
                break;
            }
            let (_, pages) = self.pending.pop_front().expect("checked front");
            for id in pages {
                pager.forget(id);
                self.free.push(id);
            }
        }
    }
}

struct StoreInner {
    pager: Pager,
    state: Mutex<State>,
    writer: Mutex<()>,
    obs_snapshots: Arc<hedc_obs::Gauge>,
    obs_writer_waiting: Arc<hedc_obs::Gauge>,
    obs_writer_stall: Arc<hedc_obs::Histogram>,
}

/// A paged storage engine holding any number of named B-trees, with
/// single-writer transactions and point-in-time snapshots.
///
/// Cheap to clone (`Arc` inside); all clones share the same file, cache,
/// and version state.
#[derive(Clone)]
pub struct Store {
    inner: Arc<StoreInner>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("path", &self.inner.pager.path())
            .field("page_size", &self.inner.pager.page_size())
            .finish_non_exhaustive()
    }
}

impl Store {
    /// Open (create) a store. The backing file is truncated: a store's
    /// durable contents always come from replaying a WAL above it, so
    /// the file itself is scratch space that lets tables exceed RAM.
    pub fn open(opts: StoreOptions) -> io::Result<Store> {
        let pager = Pager::open(&opts)?;
        let reg = hedc_obs::global();
        Ok(Store {
            inner: Arc::new(StoreInner {
                pager,
                state: Mutex::new(State {
                    current: Arc::new(Version {
                        seq: 0,
                        roots: Vec::new(),
                    }),
                    active: Default::default(),
                    pending: Default::default(),
                    free: Vec::new(),
                    next_page: 1, // page 0 is the NULL sentinel
                }),
                writer: Mutex::new(()),
                obs_snapshots: reg.gauge("store.snapshot.active"),
                obs_writer_waiting: reg.gauge("store.writer.waiting"),
                obs_writer_stall: reg.histogram("store.writer.stall"),
            }),
        })
    }

    /// Page size in bytes actually in use.
    pub fn page_size(&self) -> usize {
        self.inner.pager.page_size()
    }

    /// Path of the backing page file.
    pub fn path(&self) -> std::path::PathBuf {
        self.inner.pager.path().to_path_buf()
    }

    /// Page-cache traffic counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.pager.stats()
    }

    /// Highest page id ever allocated (a proxy for file size in pages).
    pub fn allocated_pages(&self) -> u64 {
        (self
            .inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .next_page
            - 1) as u64
    }

    /// Number of snapshots currently alive.
    pub fn active_snapshots(&self) -> usize {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .active
            .values()
            .sum()
    }

    /// Open a point-in-time snapshot of the last committed state.
    /// Snapshots never block the writer and are never blocked by it.
    pub fn snapshot(&self) -> Snapshot {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let version = state.current.clone();
        *state.active.entry(version.seq).or_insert(0) += 1;
        drop(state);
        self.inner.obs_snapshots.add(1);
        Snapshot {
            inner: self.inner.clone(),
            version,
        }
    }

    /// Begin the (single) write transaction, blocking until any other
    /// writer finishes. Stall time is recorded to `store.writer.stall`.
    pub fn begin(&self) -> WriteTxn<'_> {
        let waiting = &self.inner.obs_writer_waiting;
        waiting.add(1);
        let t0 = Instant::now();
        let guard = self.inner.writer.lock().unwrap_or_else(|e| e.into_inner());
        self.inner.obs_writer_stall.record(t0.elapsed());
        waiting.add(-1);
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let roots = state.current.roots.clone();
        let base_seq = state.current.seq;
        drop(state);
        WriteTxn {
            inner: &self.inner,
            _guard: guard,
            pages: TxnPages {
                inner: &self.inner,
                dirty: HashMap::new(),
                allocated: Vec::new(),
                freed: Vec::new(),
                reusable: Vec::new(),
            },
            roots,
            base_seq,
            done: false,
        }
    }
}

/// Page accessor for a write transaction: reads see the transaction's
/// dirty pages first, then committed state.
struct TxnPages<'s> {
    inner: &'s StoreInner,
    dirty: HashMap<PageId, Arc<Page>>,
    /// Ids newly allocated by this transaction (not yet visible).
    allocated: Vec<PageId>,
    /// Committed ids superseded by this transaction.
    freed: Vec<PageId>,
    /// Ids allocated then discarded within this transaction; reusable
    /// immediately.
    reusable: Vec<PageId>,
}

impl btree::Pages for TxnPages<'_> {
    fn load(&self, id: PageId) -> io::Result<Arc<Page>> {
        if let Some(p) = self.dirty.get(&id) {
            return Ok(p.clone());
        }
        self.inner.pager.read(id)
    }

    fn page_size(&self) -> usize {
        self.inner.pager.page_size()
    }
}

impl btree::PagesMut for TxnPages<'_> {
    fn alloc(&mut self) -> PageId {
        if let Some(id) = self.reusable.pop() {
            self.allocated.push(id);
            return id;
        }
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let id = if let Some(id) = state.free.pop() {
            id
        } else {
            let id = state.next_page;
            state.next_page += 1;
            id
        };
        drop(state);
        self.allocated.push(id);
        id
    }

    fn free(&mut self, id: PageId) {
        self.dirty.remove(&id);
        if let Some(pos) = self.allocated.iter().position(|&a| a == id) {
            self.allocated.swap_remove(pos);
            self.reusable.push(id);
        } else {
            self.freed.push(id);
        }
    }

    fn put(&mut self, id: PageId, page: Page) {
        self.dirty.insert(id, Arc::new(page));
    }

    fn cow(&mut self, id: PageId) -> io::Result<(PageId, Page)> {
        if let Some(arc) = self.dirty.remove(&id) {
            let page = Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone());
            return Ok((id, page));
        }
        let page = (*self.inner.pager.read(id)?).clone();
        self.free(id);
        let new_id = <TxnPages<'_> as btree::PagesMut>::alloc(self);
        Ok((new_id, page))
    }
}

/// The store's single write transaction. Dropping without `commit`
/// rolls back: nothing becomes visible and allocated pages return to
/// the free pool.
pub struct WriteTxn<'s> {
    inner: &'s StoreInner,
    _guard: MutexGuard<'s, ()>,
    pages: TxnPages<'s>,
    roots: Vec<PageId>,
    base_seq: u64,
    done: bool,
}

impl WriteTxn<'_> {
    /// Create a new, empty tree and return its id. Tree ids are dense
    /// and stable for the life of the store.
    pub fn create_tree(&mut self) -> TreeId {
        self.roots.push(NULL_PAGE);
        (self.roots.len() - 1) as TreeId
    }

    fn root(&self, tree: TreeId) -> PageId {
        self.roots.get(tree as usize).copied().unwrap_or(NULL_PAGE)
    }

    /// Insert or replace `key`. Returns `true` when an existing value
    /// was replaced.
    pub fn insert(&mut self, tree: TreeId, key: &[u8], val: &[u8]) -> StoreResult<bool> {
        let root = self.root(tree);
        let (new_root, replaced) = btree::insert(&mut self.pages, root, key, val)?;
        self.roots[tree as usize] = new_root;
        Ok(replaced)
    }

    /// Delete `key`. Returns `true` when the key was present.
    pub fn delete(&mut self, tree: TreeId, key: &[u8]) -> StoreResult<bool> {
        let root = self.root(tree);
        let (new_root, found) = btree::delete(&mut self.pages, root, key)?;
        self.roots[tree as usize] = new_root;
        Ok(found)
    }

    /// Point lookup, seeing this transaction's own writes.
    pub fn get(&self, tree: TreeId, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        btree::get(&self.pages, self.root(tree), key).map_err(StoreError::Io)
    }

    /// First entry with key `>= key`, seeing this transaction's own
    /// writes. Used for prefix-existence (unique) probes.
    pub fn seek_ge(&self, tree: TreeId, key: &[u8]) -> StoreResult<Option<(Vec<u8>, Vec<u8>)>> {
        btree::seek_ge(&self.pages, self.root(tree), key).map_err(StoreError::Io)
    }

    /// Durably stage every dirty page and atomically publish the new
    /// root set. Readers opening snapshots after `commit` returns see
    /// the new state; existing snapshots are untouched.
    pub fn commit(mut self) -> StoreResult<()> {
        // Write dirty pages to the file (and cache) before publishing.
        for (id, page) in self.pages.dirty.drain() {
            self.inner.pager.write(id, page).map_err(StoreError::Io)?;
        }
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let seq = self.base_seq + 1;
        state.current = Arc::new(Version {
            seq,
            roots: std::mem::take(&mut self.roots),
        });
        let freed = std::mem::take(&mut self.pages.freed);
        if !freed.is_empty() {
            state.pending.push_back((seq, freed));
        }
        // Ids allocated-then-discarded this txn were never visible.
        state.free.append(&mut self.pages.reusable);
        state.reclaim(&self.inner.pager);
        drop(state);
        self.done = true;
        Ok(())
    }
}

impl Drop for WriteTxn<'_> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // Rollback: every page this transaction allocated is invisible;
        // hand the ids straight back to the free pool.
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        for id in self.pages.allocated.drain(..) {
            self.inner.pager.forget(id);
            state.free.push(id);
        }
        state.free.append(&mut self.pages.reusable);
    }
}

/// A point-in-time, immutable view of the store. Reads never block the
/// writer; the writer never blocks reads.
pub struct Snapshot {
    inner: Arc<StoreInner>,
    version: Arc<Version>,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("seq", &self.version.seq)
            .finish_non_exhaustive()
    }
}

struct SnapPages<'a> {
    inner: &'a StoreInner,
}

impl btree::Pages for SnapPages<'_> {
    fn load(&self, id: PageId) -> io::Result<Arc<Page>> {
        self.inner.pager.read(id)
    }

    fn page_size(&self) -> usize {
        self.inner.pager.page_size()
    }
}

impl Snapshot {
    /// Commit sequence this snapshot observes.
    pub fn seq(&self) -> u64 {
        self.version.seq
    }

    fn root(&self, tree: TreeId) -> PageId {
        self.version
            .roots
            .get(tree as usize)
            .copied()
            .unwrap_or(NULL_PAGE)
    }

    /// Point lookup.
    pub fn get(&self, tree: TreeId, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        let pages = SnapPages { inner: &self.inner };
        btree::get(&pages, self.root(tree), key).map_err(StoreError::Io)
    }

    /// Iterate entries with keys in `[low, high]` (bounds respected per
    /// `Bound` semantics) in ascending key order.
    pub fn range(&self, tree: TreeId, low: Bound<&[u8]>, high: Bound<Vec<u8>>) -> Cursor<'_> {
        let pages = SnapPages { inner: &self.inner };
        let raw = btree::RawCursor::seek(&pages, self.root(tree), low);
        Cursor {
            snap: self,
            raw,
            high,
            error: None,
        }
    }
}

impl Clone for Snapshot {
    fn clone(&self) -> Self {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        *state.active.entry(self.version.seq).or_insert(0) += 1;
        drop(state);
        self.inner.obs_snapshots.add(1);
        Snapshot {
            inner: self.inner.clone(),
            version: self.version.clone(),
        }
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let seq = self.version.seq;
        if let Some(n) = state.active.get_mut(&seq) {
            *n -= 1;
            if *n == 0 {
                state.active.remove(&seq);
            }
        }
        state.reclaim(&self.inner.pager);
        drop(state);
        self.inner.obs_snapshots.add(-1);
    }
}

/// Ascending iterator over a snapshot range. I/O errors end the
/// iteration and are surfaced through [`Cursor::error`].
pub struct Cursor<'s> {
    snap: &'s Snapshot,
    raw: io::Result<btree::RawCursor>,
    high: Bound<Vec<u8>>,
    error: Option<io::Error>,
}

impl Cursor<'_> {
    /// I/O error that terminated the cursor early, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }
}

impl Iterator for Cursor<'_> {
    type Item = (Vec<u8>, Vec<u8>);

    fn next(&mut self) -> Option<(Vec<u8>, Vec<u8>)> {
        let pages = SnapPages {
            inner: &self.snap.inner,
        };
        let raw = match &mut self.raw {
            Ok(raw) => raw,
            Err(e) => {
                self.error = Some(io::Error::new(e.kind(), e.to_string()));
                return None;
            }
        };
        match raw.next(&pages) {
            Ok(Some((k, v))) => {
                let stop = match &self.high {
                    Bound::Unbounded => false,
                    Bound::Included(h) => k.as_slice() > h.as_slice(),
                    Bound::Excluded(h) => k.as_slice() >= h.as_slice(),
                };
                if stop {
                    None
                } else {
                    Some((k, v))
                }
            }
            Ok(None) => None,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}
