//! Copy-on-write B-tree over slotted pages.
//!
//! Every mutation allocates fresh page ids for the pages it touches
//! (root-to-leaf path, plus split/merge siblings); committed pages are
//! never modified in place. That single rule is what makes MVCC
//! snapshots free: a snapshot is just a root page id, and every page
//! reachable from it is immutable for as long as the snapshot is alive.
//!
//! Interior pages use the high-key convention (see [`crate::page`]):
//! the separator stored with a child is a `>=` bound for the child's
//! subtree and may go stale-high after deletes, which routing tolerates.
//!
//! Values larger than a quarter of the page payload spill to an
//! overflow chain; the leaf cell keeps the chain head and total length.

use std::io;
use std::ops::Bound;
use std::sync::Arc;

use crate::page::{LeafValue, OwnedLeafValue, Page, PageId, HEADER, NULL_PAGE};
use crate::{StoreError, StoreResult};

/// Read access to pages, either committed-only (snapshots) or
/// dirty-first (write transactions).
pub(crate) trait Pages {
    fn load(&self, id: PageId) -> io::Result<Arc<Page>>;
    fn page_size(&self) -> usize;
}

/// Mutation access for write transactions: allocate, free, and stage
/// dirty pages. `cow` hands out an owned copy under a fresh id; the
/// caller must `put` it back once edited.
pub(crate) trait PagesMut: Pages {
    fn alloc(&mut self) -> PageId;
    fn free(&mut self, id: PageId);
    fn put(&mut self, id: PageId, page: Page);
    /// Copy-on-write: detach `id` into an owned page the transaction may
    /// edit. Returns the id the edited page must be stored under (a
    /// fresh id when `id` was committed, `id` itself when it is already
    /// private to this transaction).
    fn cow(&mut self, id: PageId) -> io::Result<(PageId, Page)>;
}

/// Max bytes a cell may occupy: a quarter of the payload area, so a
/// page always holds at least a few cells and splits stay meaningful.
fn max_cell(page_size: usize) -> usize {
    (page_size - HEADER) / 4
}

/// Hard cap on key length for a given page size.
pub(crate) fn max_key(page_size: usize) -> usize {
    max_cell(page_size).saturating_sub(16)
}

/// Merge threshold: a page whose used payload drops below a quarter of
/// the payload area tries to merge with a sibling.
fn underfull(p: &Page) -> bool {
    p.used() < (p.size() - HEADER) / 4
}

fn check_key(page_size: usize, key: &[u8]) -> StoreResult<()> {
    if key.len() > max_key(page_size) {
        return Err(StoreError::KeyTooLarge {
            len: key.len(),
            max: max_key(page_size),
        });
    }
    Ok(())
}

/// Route a key through an interior page: index of the child to descend
/// into (`ncells` means the rightmost child).
fn route(page: &Page, key: &[u8]) -> usize {
    match page.search(key) {
        Ok(i) => i,
        Err(i) => i,
    }
}

fn child_at(page: &Page, idx: usize) -> PageId {
    if idx < page.ncells() {
        page.cell_child(idx)
    } else {
        page.rightmost()
    }
}

fn set_child_at(page: &mut Page, idx: usize, child: PageId) {
    if idx < page.ncells() {
        page.set_cell_child(idx, child);
    } else {
        page.set_rightmost(child);
    }
}

// ---- value (overflow) handling ----

/// Materialize a leaf cell's value, following the overflow chain.
pub(crate) fn read_value<P: Pages>(pages: &P, page: &Page, cell: usize) -> io::Result<Vec<u8>> {
    match page.cell_value(cell) {
        LeafValue::Inline(v) => Ok(v.to_vec()),
        LeafValue::Overflow { total, head } => {
            let mut out = Vec::with_capacity(total as usize);
            let mut next = head;
            while next != NULL_PAGE {
                let p = pages.load(next)?;
                out.extend_from_slice(p.overflow_chunk());
                next = p.overflow_next();
            }
            debug_assert_eq!(out.len(), total as usize);
            Ok(out)
        }
    }
}

/// Build the stored form of a value, spilling to an overflow chain when
/// the inline cell would exceed the per-cell budget.
fn make_value<M: PagesMut>(pages: &mut M, key: &[u8], val: &[u8]) -> OwnedLeafValue {
    let size = pages.page_size();
    if Page::leaf_cell_size(key, &OwnedLeafValue::Inline(Vec::new())) + val.len() <= max_cell(size)
    {
        return OwnedLeafValue::Inline(val.to_vec());
    }
    let cap = Page::overflow_capacity(size);
    let mut head = NULL_PAGE;
    for chunk in val.rchunks(cap) {
        let id = pages.alloc();
        pages.put(id, Page::new_overflow(size, chunk, head));
        head = id;
    }
    OwnedLeafValue::Overflow {
        total: val.len() as u32,
        head,
    }
}

/// Free the overflow chain (if any) behind a leaf cell.
fn free_value<M: PagesMut>(pages: &mut M, page: &Page, cell: usize) -> io::Result<()> {
    if let LeafValue::Overflow { head, .. } = page.cell_value(cell) {
        let mut next = head;
        while next != NULL_PAGE {
            let p = pages.load(next)?;
            let after = p.overflow_next();
            pages.free(next);
            next = after;
        }
    }
    Ok(())
}

/// Owned leaf cell used while rebuilding pages during splits/merges.
struct LeafCell {
    key: Vec<u8>,
    val: OwnedLeafValue,
}

fn leaf_cells(page: &Page) -> Vec<LeafCell> {
    (0..page.ncells())
        .map(|i| LeafCell {
            key: page.cell_key(i).to_vec(),
            val: match page.cell_value(i) {
                LeafValue::Inline(v) => OwnedLeafValue::Inline(v.to_vec()),
                LeafValue::Overflow { total, head } => OwnedLeafValue::Overflow { total, head },
            },
        })
        .collect()
}

fn build_leaf(size: usize, cells: &[LeafCell]) -> Page {
    let mut p = Page::new_leaf(size);
    for (i, c) in cells.iter().enumerate() {
        let ok = p.insert_leaf_cell(i, &c.key, &c.val);
        debug_assert!(ok, "split arithmetic must leave room");
    }
    p
}

/// Split `cells` (sorted) into two halves balanced by payload size.
fn split_point<T, F: Fn(&T) -> usize>(cells: &[T], size_of: F) -> usize {
    let total: usize = cells.iter().map(&size_of).sum();
    let mut acc = 0usize;
    for (i, c) in cells.iter().enumerate() {
        acc += size_of(c);
        if acc * 2 >= total {
            // Left gets [0..=i]; guarantee both sides non-empty.
            return (i + 1).clamp(1, cells.len() - 1);
        }
    }
    cells.len() / 2
}

/// Outcome of inserting into a subtree: either the subtree was rewritten
/// under a single new root id, or it split into two.
enum SubInsert {
    One(PageId),
    Split {
        sep: Vec<u8>,
        left: PageId,
        right: PageId,
    },
}

/// Insert `key = val` into the tree rooted at `root`. Returns the new
/// root id and whether an existing value was replaced.
pub(crate) fn insert<M: PagesMut>(
    pages: &mut M,
    root: PageId,
    key: &[u8],
    val: &[u8],
) -> StoreResult<(PageId, bool)> {
    let size = pages.page_size();
    check_key(size, key)?;
    if root == NULL_PAGE {
        let stored = make_value(pages, key, val);
        let mut leaf = Page::new_leaf(size);
        let ok = leaf.insert_leaf_cell(0, key, &stored);
        debug_assert!(ok);
        let id = pages.alloc();
        pages.put(id, leaf);
        return Ok((id, false));
    }

    // Descend to the leaf, recording interior path (page id, child idx).
    let mut path: Vec<(PageId, usize)> = Vec::new();
    let mut cur = root;
    loop {
        let page = pages.load(cur).map_err(StoreError::Io)?;
        match page.kind() {
            crate::page::PageKind::Leaf => break,
            crate::page::PageKind::Interior => {
                let idx = route(&page, key);
                let child = child_at(&page, idx);
                path.push((cur, idx));
                cur = child;
            }
            crate::page::PageKind::Overflow => unreachable!("overflow page in tree path"),
        }
    }

    // Mutate the leaf.
    let (leaf_id, mut leaf) = pages.cow(cur).map_err(StoreError::Io)?;
    let mut replaced = false;
    let pos = match leaf.search(key) {
        Ok(i) => {
            free_value(pages, &leaf, i).map_err(StoreError::Io)?;
            leaf.remove_cell(i);
            replaced = true;
            i
        }
        Err(i) => i,
    };
    let stored = make_value(pages, key, val);
    let mut result = if leaf.insert_leaf_cell(pos, key, &stored) {
        pages.put(leaf_id, leaf);
        SubInsert::One(leaf_id)
    } else {
        // Split: rebuild as two leaves around the size midpoint.
        let mut cells = leaf_cells(&leaf);
        cells.insert(
            pos,
            LeafCell {
                key: key.to_vec(),
                val: stored,
            },
        );
        let mid = split_point(&cells, |c| Page::leaf_cell_size(&c.key, &c.val) + 2);
        let left = build_leaf(size, &cells[..mid]);
        let right = build_leaf(size, &cells[mid..]);
        let sep = cells[mid - 1].key.clone();
        let right_id = pages.alloc();
        pages.put(leaf_id, left);
        pages.put(right_id, right);
        SubInsert::Split {
            sep,
            left: leaf_id,
            right: right_id,
        }
    };

    // Propagate up the path.
    for (pid, idx) in path.into_iter().rev() {
        let (new_pid, mut parent) = pages.cow(pid).map_err(StoreError::Io)?;
        result = match result {
            SubInsert::One(child) => {
                set_child_at(&mut parent, idx, child);
                pages.put(new_pid, parent);
                SubInsert::One(new_pid)
            }
            SubInsert::Split { sep, left, right } => {
                set_child_at(&mut parent, idx, right);
                if parent.insert_interior_cell(idx, &sep, left) {
                    pages.put(new_pid, parent);
                    SubInsert::One(new_pid)
                } else {
                    // Interior split. Gather (key, child) cells with the
                    // pending cell included, then rebuild two pages. The
                    // midpoint cell's child becomes the left page's
                    // rightmost and its key the parent separator.
                    let mut cells: Vec<(Vec<u8>, PageId)> = (0..parent.ncells())
                        .map(|i| (parent.cell_key(i).to_vec(), parent.cell_child(i)))
                        .collect();
                    cells.insert(idx, (sep, left));
                    let rm = parent.rightmost();
                    let mid = split_point(&cells, |(k, _)| Page::interior_cell_size(k) + 2);
                    // Left takes cells[..mid-1] + rightmost = child(mid-1).
                    let (psep, pleft_rm) = (cells[mid - 1].0.clone(), cells[mid - 1].1);
                    let mut lp = Page::new_interior(size);
                    for (i, (k, c)) in cells[..mid - 1].iter().enumerate() {
                        let ok = lp.insert_interior_cell(i, k, *c);
                        debug_assert!(ok);
                    }
                    lp.set_rightmost(pleft_rm);
                    let mut rp = Page::new_interior(size);
                    for (i, (k, c)) in cells[mid..].iter().enumerate() {
                        let ok = rp.insert_interior_cell(i, k, *c);
                        debug_assert!(ok);
                    }
                    rp.set_rightmost(rm);
                    let right_id = pages.alloc();
                    pages.put(new_pid, lp);
                    pages.put(right_id, rp);
                    SubInsert::Split {
                        sep: psep,
                        left: new_pid,
                        right: right_id,
                    }
                }
            }
        };
    }

    match result {
        SubInsert::One(id) => Ok((id, replaced)),
        SubInsert::Split { sep, left, right } => {
            let mut rootp = Page::new_interior(size);
            let ok = rootp.insert_interior_cell(0, &sep, left);
            debug_assert!(ok);
            rootp.set_rightmost(right);
            let id = pages.alloc();
            pages.put(id, rootp);
            Ok((id, replaced))
        }
    }
}

/// Delete `key` from the tree rooted at `root`. Returns the new root id
/// and whether the key was present.
pub(crate) fn delete<M: PagesMut>(
    pages: &mut M,
    root: PageId,
    key: &[u8],
) -> StoreResult<(PageId, bool)> {
    if root == NULL_PAGE {
        return Ok((root, false));
    }
    let size = pages.page_size();
    let mut path: Vec<(PageId, usize)> = Vec::new();
    let mut cur = root;
    loop {
        let page = pages.load(cur).map_err(StoreError::Io)?;
        match page.kind() {
            crate::page::PageKind::Leaf => break,
            crate::page::PageKind::Interior => {
                let idx = route(&page, key);
                let child = child_at(&page, idx);
                path.push((cur, idx));
                cur = child;
            }
            crate::page::PageKind::Overflow => unreachable!("overflow page in tree path"),
        }
    }
    {
        let leaf = pages.load(cur).map_err(StoreError::Io)?;
        if leaf.search(key).is_err() {
            return Ok((root, false));
        }
    }

    // Remove from the leaf; carry the edited child up, merging with a
    // sibling at each level when it underflows and the merge fits.
    let (mut child_id, mut child) = pages.cow(cur).map_err(StoreError::Io)?;
    if let Ok(i) = child.search(key) {
        free_value(pages, &child, i).map_err(StoreError::Io)?;
        child.remove_cell(i);
    }

    for (pid, idx) in path.into_iter().rev() {
        let (new_pid, mut parent) = pages.cow(pid).map_err(StoreError::Io)?;
        set_child_at(&mut parent, idx, child_id);

        let mut merged = false;
        if underfull(&child) && parent.ncells() > 0 {
            // Prefer the left sibling; fall back to the right one.
            let (lpos, rpos) = if idx > 0 {
                (idx - 1, idx)
            } else {
                (idx, idx + 1)
            };
            let (lid, rid) = (child_at(&parent, lpos), child_at(&parent, rpos));
            let (lpage, rpage) = if lid == child_id {
                (None, Some(pages.load(rid).map_err(StoreError::Io)?))
            } else {
                (Some(pages.load(lid).map_err(StoreError::Io)?), None)
            };
            let lref: &Page = lpage.as_deref().unwrap_or(&child);
            let rref: &Page = rpage.as_deref().unwrap_or(&child);
            let demoted = if child.kind() == crate::page::PageKind::Interior {
                // Interior merge demotes the left child's separator into
                // the merged page as a cell over its old rightmost.
                Page::interior_cell_size(parent.cell_key(lpos)) + 2
            } else {
                0
            };
            if lref.used() + rref.used() + demoted <= size - HEADER {
                let merged_page = match child.kind() {
                    crate::page::PageKind::Leaf => {
                        let mut cells = leaf_cells(lref);
                        cells.extend(leaf_cells(rref));
                        build_leaf(size, &cells)
                    }
                    _ => {
                        let mut p = Page::new_interior(size);
                        let mut n = 0;
                        for i in 0..lref.ncells() {
                            let ok =
                                p.insert_interior_cell(n, lref.cell_key(i), lref.cell_child(i));
                            debug_assert!(ok);
                            n += 1;
                        }
                        let ok = p.insert_interior_cell(n, parent.cell_key(lpos), lref.rightmost());
                        debug_assert!(ok);
                        n += 1;
                        for i in 0..rref.ncells() {
                            let ok =
                                p.insert_interior_cell(n, rref.cell_key(i), rref.cell_child(i));
                            debug_assert!(ok);
                            n += 1;
                        }
                        p.set_rightmost(rref.rightmost());
                        p
                    }
                };
                let merged_id = pages.alloc();
                pages.free(lid);
                pages.free(rid);
                pages.put(merged_id, merged_page);
                // Collapse the two parent entries into one under the
                // right entry's bound.
                if rpos < parent.ncells() {
                    parent.set_cell_child(rpos, merged_id);
                } else {
                    parent.set_rightmost(merged_id);
                }
                parent.remove_cell(lpos);
                merged = true;
            }
        }
        if !merged {
            pages.put(child_id, child);
        }
        child_id = new_pid;
        child = parent;
    }

    // Root adjustments: an empty leaf root vanishes; an interior root
    // with no separators collapses into its rightmost child.
    match child.kind() {
        crate::page::PageKind::Leaf if child.ncells() == 0 => {
            pages.free(child_id);
            Ok((NULL_PAGE, true))
        }
        crate::page::PageKind::Interior if child.ncells() == 0 => {
            let only = child.rightmost();
            pages.free(child_id);
            Ok((only, true))
        }
        _ => {
            pages.put(child_id, child);
            Ok((child_id, true))
        }
    }
}

/// Point lookup.
pub(crate) fn get<P: Pages>(pages: &P, root: PageId, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
    let mut cur = root;
    while cur != NULL_PAGE {
        let page = pages.load(cur)?;
        match page.kind() {
            crate::page::PageKind::Leaf => {
                return match page.search(key) {
                    Ok(i) => Ok(Some(read_value(pages, &page, i)?)),
                    Err(_) => Ok(None),
                };
            }
            crate::page::PageKind::Interior => {
                cur = child_at(&page, route(&page, key));
            }
            crate::page::PageKind::Overflow => unreachable!("overflow page in tree path"),
        }
    }
    Ok(None)
}

/// First entry with key `>= key`, or `None`. Used for prefix-existence
/// probes (unique index checks) inside a write transaction.
pub(crate) fn seek_ge<P: Pages>(
    pages: &P,
    root: PageId,
    key: &[u8],
) -> io::Result<Option<(Vec<u8>, Vec<u8>)>> {
    if root == NULL_PAGE {
        return Ok(None);
    }
    let page = pages.load(root)?;
    match page.kind() {
        crate::page::PageKind::Leaf => {
            let i = match page.search(key) {
                Ok(i) => i,
                Err(i) => i,
            };
            if i < page.ncells() {
                Ok(Some((
                    page.cell_key(i).to_vec(),
                    read_value(pages, &page, i)?,
                )))
            } else {
                Ok(None)
            }
        }
        crate::page::PageKind::Interior => {
            for idx in route(&page, key)..=page.ncells() {
                if let Some(found) = seek_ge(pages, child_at(&page, idx), key)? {
                    return Ok(Some(found));
                }
            }
            Ok(None)
        }
        crate::page::PageKind::Overflow => unreachable!("overflow page in tree path"),
    }
}

/// Forward-only cursor over a tree's entries in key order. The caller
/// supplies the page accessor on every call so the cursor itself stays
/// free of lifetimes/ownership of the store.
pub(crate) struct RawCursor {
    // (page, next position): for leaves the next cell to yield, for
    // interior pages the next child to descend into (ncells = rightmost).
    stack: Vec<(Arc<Page>, usize)>,
}

impl RawCursor {
    /// Position the cursor at the first entry `>=`/`>` the lower bound.
    pub(crate) fn seek<P: Pages>(
        pages: &P,
        root: PageId,
        low: Bound<&[u8]>,
    ) -> io::Result<RawCursor> {
        let mut stack = Vec::new();
        let mut cur = root;
        while cur != NULL_PAGE {
            let page = pages.load(cur)?;
            match page.kind() {
                crate::page::PageKind::Leaf => {
                    let start = match low {
                        Bound::Unbounded => 0,
                        Bound::Included(k) => match page.search(k) {
                            Ok(i) | Err(i) => i,
                        },
                        Bound::Excluded(k) => match page.search(k) {
                            Ok(i) => i + 1,
                            Err(i) => i,
                        },
                    };
                    stack.push((page, start));
                    break;
                }
                crate::page::PageKind::Interior => {
                    let idx = match low {
                        Bound::Unbounded => 0,
                        Bound::Included(k) | Bound::Excluded(k) => route(&page, k),
                    };
                    cur = child_at(&page, idx);
                    stack.push((page, idx + 1));
                }
                crate::page::PageKind::Overflow => unreachable!("overflow page in tree path"),
            }
        }
        Ok(RawCursor { stack })
    }

    /// Next entry in key order, or `None` at the end of the tree.
    pub(crate) fn next<P: Pages>(&mut self, pages: &P) -> io::Result<Option<(Vec<u8>, Vec<u8>)>> {
        loop {
            let Some((page, pos)) = self.stack.last_mut() else {
                return Ok(None);
            };
            match page.kind() {
                crate::page::PageKind::Leaf => {
                    if *pos < page.ncells() {
                        let i = *pos;
                        *pos += 1;
                        let page = page.clone();
                        let key = page.cell_key(i).to_vec();
                        let val = read_value(pages, &page, i)?;
                        return Ok(Some((key, val)));
                    }
                    self.stack.pop();
                }
                crate::page::PageKind::Interior => {
                    if *pos <= page.ncells() {
                        let child = child_at(page, *pos);
                        *pos += 1;
                        let mut cur = child;
                        // Descend to the leftmost leaf of this subtree.
                        while cur != NULL_PAGE {
                            let p = pages.load(cur)?;
                            let interior = p.kind() == crate::page::PageKind::Interior;
                            let first = if interior { child_at(&p, 0) } else { NULL_PAGE };
                            self.stack.push((p, if interior { 1 } else { 0 }));
                            cur = first;
                        }
                    } else {
                        self.stack.pop();
                    }
                }
                crate::page::PageKind::Overflow => unreachable!("overflow page on cursor stack"),
            }
        }
    }
}
