//! Seeded model test: the COW B-tree against `BTreeMap` as the oracle.
//!
//! Runs with deliberately tiny pages so random workloads constantly
//! cross page-split and page-merge boundaries, plus enough churn to
//! exercise overflow chains, rollback, and snapshot isolation.
//!
//! Deterministic and replayable: set `HEDC_TEST_SEED` (decimal or hex
//! with `0x` prefix) to reproduce a failure — `scripts/check.sh --seed N`
//! replays the whole seeded suite.

use std::collections::BTreeMap;
use std::ops::Bound;

use hedc_store::{Store, StoreOptions};

/// SplitMix64 — the same tiny deterministic generator the dm fault
/// harness uses; good enough statistical quality for workload shaping.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn effective_seed() -> u64 {
    match std::env::var("HEDC_TEST_SEED") {
        Ok(s) => {
            let s = s.trim();
            if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).expect("HEDC_TEST_SEED hex")
            } else {
                s.parse().expect("HEDC_TEST_SEED decimal")
            }
        }
        Err(_) => 0x0570_BEE7,
    }
}

fn key_for(rng: &mut SplitMix64, space: u64) -> Vec<u8> {
    // Mixed-length keys so slot arithmetic sees variable cell sizes.
    let n = rng.below(space);
    match rng.below(3) {
        0 => format!("k{n:06}").into_bytes(),
        1 => format!("key/{n:08}/suffix").into_bytes(),
        _ => format!("{n:04}").into_bytes(),
    }
}

fn value_for(rng: &mut SplitMix64) -> Vec<u8> {
    // Mostly small values; occasionally large enough to spill to an
    // overflow chain even at 4K pages (tiny pages spill much sooner).
    let len = match rng.below(20) {
        0 => 400 + rng.below(1200) as usize,
        1..=3 => 60 + rng.below(120) as usize,
        _ => rng.below(24) as usize,
    };
    let mut v = Vec::with_capacity(len);
    for i in 0..len {
        v.push((rng.next() as u8) ^ (i as u8));
    }
    v
}

/// One randomized round: a batch of mutations in a single transaction,
/// then full-state comparison against the model via range scan, point
/// gets, and bounded range scans.
fn run_model(seed: u64, page_size: usize, rounds: usize, ops_per_round: usize, key_space: u64) {
    eprintln!(
        "btree_model: seed={seed:#x} page_size={page_size} rounds={rounds} ops={ops_per_round}"
    );
    let mut rng = SplitMix64(seed ^ page_size as u64);
    let store = Store::open(StoreOptions {
        path: None,
        page_size,
        cache_pages: 32,
    })
    .unwrap();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

    let mut txn = store.begin();
    let tree = txn.create_tree();
    txn.commit().unwrap();

    for round in 0..rounds {
        // Pin a snapshot of the pre-round state to check isolation after
        // the round commits.
        let pre = store.snapshot();
        let pre_model = model.clone();

        let mut txn = store.begin();
        let rollback = rng.below(8) == 0;
        let mut staged = model.clone();
        for _ in 0..ops_per_round {
            let k = key_for(&mut rng, key_space);
            if rng.below(10) < 6 {
                let v = value_for(&mut rng);
                let replaced = txn.insert(tree, &k, &v).unwrap();
                assert_eq!(
                    replaced,
                    staged.contains_key(&k),
                    "replace flag (round {round})"
                );
                staged.insert(k, v);
            } else {
                let found = txn.delete(tree, &k).unwrap();
                assert_eq!(
                    found,
                    staged.contains_key(&k),
                    "delete flag (round {round})"
                );
                staged.remove(&k);
            }
        }
        if rollback {
            drop(txn); // model unchanged
        } else {
            txn.commit().unwrap();
            model = staged;
        }

        // Pinned snapshot still sees the pre-round state.
        if round % 7 == 0 {
            let scan: Vec<_> = pre
                .range(tree, Bound::Unbounded, Bound::Unbounded)
                .collect();
            let want: Vec<_> = pre_model
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            assert_eq!(scan, want, "pinned snapshot diverged (round {round})");
        }
        drop(pre);

        // Fresh snapshot matches the model exactly.
        let snap = store.snapshot();
        let scan: Vec<_> = snap
            .range(tree, Bound::Unbounded, Bound::Unbounded)
            .collect();
        let want: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        assert_eq!(scan.len(), want.len(), "cardinality (round {round})");
        assert_eq!(scan, want, "full scan diverged (round {round})");

        // Random point gets, present and absent.
        for _ in 0..20 {
            let k = key_for(&mut rng, key_space * 2);
            assert_eq!(
                snap.get(tree, &k).unwrap(),
                model.get(&k).cloned(),
                "point get diverged (round {round})"
            );
        }

        // Random bounded range.
        let mut a = key_for(&mut rng, key_space);
        let mut b = key_for(&mut rng, key_space);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let got: Vec<_> = snap
            .range(
                tree,
                Bound::Included(a.as_slice()),
                Bound::Excluded(b.clone()),
            )
            .collect();
        let want: Vec<_> = model
            .range::<[u8], _>((Bound::Included(a.as_slice()), Bound::Excluded(b.as_slice())))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        assert_eq!(got, want, "bounded range diverged (round {round})");
    }
}

#[test]
fn model_tiny_pages_split_merge_heavy() {
    // 256-byte pages: a handful of cells per page, so every round
    // triggers splits and merges.
    run_model(effective_seed(), 256, 40, 60, 300);
}

#[test]
fn model_small_pages_mixed() {
    run_model(effective_seed() ^ 0xA5A5, 512, 25, 120, 900);
}

#[test]
fn model_default_pages_overflow_heavy() {
    run_model(effective_seed() ^ 0x5A5A, 4096, 12, 200, 2_000);
}

/// Readers running full-tilt against a committing writer must always
/// observe a consistent committed state: every commit stores a `count`
/// cell equal to the number of `row/` keys it leaves behind, and every
/// reader asserts that invariant on a fresh snapshot.
#[test]
fn concurrent_readers_never_see_torn_commits() {
    let store = Store::open(StoreOptions {
        path: None,
        page_size: 256,
        cache_pages: 64,
    })
    .unwrap();
    let mut txn = store.begin();
    let tree = txn.create_tree();
    txn.insert(tree, b"count", &0u64.to_le_bytes()).unwrap();
    txn.commit().unwrap();

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let store = store.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut checks = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let snap = store.snapshot();
                        let count = u64::from_le_bytes(
                            snap.get(tree, b"count")
                                .unwrap()
                                .unwrap()
                                .try_into()
                                .unwrap(),
                        );
                        let rows = snap
                            .range(
                                tree,
                                Bound::Included(&b"row/"[..]),
                                Bound::Excluded(b"row0".to_vec()),
                            )
                            .count() as u64;
                        assert_eq!(rows, count, "reader saw a torn commit");
                        checks += 1;
                    }
                    checks
                })
            })
            .collect();

        let mut rng = SplitMix64(effective_seed() ^ 0xC0C0);
        let mut live: Vec<u64> = Vec::new();
        let mut next = 0u64;
        for _ in 0..300 {
            let mut txn = store.begin();
            for _ in 0..1 + rng.below(4) {
                if live.is_empty() || rng.below(10) < 7 {
                    let id = next;
                    next += 1;
                    txn.insert(tree, format!("row/{id:08}").as_bytes(), b"x")
                        .unwrap();
                    live.push(id);
                } else {
                    let idx = rng.below(live.len() as u64) as usize;
                    let id = live.swap_remove(idx);
                    assert!(txn.delete(tree, format!("row/{id:08}").as_bytes()).unwrap());
                }
            }
            txn.insert(tree, b"count", &(live.len() as u64).to_le_bytes())
                .unwrap();
            txn.commit().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "readers must have made progress");
    });
    assert_eq!(store.active_snapshots(), 0);
}

#[test]
fn drain_to_empty_and_refill() {
    let seed = effective_seed() ^ 0xD7A1;
    eprintln!("btree_model drain: seed={seed:#x}");
    let mut rng = SplitMix64(seed);
    let store = Store::open(StoreOptions {
        path: None,
        page_size: 256,
        cache_pages: 16,
    })
    .unwrap();
    let mut txn = store.begin();
    let tree = txn.create_tree();
    let mut keys: Vec<Vec<u8>> = (0..400u32)
        .map(|i| format!("k{i:05}").into_bytes())
        .collect();
    for k in &keys {
        txn.insert(tree, k, b"v").unwrap();
    }
    txn.commit().unwrap();

    // Delete in random order down to empty — exercises merges all the
    // way to root collapse.
    for i in (1..keys.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        keys.swap(i, j);
    }
    let mut txn = store.begin();
    for k in &keys {
        assert!(txn.delete(tree, k).unwrap());
    }
    txn.commit().unwrap();
    let snap = store.snapshot();
    assert_eq!(
        snap.range(tree, Bound::Unbounded, Bound::Unbounded).count(),
        0
    );
    drop(snap);

    // Refill after total drain; page recycling must keep the file small.
    let mut txn = store.begin();
    for k in &keys {
        txn.insert(tree, k, b"w").unwrap();
    }
    txn.commit().unwrap();
    let snap = store.snapshot();
    assert_eq!(
        snap.range(tree, Bound::Unbounded, Bound::Unbounded).count(),
        keys.len()
    );
}
