//! The store's observability contract: its counters and gauges are
//! registered in the **global** `hedc_obs` registry, which is exactly
//! what `/hedc/stats` and `/hedc/stats.json` render — so store health
//! is visible operationally with no extra wiring in the web tier.

use hedc_store::{Store, StoreOptions};

#[test]
fn store_metrics_surface_in_the_global_registry() {
    let dir = std::env::temp_dir().join(format!("hedc-store-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tempdir");
    let store = Store::open(StoreOptions {
        path: Some(dir.join("obs.store")),
        ..StoreOptions::default()
    })
    .expect("open store");

    let mut txn = store.begin();
    let tree = txn.create_tree();
    for i in 0..64u64 {
        txn.insert(tree, &i.to_be_bytes(), &[0u8; 128])
            .expect("insert");
    }
    txn.commit().expect("commit");
    let snap = store.snapshot();
    for i in 0..64u64 {
        assert!(snap.get(tree, &i.to_be_bytes()).expect("get").is_some());
    }

    let names: Vec<String> = {
        let s = hedc_obs::global().snapshot();
        s.counters
            .iter()
            .map(|(n, _)| n.clone())
            .chain(s.gauges.iter().map(|(n, _)| n.clone()))
            .chain(s.histograms.iter().map(|(n, _)| n.clone()))
            .collect()
    };
    for metric in [
        "store.page_cache.hit",
        "store.page_cache.miss",
        "store.page_cache.evict",
        "store.page_cache.resident",
        "store.snapshot.active",
        "store.writer.waiting",
        "store.writer.stall",
    ] {
        assert!(
            names.iter().any(|n| n == metric),
            "{metric} missing from the global obs registry"
        );
    }
    // Activity actually flowed through the registered handles.
    assert!(hedc_obs::global().counter_value("store.page_cache.hit") > 0);

    drop(snap);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
