//! Process-wide executor tuning knobs.
//!
//! These gate the batched/parallel execution paths added for the browse hot
//! path: partitioned parallel scans kick in only above a candidate-row
//! threshold (small scans lose more to thread startup than they gain), and
//! the bounded-heap top-k path can be disabled outright for A/B
//! measurements. Both are plain atomics so `HedcConfig` can apply them at
//! stack startup and benchmarks can flip them per pass.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Default candidate-row count above which a filtered scan is partitioned
/// across worker threads.
pub const DEFAULT_PARALLEL_SCAN_ROWS: usize = 65_536;

/// Default page-cache budget, in pages, for the paged storage backend when
/// the caller leaves [`crate::StorageConfig::cache_pages`] at `0`.
pub const DEFAULT_PAGE_CACHE_PAGES: usize = 4096;

static PARALLEL_SCAN_ROWS: AtomicUsize = AtomicUsize::new(DEFAULT_PARALLEL_SCAN_ROWS);
static TOPK_ENABLED: AtomicBool = AtomicBool::new(true);
static PAGE_CACHE_PAGES: AtomicUsize = AtomicUsize::new(DEFAULT_PAGE_CACHE_PAGES);

/// Candidate-row count at which filtered scans go parallel. `0` disables
/// parallel scans entirely.
pub fn parallel_scan_threshold() -> usize {
    PARALLEL_SCAN_ROWS.load(Ordering::Relaxed)
}

/// Set the parallel-scan threshold (`0` disables).
pub fn set_parallel_scan_threshold(rows: usize) {
    PARALLEL_SCAN_ROWS.store(rows, Ordering::Relaxed);
}

/// Whether `order_by` + `limit` may use the bounded-heap top-k path.
pub fn topk_enabled() -> bool {
    TOPK_ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable the bounded-heap top-k path (disable to force full
/// sorts, e.g. for benchmark baselines).
pub fn set_topk_enabled(enabled: bool) {
    TOPK_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Page-cache budget (pages) used when a paged database is opened with
/// `cache_pages == 0` in its [`crate::StorageConfig`].
pub fn page_cache_pages() -> usize {
    PAGE_CACHE_PAGES.load(Ordering::Relaxed)
}

/// Set the default page-cache budget for subsequently opened paged
/// databases. Stores already open keep their cache size.
pub fn set_page_cache_pages(pages: usize) {
    PAGE_CACHE_PAGES.store(pages.max(8), Ordering::Relaxed);
}
