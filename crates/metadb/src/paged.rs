//! Paged table backing: rows and indexes stored in [`hedc_store`]
//! B-trees instead of in-process `Vec`/`BTreeMap` structures.
//!
//! Layout per table:
//!
//! - a **row tree** mapping big-endian row id → [`keycode::encode_row`]
//!   payload, and
//! - one **index tree** per index mapping
//!   [`keycode::encode_index_entry`] (order-preserving key bytes plus a
//!   row-id suffix) → empty value.
//!
//! Every mutating table operation runs as one store write transaction
//! spanning the row tree and all index trees, so a [`Snapshot`] taken
//! between operations always sees rows and index entries in agreement.
//! After each commit the backing refreshes its cached snapshot; reads
//! from the table itself and from published [`TableSnapshot`]s never
//! touch the writer.
//!
//! The store file is **scratch**: durability comes from the redo log
//! above (`wal.rs`), whose replay at open rebuilds these trees through
//! the very same code paths — which is also why the free-list state
//! here is process-local and never persisted.

use crate::error::{DbError, DbResult};
use crate::index::RowId;
use crate::keycode;
use crate::schema::Schema;
use crate::value::Value;
use hedc_store::{Snapshot, Store, StoreError, TreeId, WriteTxn};
use std::ops::Bound;
use std::sync::Arc;

fn storage_err(e: StoreError) -> DbError {
    DbError::Storage(e.to_string())
}

fn row_key(id: RowId) -> [u8; 8] {
    id.to_be_bytes()
}

/// An index whose entries live in a store B-tree.
#[derive(Debug)]
pub(crate) struct PagedIndex {
    pub(crate) name: String,
    pub(crate) columns: Vec<usize>,
    pub(crate) unique: bool,
    tree: TreeId,
    entries: usize,
}

impl PagedIndex {
    fn key_of(&self, row: &[Value]) -> Vec<Value> {
        self.columns.iter().map(|&c| row[c].clone()).collect()
    }

    pub(crate) fn len(&self) -> usize {
        self.entries
    }

    /// Uniqueness probe inside an open write transaction (sees the
    /// transaction's own uncommitted entries, matching the in-memory
    /// backing's statement-order semantics). NULL keys are exempt.
    fn check_unique(&self, txn: &WriteTxn<'_>, row: &[Value]) -> DbResult<()> {
        if !self.unique {
            return Ok(());
        }
        let key = self.key_of(row);
        if key.iter().any(Value::is_null) {
            return Ok(());
        }
        let prefix = keycode::encode_key(&key);
        if let Some((found, _)) = txn.seek_ge(self.tree, &prefix).map_err(storage_err)? {
            if found.starts_with(&prefix) {
                return Err(DbError::UniqueViolation {
                    index: self.name.clone(),
                });
            }
        }
        Ok(())
    }
}

/// The paged counterpart of the in-memory row heap.
#[derive(Debug)]
pub(crate) struct PagedTable {
    store: Arc<Store>,
    rows_tree: TreeId,
    pub(crate) indexes: Vec<PagedIndex>,
    /// Recycled slots, LIFO — byte-for-byte the same slot-assignment
    /// policy as the in-memory backing, so redo-log replay produces
    /// identical row ids on either backend.
    free: Vec<RowId>,
    /// Next never-used slot (the `rows.len()` analogue).
    next: RowId,
    /// Last committed state; refreshed after every commit.
    snap: Snapshot,
}

impl PagedTable {
    /// Create the row tree (and the implicit primary-key index when the
    /// schema declares one).
    pub(crate) fn new(store: Arc<Store>, schema: &Schema) -> DbResult<Self> {
        let mut txn = store.begin();
        let rows_tree = txn.create_tree();
        let mut indexes = Vec::new();
        if !schema.primary_key.is_empty() {
            indexes.push(PagedIndex {
                name: format!("{}_pk", schema.table),
                columns: schema.primary_key.clone(),
                unique: true,
                tree: txn.create_tree(),
                entries: 0,
            });
        }
        txn.commit().map_err(storage_err)?;
        let snap = store.snapshot();
        Ok(PagedTable {
            store,
            rows_tree,
            indexes,
            free: Vec::new(),
            next: 0,
            snap,
        })
    }

    fn refresh(&mut self) {
        self.snap = self.store.snapshot();
    }

    fn write_row(&self, txn: &mut WriteTxn<'_>, id: RowId, row: &[Value]) -> DbResult<()> {
        txn.insert(self.rows_tree, &row_key(id), &keycode::encode_row(row))
            .map_err(storage_err)?;
        for ix in &self.indexes {
            txn.insert(
                ix.tree,
                &keycode::encode_index_entry(&ix.key_of(row), id),
                &[],
            )
            .map_err(storage_err)?;
        }
        Ok(())
    }

    fn check_all_unique(&self, txn: &WriteTxn<'_>, row: &[Value]) -> DbResult<()> {
        for ix in &self.indexes {
            ix.check_unique(txn, row)?;
        }
        Ok(())
    }

    /// Insert into the next free slot (LIFO) or a fresh one.
    pub(crate) fn insert(&mut self, row: &[Value]) -> DbResult<RowId> {
        let mut txn = self.store.begin();
        self.check_all_unique(&txn, row)?;
        let id = self.free.last().copied().unwrap_or(self.next);
        self.write_row(&mut txn, id, row)?;
        txn.commit().map_err(storage_err)?;
        if self.free.pop().is_none() {
            self.next += 1;
        }
        for ix in &mut self.indexes {
            ix.entries += 1;
        }
        self.refresh();
        Ok(id)
    }

    /// Insert into a specific slot (recovery replay, delete rollback).
    pub(crate) fn insert_at(&mut self, id: RowId, row: &[Value]) -> DbResult<()> {
        let mut txn = self.store.begin();
        self.check_all_unique(&txn, row)?;
        if id < self.next
            && txn
                .get(self.rows_tree, &row_key(id))
                .map_err(storage_err)?
                .is_some()
        {
            return Err(DbError::Txn(format!("slot {id} already occupied")));
        }
        self.write_row(&mut txn, id, row)?;
        txn.commit().map_err(storage_err)?;
        if id >= self.next {
            // Extending the heap: intermediate slots become free, in
            // ascending order, exactly as the in-memory backing does.
            for i in self.next..id {
                self.free.push(i);
            }
            self.next = id + 1;
        } else if let Some(pos) = self.free.iter().position(|&f| f == id) {
            self.free.swap_remove(pos);
        }
        for ix in &mut self.indexes {
            ix.entries += 1;
        }
        self.refresh();
        Ok(())
    }

    /// Fetch a row by id from the last committed snapshot.
    pub(crate) fn get(&self, id: RowId) -> DbResult<Vec<Value>> {
        match self
            .snap
            .get(self.rows_tree, &row_key(id))
            .map_err(storage_err)?
        {
            Some(buf) => Ok(keycode::decode_row(&buf)),
            None => Err(DbError::NoSuchRow(id)),
        }
    }

    /// Replace a row, maintaining index entries; returns the old values.
    pub(crate) fn update(&mut self, id: RowId, new_row: &[Value]) -> DbResult<Vec<Value>> {
        let old = self.get(id)?;
        let mut txn = self.store.begin();
        for ix in &self.indexes {
            if ix.unique {
                let old_key = keycode::encode_key(&ix.key_of(&old));
                let new_key = keycode::encode_key(&ix.key_of(new_row));
                if old_key != new_key {
                    ix.check_unique(&txn, new_row)?;
                }
            }
        }
        txn.insert(self.rows_tree, &row_key(id), &keycode::encode_row(new_row))
            .map_err(storage_err)?;
        for ix in &self.indexes {
            txn.delete(ix.tree, &keycode::encode_index_entry(&ix.key_of(&old), id))
                .map_err(storage_err)?;
            txn.insert(
                ix.tree,
                &keycode::encode_index_entry(&ix.key_of(new_row), id),
                &[],
            )
            .map_err(storage_err)?;
        }
        txn.commit().map_err(storage_err)?;
        self.refresh();
        Ok(old)
    }

    /// Replace many rows in ONE store transaction: one commit, one
    /// snapshot refresh, and no partial effects on failure (the
    /// uncommitted transaction is simply dropped). This is the bulk
    /// `UPDATE .. WHERE` fast path — committing per row would pwrite
    /// the dirty page set and rewrite the B-tree root path once per
    /// row instead of once per statement. Returns prior values in
    /// batch order.
    pub(crate) fn update_many(
        &mut self,
        updates: &[(RowId, Vec<Value>)],
    ) -> DbResult<Vec<Vec<Value>>> {
        let mut txn = self.store.begin();
        let mut olds = Vec::with_capacity(updates.len());
        for (id, new_row) in updates {
            // Read the old row through the transaction so earlier rows
            // in this batch are visible (sequential-statement
            // semantics, even though ids are distinct in practice).
            let old = match txn
                .get(self.rows_tree, &row_key(*id))
                .map_err(storage_err)?
            {
                Some(buf) => keycode::decode_row(&buf),
                None => return Err(DbError::NoSuchRow(*id)),
            };
            for ix in &self.indexes {
                if ix.unique {
                    let old_key = keycode::encode_key(&ix.key_of(&old));
                    let new_key = keycode::encode_key(&ix.key_of(new_row));
                    if old_key != new_key {
                        ix.check_unique(&txn, new_row)?;
                    }
                }
            }
            txn.insert(self.rows_tree, &row_key(*id), &keycode::encode_row(new_row))
                .map_err(storage_err)?;
            for ix in &self.indexes {
                txn.delete(ix.tree, &keycode::encode_index_entry(&ix.key_of(&old), *id))
                    .map_err(storage_err)?;
                txn.insert(
                    ix.tree,
                    &keycode::encode_index_entry(&ix.key_of(new_row), *id),
                    &[],
                )
                .map_err(storage_err)?;
            }
            olds.push(old);
        }
        txn.commit().map_err(storage_err)?;
        self.refresh();
        Ok(olds)
    }

    /// Delete a row; returns its former values and recycles the slot.
    pub(crate) fn delete(&mut self, id: RowId) -> DbResult<Vec<Value>> {
        let old = self.get(id)?;
        let mut txn = self.store.begin();
        txn.delete(self.rows_tree, &row_key(id))
            .map_err(storage_err)?;
        for ix in &self.indexes {
            txn.delete(ix.tree, &keycode::encode_index_entry(&ix.key_of(&old), id))
                .map_err(storage_err)?;
        }
        txn.commit().map_err(storage_err)?;
        for ix in &mut self.indexes {
            ix.entries -= 1;
        }
        self.free.push(id);
        self.refresh();
        Ok(old)
    }

    /// Build a new index, backfilled from existing rows in one store
    /// transaction (a failed unique backfill leaves no residue).
    pub(crate) fn create_index(
        &mut self,
        name: String,
        columns: Vec<usize>,
        unique: bool,
    ) -> DbResult<()> {
        let rows = self.scan_rows()?;
        let mut txn = self.store.begin();
        let ix = PagedIndex {
            name,
            columns,
            unique,
            tree: txn.create_tree(),
            entries: rows.len(),
        };
        for (id, row) in &rows {
            ix.check_unique(&txn, row)?;
            txn.insert(
                ix.tree,
                &keycode::encode_index_entry(&ix.key_of(row), *id),
                &[],
            )
            .map_err(storage_err)?;
        }
        txn.commit().map_err(storage_err)?;
        self.indexes.push(ix);
        self.refresh();
        Ok(())
    }

    /// Drop an index by position. The tree is abandoned in place; its
    /// pages come back only when the store is rebuilt at the next open
    /// (the store file is scratch, so this leaks at most one run's
    /// worth of dropped-index pages).
    pub(crate) fn drop_index(&mut self, pos: usize) {
        self.indexes.remove(pos);
    }

    /// All live rows in slot order.
    pub(crate) fn scan_rows(&self) -> DbResult<Vec<(RowId, Vec<Value>)>> {
        let mut out = Vec::new();
        for (k, v) in self
            .snap
            .range(self.rows_tree, Bound::Unbounded, Bound::Unbounded)
        {
            let id = RowId::from_be_bytes(k[..8].try_into().expect("row key width"));
            out.push((id, keycode::decode_row(&v)));
        }
        Ok(out)
    }

    /// All live row ids in slot order (no row decoding).
    pub(crate) fn scan_ids(&self) -> Vec<RowId> {
        self.snap
            .range(self.rows_tree, Bound::Unbounded, Bound::Unbounded)
            .map(|(k, _)| RowId::from_be_bytes(k[..8].try_into().expect("row key width")))
            .collect()
    }

    /// Row ids matching an exact composite key on index `pos`.
    pub(crate) fn index_get(&self, pos: usize, key: &[Value]) -> Vec<RowId> {
        let ix = &self.indexes[pos];
        let prefix = keycode::encode_key(key);
        scan_ids_with_prefix(&self.snap, ix.tree, &prefix)
    }

    /// Range scan on index `pos`: equality prefix plus bounds on the
    /// next key column (the shape the planner and tests use).
    pub(crate) fn index_range(
        &self,
        pos: usize,
        eq_prefix: &[Value],
        low: Bound<&Value>,
        high: Bound<&Value>,
    ) -> Vec<RowId> {
        index_range_scan(&self.snap, self.indexes[pos].tree, eq_prefix, low, high)
    }

    /// Freeze the current committed state for lock-free readers.
    pub(crate) fn freeze(&self, schema: &Schema, live: usize, data_bytes: usize) -> TableSnapshot {
        TableSnapshot {
            schema: schema.clone(),
            snap: self.store.snapshot(),
            rows_tree: self.rows_tree,
            indexes: self
                .indexes
                .iter()
                .map(|ix| SnapIndex {
                    name: ix.name.clone(),
                    columns: ix.columns.clone(),
                    unique: ix.unique,
                    tree: ix.tree,
                })
                .collect(),
            live,
            data_bytes,
        }
    }
}

/// Collect the row ids of every index entry starting with `prefix`.
fn scan_ids_with_prefix(snap: &Snapshot, tree: TreeId, prefix: &[u8]) -> Vec<RowId> {
    let high = match keycode::prefix_successor(prefix) {
        Some(succ) => Bound::Excluded(succ),
        None => Bound::Unbounded,
    };
    snap.range(tree, Bound::Included(prefix), high)
        .map(|(k, _)| keycode::decode_index_entry_id(&k))
        .collect()
}

/// Shared range-scan logic for live tables and frozen snapshots.
fn index_range_scan(
    snap: &Snapshot,
    tree: TreeId,
    eq_prefix: &[Value],
    low: Bound<&Value>,
    high: Bound<&Value>,
) -> Vec<RowId> {
    let prefix = keycode::encode_key(eq_prefix);
    let lo_bytes;
    let start: Bound<&[u8]> = match low {
        Bound::Unbounded => {
            if eq_prefix.is_empty() {
                Bound::Unbounded
            } else {
                lo_bytes = prefix.clone();
                Bound::Included(&lo_bytes)
            }
        }
        Bound::Included(v) => {
            let mut k = prefix.clone();
            keycode::encode_value(&mut k, v);
            lo_bytes = k;
            Bound::Included(&lo_bytes)
        }
        Bound::Excluded(v) => {
            let mut k = prefix.clone();
            keycode::encode_value(&mut k, v);
            // Skip every entry whose bounded column equals `v`.
            match keycode::prefix_successor(&k) {
                Some(succ) => {
                    lo_bytes = succ;
                    Bound::Included(&lo_bytes)
                }
                None => return Vec::new(),
            }
        }
    };
    let end: Bound<Vec<u8>> = match high {
        Bound::Unbounded => {
            if eq_prefix.is_empty() {
                Bound::Unbounded
            } else {
                match keycode::prefix_successor(&prefix) {
                    Some(succ) => Bound::Excluded(succ),
                    None => Bound::Unbounded,
                }
            }
        }
        Bound::Included(v) => {
            let mut k = prefix.clone();
            keycode::encode_value(&mut k, v);
            match keycode::prefix_successor(&k) {
                Some(succ) => Bound::Excluded(succ),
                None => Bound::Unbounded,
            }
        }
        Bound::Excluded(v) => {
            let mut k = prefix.clone();
            keycode::encode_value(&mut k, v);
            Bound::Excluded(k)
        }
    };
    snap.range(tree, start, end)
        .map(|(k, _)| keycode::decode_index_entry_id(&k))
        .collect()
}

/// Metadata of one index inside a [`TableSnapshot`].
#[derive(Debug)]
struct SnapIndex {
    name: String,
    columns: Vec<usize>,
    unique: bool,
    tree: TreeId,
}

/// An immutable, point-in-time view of a paged table.
///
/// Holds a store [`Snapshot`], so reads served from it never take the
/// database catalog lock and never block (or are blocked by) the
/// writer — this is what the `/hedc` browse path queries while ingest
/// is running.
#[derive(Debug)]
pub struct TableSnapshot {
    schema: Schema,
    snap: Snapshot,
    rows_tree: TreeId,
    indexes: Vec<SnapIndex>,
    live: usize,
    data_bytes: usize,
}

impl TableSnapshot {
    /// The frozen table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows at freeze time.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table was empty at freeze time.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Approximate live row bytes at freeze time.
    pub fn data_bytes(&self) -> usize {
        self.data_bytes
    }

    /// Fetch one row by id.
    pub fn get(&self, id: RowId) -> Option<Vec<Value>> {
        self.snap
            .get(self.rows_tree, &row_key(id))
            .ok()
            .flatten()
            .map(|buf| keycode::decode_row(&buf))
    }

    /// All live row ids in slot order.
    pub fn scan_ids(&self) -> Vec<RowId> {
        self.snap
            .range(self.rows_tree, Bound::Unbounded, Bound::Unbounded)
            .map(|(k, _)| RowId::from_be_bytes(k[..8].try_into().expect("row key width")))
            .collect()
    }

    pub(crate) fn best_index(&self, col: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, ix) in self.indexes.iter().enumerate() {
            if ix.columns.first() == Some(&col) {
                match best {
                    Some(b) if self.indexes[b].unique && !ix.unique => {}
                    _ => best = Some(i),
                }
            }
        }
        best
    }

    pub(crate) fn index_name(&self, pos: usize) -> &str {
        &self.indexes[pos].name
    }

    pub(crate) fn index_range(
        &self,
        pos: usize,
        low: Bound<&Value>,
        high: Bound<&Value>,
    ) -> Vec<RowId> {
        index_range_scan(&self.snap, self.indexes[pos].tree, &[], low, high)
    }
}
