//! Table schemas and column definitions.
//!
//! The paper (§4.1) splits the database schema into a *generic* part
//! (administrative, operational, location sections) and a *domain-specific*
//! part (HLE/ANA/catalog tables). Both are expressed with the same schema
//! machinery here; the split itself lives in `hedc-dm`.

use crate::error::{DbError, DbResult};
use crate::value::{DataType, Value};

/// Definition of one column.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ColumnDef {
    /// Column name (case-preserving, matched case-insensitively).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// Whether NULL is rejected.
    pub not_null: bool,
    /// Default value used when an insert omits the column.
    pub default: Option<Value>,
}

impl ColumnDef {
    /// A nullable column with no default.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            not_null: false,
            default: None,
        }
    }

    /// Mark the column `NOT NULL`.
    pub fn not_null(mut self) -> Self {
        self.not_null = true;
        self
    }

    /// Give the column a default value.
    pub fn default(mut self, v: impl Into<Value>) -> Self {
        self.default = Some(v.into());
        self
    }
}

/// A schema: ordered columns plus a primary key.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Schema {
    /// Table name.
    pub table: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Indices (into `columns`) of the primary-key columns, in key order.
    /// Empty means the table has no declared primary key (rowid only).
    pub primary_key: Vec<usize>,
}

impl Schema {
    /// Build a schema. Panics on duplicate column names: schemas are
    /// program-defined, so a duplicate is a programming error, not input.
    pub fn new(table: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        let table = table.into();
        for (i, c) in columns.iter().enumerate() {
            for other in &columns[i + 1..] {
                assert!(
                    !c.name.eq_ignore_ascii_case(&other.name),
                    "duplicate column `{}` in table `{}`",
                    c.name,
                    table
                );
            }
        }
        Schema {
            table,
            columns,
            primary_key: Vec::new(),
        }
    }

    /// Declare the primary key by column names. Panics if a name is unknown
    /// (schemas are program-defined).
    pub fn primary_key(mut self, cols: &[&str]) -> Self {
        self.primary_key = cols
            .iter()
            .map(|c| {
                self.column_index(c)
                    .unwrap_or_else(|| panic!("unknown pk column `{c}` in `{}`", self.table))
            })
            .collect();
        self
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Case-insensitive column lookup.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column lookup that returns a typed error.
    pub fn require_column(&self, name: &str) -> DbResult<usize> {
        self.column_index(name)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: self.table.clone(),
                column: name.to_string(),
            })
    }

    /// Validate and canonicalize a full row of values against this schema.
    ///
    /// Checks arity, type compatibility, and NOT NULL; applies defaults for
    /// NULLs in defaulted columns only when `apply_defaults` is set (inserts
    /// apply defaults, updates do not).
    pub fn check_row(&self, mut values: Vec<Value>, apply_defaults: bool) -> DbResult<Vec<Value>> {
        if values.len() != self.columns.len() {
            return Err(DbError::ArityMismatch {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        for (v, col) in values.iter_mut().zip(&self.columns) {
            if v.is_null() {
                if apply_defaults {
                    if let Some(d) = &col.default {
                        *v = d.clone();
                    }
                }
                if v.is_null() && col.not_null {
                    return Err(DbError::NullViolation(col.name.clone()));
                }
                continue;
            }
            if !v.compatible_with(col.ty) {
                return Err(DbError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty.name(),
                    got: v.type_name(),
                });
            }
            let taken = std::mem::replace(v, Value::Null);
            *v = taken.coerce(col.ty);
        }
        Ok(values)
    }

    /// Render as `CREATE TABLE` DDL (used by schema export and the
    /// StreamCorder mirror, which clones the server schema locally).
    pub fn to_ddl(&self) -> String {
        let mut out = format!("CREATE TABLE {} (", self.table);
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&c.name);
            out.push(' ');
            out.push_str(c.ty.name());
            if c.not_null {
                out.push_str(" NOT NULL");
            }
            if let Some(d) = &c.default {
                out.push_str(" DEFAULT ");
                out.push_str(&d.to_sql_literal());
            }
        }
        if !self.primary_key.is_empty() {
            out.push_str(", PRIMARY KEY (");
            for (i, &k) in self.primary_key.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&self.columns[k].name);
            }
            out.push(')');
        }
        out.push(')');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(
            "hle",
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("time_start", DataType::Timestamp).not_null(),
                ColumnDef::new("label", DataType::Text),
                ColumnDef::new("flux", DataType::Float).default(0.0),
            ],
        )
        .primary_key(&["id"])
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.column_index("ID"), Some(0));
        assert_eq!(s.column_index("Time_Start"), Some(1));
        assert_eq!(s.column_index("nope"), None);
    }

    #[test]
    fn check_row_validates_arity_and_types() {
        let s = sample();
        let err = s.check_row(vec![Value::Int(1)], true).unwrap_err();
        assert!(matches!(err, DbError::ArityMismatch { .. }));

        let err = s
            .check_row(
                vec![
                    Value::Int(1),
                    Value::Text("oops".into()),
                    Value::Null,
                    Value::Null,
                ],
                true,
            )
            .unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch { .. }));
    }

    #[test]
    fn check_row_applies_defaults_and_not_null() {
        let s = sample();
        let row = s
            .check_row(
                vec![Value::Int(1), Value::Int(100), Value::Null, Value::Null],
                true,
            )
            .unwrap();
        // Int into Timestamp column is canonicalized.
        assert_eq!(row[1], Value::Timestamp(100));
        // Default applied to flux.
        assert_eq!(row[3], Value::Float(0.0));

        let err = s
            .check_row(
                vec![Value::Null, Value::Int(1), Value::Null, Value::Null],
                true,
            )
            .unwrap_err();
        assert_eq!(err, DbError::NullViolation("id".into()));
    }

    #[test]
    fn updates_do_not_apply_defaults() {
        let s = sample();
        let row = s
            .check_row(
                vec![Value::Int(1), Value::Int(100), Value::Null, Value::Null],
                false,
            )
            .unwrap();
        assert_eq!(row[3], Value::Null);
    }

    #[test]
    fn ddl_rendering() {
        let s = sample();
        let ddl = s.to_ddl();
        assert!(ddl.starts_with("CREATE TABLE hle ("));
        assert!(ddl.contains("id INT NOT NULL"));
        assert!(ddl.contains("flux FLOAT DEFAULT 0.0"));
        assert!(ddl.contains("PRIMARY KEY (id)"));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        Schema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("A", DataType::Text),
            ],
        );
    }
}
