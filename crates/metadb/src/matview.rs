//! Materialized views.
//!
//! §6.3: "Many queries require summary data and use aggregates. Hence, in
//! addition to indices, we use materialized views to improve response
//! time." A materialized view here is a named, stored [`Query`] result:
//! it is refreshed on demand (HEDC refreshed its views during data
//! loading), served from its snapshot table, and tracks staleness against
//! the base table's edit counter so callers can decide when a refresh is
//! due — the "data refresh rules" of the §4.1 administrative section.

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::query::{Query, QueryResult};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// One materialized view: definition plus current snapshot.
#[derive(Debug)]
struct MatView {
    definition: Query,
    snapshot: QueryResult,
    /// Value of the database edit counter at refresh time.
    refreshed_at_edits: u64,
}

/// A registry of materialized views over one database.
pub struct MatViewManager {
    db: Arc<Database>,
    views: RwLock<HashMap<String, MatView>>,
}

impl MatViewManager {
    /// Create a manager for a database.
    pub fn new(db: Arc<Database>) -> Self {
        MatViewManager {
            db,
            views: RwLock::new(HashMap::new()),
        }
    }

    /// Define (or redefine) a view and materialize it immediately.
    pub fn define(&self, name: &str, definition: Query) -> DbResult<()> {
        let snapshot = self.db.connect().query(&definition)?;
        let refreshed_at_edits = self.db.stats().edits;
        self.views.write().insert(
            name.to_string(),
            MatView {
                definition,
                snapshot,
                refreshed_at_edits,
            },
        );
        Ok(())
    }

    /// Drop a view.
    pub fn drop_view(&self, name: &str) -> bool {
        self.views.write().remove(name).is_some()
    }

    /// Registered view names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.views.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Serve a view from its snapshot — no base-table access.
    pub fn read(&self, name: &str) -> DbResult<QueryResult> {
        self.views
            .read()
            .get(name)
            .map(|v| v.snapshot.clone())
            .ok_or_else(|| DbError::NoSuchTable(format!("materialized view `{name}`")))
    }

    /// Edits applied to the database since the view was refreshed. (An
    /// over-approximation — edits to *other* tables also count — which is
    /// the same conservative rule HEDC's load-time refresh used.)
    pub fn staleness(&self, name: &str) -> DbResult<u64> {
        let views = self.views.read();
        let v = views
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(format!("materialized view `{name}`")))?;
        Ok(self.db.stats().edits.saturating_sub(v.refreshed_at_edits))
    }

    /// Re-run the definition and swap the snapshot.
    pub fn refresh(&self, name: &str) -> DbResult<usize> {
        let definition = {
            let views = self.views.read();
            views
                .get(name)
                .ok_or_else(|| DbError::NoSuchTable(format!("materialized view `{name}`")))?
                .definition
                .clone()
        };
        let snapshot = self.db.connect().query(&definition)?;
        let rows = snapshot.rows.len();
        let refreshed_at_edits = self.db.stats().edits;
        if let Some(v) = self.views.write().get_mut(name) {
            v.snapshot = snapshot;
            v.refreshed_at_edits = refreshed_at_edits;
        }
        Ok(rows)
    }

    /// Refresh every view whose staleness exceeds `max_edits` (the
    /// load-time refresh pass). Returns the refreshed names.
    pub fn refresh_stale(&self, max_edits: u64) -> DbResult<Vec<String>> {
        let names = self.names();
        let mut refreshed = Vec::new();
        for name in names {
            if self.staleness(&name)? > max_edits {
                self.refresh(&name)?;
                refreshed.push(name);
            }
        }
        Ok(refreshed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::query::AggFunc;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::{DataType, Value};

    fn db() -> Arc<Database> {
        let db = Database::in_memory("mv");
        let mut conn = db.connect();
        conn.create_table(
            Schema::new(
                "hle",
                vec![
                    ColumnDef::new("id", DataType::Int).not_null(),
                    ColumnDef::new("etype", DataType::Text).not_null(),
                ],
            )
            .primary_key(&["id"]),
        )
        .unwrap();
        for i in 0..30i64 {
            conn.insert(
                "hle",
                vec![
                    Value::Int(i),
                    Value::Text(if i % 3 == 0 { "grb" } else { "flare" }.into()),
                ],
            )
            .unwrap();
        }
        db
    }

    fn summary_query() -> Query {
        Query::table("hle")
            .group_by("etype")
            .aggregate(AggFunc::CountStar)
    }

    #[test]
    fn define_read_refresh() {
        let db = db();
        let mgr = MatViewManager::new(Arc::clone(&db));
        mgr.define("events_by_type", summary_query()).unwrap();
        let snap = mgr.read("events_by_type").unwrap();
        assert_eq!(snap.rows.len(), 2);
        // flare count = 20.
        let flares = snap
            .rows
            .iter()
            .find(|r| r[0] == Value::Text("flare".into()))
            .unwrap();
        assert_eq!(flares[1], Value::Int(20));

        // Base-table change: the snapshot is stale until refreshed.
        let mut conn = db.connect();
        conn.insert("hle", vec![Value::Int(100), Value::Text("flare".into())])
            .unwrap();
        assert_eq!(mgr.staleness("events_by_type").unwrap(), 1);
        let snap = mgr.read("events_by_type").unwrap();
        let flares = snap
            .rows
            .iter()
            .find(|r| r[0] == Value::Text("flare".into()))
            .unwrap();
        assert_eq!(flares[1], Value::Int(20), "stale snapshot served");
        mgr.refresh("events_by_type").unwrap();
        let snap = mgr.read("events_by_type").unwrap();
        let flares = snap
            .rows
            .iter()
            .find(|r| r[0] == Value::Text("flare".into()))
            .unwrap();
        assert_eq!(flares[1], Value::Int(21));
        assert_eq!(mgr.staleness("events_by_type").unwrap(), 0);
    }

    #[test]
    fn reads_do_not_touch_base_tables() {
        let db = db();
        let mgr = MatViewManager::new(Arc::clone(&db));
        mgr.define("mv", summary_query()).unwrap();
        let before = db.stats();
        for _ in 0..50 {
            mgr.read("mv").unwrap();
        }
        assert_eq!(db.stats().since(&before).queries, 0);
    }

    #[test]
    fn refresh_stale_sweep() {
        let db = db();
        let mgr = MatViewManager::new(Arc::clone(&db));
        mgr.define("a", summary_query()).unwrap();
        mgr.define("b", Query::table("hle").filter(Expr::eq("etype", "grb")))
            .unwrap();
        // No edits: nothing refreshes.
        assert!(mgr.refresh_stale(0).unwrap().is_empty());
        db.connect()
            .insert("hle", vec![Value::Int(200), Value::Text("grb".into())])
            .unwrap();
        let refreshed = mgr.refresh_stale(0).unwrap();
        assert_eq!(refreshed, vec!["a".to_string(), "b".to_string()]);
        let b = mgr.read("b").unwrap();
        assert_eq!(b.rows.len(), 11);
    }

    #[test]
    fn unknown_view_errors_and_drop() {
        let db = db();
        let mgr = MatViewManager::new(db);
        assert!(mgr.read("ghost").is_err());
        assert!(mgr.staleness("ghost").is_err());
        mgr.define("v", summary_query()).unwrap();
        assert!(mgr.drop_view("v"));
        assert!(!mgr.drop_view("v"));
        assert!(mgr.read("v").is_err());
    }
}
