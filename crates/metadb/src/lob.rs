//! In-database Large OBject storage.
//!
//! HEDC decided *against* LOBs (§4.2): "accessing a LOB is significantly
//! slower than accessing a file", and small-LOB chunking makes long-range
//! reads worse. This module exists so that decision can be *measured* rather
//! than asserted — the `ablation_lob_vs_fs` bench stores the same derived
//! data products both ways. It deliberately mimics the commercial-LOB
//! behaviour the paper complains about: data is chunked, and every chunk
//! access goes through the same locked engine path a query would.

use crate::error::{DbError, DbResult};

/// Default chunk size. Commercial LOB implementations of the era kept
/// chunks near the page size; reads of large objects therefore touched many
/// pages. 8 KiB reproduces that behaviour.
pub const DEFAULT_CHUNK: usize = 8 * 1024;

/// A chunked LOB store.
#[derive(Debug)]
pub struct LobStore {
    chunk_size: usize,
    lobs: Vec<Option<Vec<Vec<u8>>>>,
    free: Vec<usize>,
    total_bytes: usize,
}

impl Default for LobStore {
    fn default() -> Self {
        Self::new(DEFAULT_CHUNK)
    }
}

impl LobStore {
    /// Create a store with a given chunk size (must be non-zero).
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        LobStore {
            chunk_size,
            lobs: Vec::new(),
            free: Vec::new(),
            total_bytes: 0,
        }
    }

    /// Number of stored LOBs.
    pub fn len(&self) -> usize {
        self.lobs.iter().filter(|l| l.is_some()).count()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload bytes stored.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Store a LOB, returning its id.
    pub fn put(&mut self, data: &[u8]) -> u64 {
        let chunks: Vec<Vec<u8>> = data.chunks(self.chunk_size).map(<[u8]>::to_vec).collect();
        self.total_bytes += data.len();
        match self.free.pop() {
            Some(slot) => {
                self.lobs[slot] = Some(chunks);
                slot as u64
            }
            None => {
                self.lobs.push(Some(chunks));
                (self.lobs.len() - 1) as u64
            }
        }
    }

    /// Read a whole LOB, reassembling all chunks.
    pub fn get(&self, id: u64) -> DbResult<Vec<u8>> {
        let chunks = self.chunks(id)?;
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            out.extend_from_slice(c);
        }
        Ok(out)
    }

    /// Read a byte range without materializing the whole object.
    pub fn get_range(&self, id: u64, offset: usize, len: usize) -> DbResult<Vec<u8>> {
        let chunks = self.chunks(id)?;
        let total: usize = chunks.iter().map(Vec::len).sum();
        if offset >= total {
            return Ok(Vec::new());
        }
        let end = (offset + len).min(total);
        let mut out = Vec::with_capacity(end - offset);
        let mut pos = 0usize;
        for c in chunks {
            let c_end = pos + c.len();
            if c_end > offset && pos < end {
                let from = offset.saturating_sub(pos);
                let to = (end - pos).min(c.len());
                out.extend_from_slice(&c[from..to]);
            }
            pos = c_end;
            if pos >= end {
                break;
            }
        }
        Ok(out)
    }

    /// Size of a LOB in bytes.
    pub fn size(&self, id: u64) -> DbResult<usize> {
        Ok(self.chunks(id)?.iter().map(Vec::len).sum())
    }

    /// Delete a LOB.
    pub fn delete(&mut self, id: u64) -> DbResult<()> {
        let slot = id as usize;
        let old = self
            .lobs
            .get_mut(slot)
            .and_then(Option::take)
            .ok_or(DbError::NoSuchLob(id))?;
        self.total_bytes -= old.iter().map(Vec::len).sum::<usize>();
        self.free.push(slot);
        Ok(())
    }

    fn chunks(&self, id: u64) -> DbResult<&Vec<Vec<u8>>> {
        self.lobs
            .get(id as usize)
            .and_then(Option::as_ref)
            .ok_or(DbError::NoSuchLob(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut s = LobStore::new(4);
        let data: Vec<u8> = (0..23u8).collect();
        let id = s.put(&data);
        assert_eq!(s.get(id).unwrap(), data);
        assert_eq!(s.size(id).unwrap(), 23);
        assert_eq!(s.total_bytes(), 23);
    }

    #[test]
    fn empty_lob() {
        let mut s = LobStore::default();
        let id = s.put(&[]);
        assert_eq!(s.get(id).unwrap(), Vec::<u8>::new());
        assert_eq!(s.size(id).unwrap(), 0);
    }

    #[test]
    fn range_reads_cross_chunk_boundaries() {
        let mut s = LobStore::new(4);
        let data: Vec<u8> = (0..20u8).collect();
        let id = s.put(&data);
        assert_eq!(s.get_range(id, 2, 6).unwrap(), &data[2..8]);
        assert_eq!(s.get_range(id, 0, 100).unwrap(), data);
        assert_eq!(s.get_range(id, 18, 10).unwrap(), &data[18..]);
        assert!(s.get_range(id, 25, 3).unwrap().is_empty());
    }

    #[test]
    fn delete_and_slot_reuse() {
        let mut s = LobStore::new(8);
        let a = s.put(&[1, 2, 3]);
        s.delete(a).unwrap();
        assert!(matches!(s.get(a), Err(DbError::NoSuchLob(_))));
        assert_eq!(s.total_bytes(), 0);
        let b = s.put(&[4, 5]);
        assert_eq!(b, a);
        assert_eq!(s.len(), 1);
    }
}
