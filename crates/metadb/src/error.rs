//! Error types for the metadata database.

use std::fmt;

/// The error type returned by every fallible operation in this crate.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum DbError {
    /// A table with the given name already exists.
    TableExists(String),
    /// No table with the given name exists.
    NoSuchTable(String),
    /// No column with the given name exists in the table.
    NoSuchColumn { table: String, column: String },
    /// An index with the given name already exists.
    IndexExists(String),
    /// No index with the given name exists.
    NoSuchIndex(String),
    /// A value's type does not match the column's declared type.
    TypeMismatch {
        column: String,
        expected: &'static str,
        got: &'static str,
    },
    /// A `NOT NULL` column received a null value.
    NullViolation(String),
    /// A unique or primary-key constraint was violated.
    UniqueViolation { index: String },
    /// A foreign-key style reference constraint was violated.
    ReferenceViolation { from: String, to: String },
    /// The row count of an insert does not match the schema arity.
    ArityMismatch { expected: usize, got: usize },
    /// The referenced row id does not exist (stale handle or deleted row).
    NoSuchRow(u64),
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// The statement is valid SQL but not supported by this engine.
    Unsupported(String),
    /// A transaction-state error (e.g. commit without begin).
    Txn(String),
    /// The connection pool is exhausted and the caller chose not to wait.
    PoolExhausted,
    /// An I/O error while reading or writing the redo log.
    Io(String),
    /// The redo log is corrupt and recovery cannot proceed.
    CorruptLog(String),
    /// A LOB with the given id does not exist.
    NoSuchLob(u64),
    /// The paged storage engine reported an error.
    Storage(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::TableExists(t) => write!(f, "table `{t}` already exists"),
            DbError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            DbError::NoSuchColumn { table, column } => {
                write!(f, "no column `{column}` in table `{table}`")
            }
            DbError::IndexExists(i) => write!(f, "index `{i}` already exists"),
            DbError::NoSuchIndex(i) => write!(f, "no such index `{i}`"),
            DbError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch for column `{column}`: expected {expected}, got {got}"
            ),
            DbError::NullViolation(c) => write!(f, "column `{c}` may not be null"),
            DbError::UniqueViolation { index } => {
                write!(f, "unique constraint violated on `{index}`")
            }
            DbError::ReferenceViolation { from, to } => {
                write!(f, "reference constraint violated: `{from}` -> `{to}`")
            }
            DbError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            DbError::NoSuchRow(id) => write!(f, "no such row id {id}"),
            DbError::Parse(msg) => write!(f, "SQL parse error: {msg}"),
            DbError::Unsupported(msg) => write!(f, "unsupported SQL: {msg}"),
            DbError::Txn(msg) => write!(f, "transaction error: {msg}"),
            DbError::PoolExhausted => write!(f, "connection pool exhausted"),
            DbError::Io(msg) => write!(f, "I/O error: {msg}"),
            DbError::CorruptLog(msg) => write!(f, "corrupt redo log: {msg}"),
            DbError::NoSuchLob(id) => write!(f, "no such LOB {id}"),
            DbError::Storage(msg) => write!(f, "storage engine error: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e.to_string())
    }
}

/// Crate-wide result alias.
pub type DbResult<T> = Result<T, DbError>;
