//! Order-preserving key encoding for the paged backend.
//!
//! The paged B-tree ([`hedc_store`]) compares raw bytes, so index keys
//! must be encoded such that `memcmp` order equals [`Value`] order.
//! The encoding mirrors `Value::cmp` exactly for values whose numeric
//! component is within ±2⁵³ (where `i64 → f64` is lossless):
//!
//! - A leading **rank tag** reproduces the NULL < BOOL < numeric <
//!   TEXT < BYTES type order.
//! - All three numeric types share one tag and encode as the
//!   sign-flipped IEEE-754 bits of the value widened to `f64`
//!   (monotone under `total_cmp`), followed by an exact `i64`
//!   tie-break so that integers that collide after widening still
//!   order exactly. Integral floats canonicalise to the *same* bytes
//!   as the equal integer, because `Value::cmp` calls
//!   `Int(5)`, `Float(5.0)` and `Timestamp(5)` equal and unique-index
//!   probes rely on byte equality.
//! - TEXT and BYTES escape `0x00 → 0x00 0xFF` and terminate with
//!   `0x00 0x00`, which keeps components prefix-free so composite keys
//!   concatenate into tuple order.
//!
//! Row payloads use a separate tagged binary codec ([`encode_row`] /
//! [`decode_row`]) that round-trips every value exactly, including
//! float bit patterns (NaN, -0.0) that a textual codec would mangle.

use crate::value::Value;

/// Rank tags, matching `Value::rank`.
const TAG_NULL: u8 = 0x00;
const TAG_BOOL: u8 = 0x01;
const TAG_NUM: u8 = 0x02;
const TAG_TEXT: u8 = 0x03;
const TAG_BYTES: u8 = 0x04;

/// Append the order-preserving encoding of one value.
pub fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(i) | Value::Timestamp(i) => encode_numeric(out, *i as f64, *i),
        Value::Float(f) => {
            // Canonicalise integral floats onto the integer encoding so
            // that byte equality matches `Value`'s cross-type equality.
            let tie = if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                let i = *f as i64;
                if i as f64 == *f {
                    i
                } else {
                    0
                }
            } else {
                0
            };
            encode_numeric(out, *f, tie);
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            encode_escaped(out, s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            encode_escaped(out, b);
        }
    }
}

/// Encode a composite key (one encoded component per column, in order).
pub fn encode_key(vals: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 10);
    for v in vals {
        encode_value(&mut out, v);
    }
    out
}

/// Encode an index entry key: composite key bytes plus a big-endian row
/// id suffix, so duplicate keys stay distinct in the tree and scans
/// yield ids in (key, id) order.
pub fn encode_index_entry(vals: &[Value], id: u64) -> Vec<u8> {
    let mut out = encode_key(vals);
    out.extend_from_slice(&id.to_be_bytes());
    out
}

/// Recover the row id from an index entry produced by
/// [`encode_index_entry`].
pub fn decode_index_entry_id(key: &[u8]) -> u64 {
    let n = key.len();
    debug_assert!(n >= 8, "index entry too short");
    let mut id = [0u8; 8];
    id.copy_from_slice(&key[n - 8..]);
    u64::from_be_bytes(id)
}

/// Smallest byte string strictly greater than every extension of
/// `prefix`, or `None` when the prefix is all `0xFF` (no upper bound).
pub fn prefix_successor(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut out = prefix.to_vec();
    while let Some(last) = out.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(out);
        }
        out.pop();
    }
    None
}

fn encode_numeric(out: &mut Vec<u8>, widened: f64, exact: i64) {
    out.push(TAG_NUM);
    // `total_cmp` order: flip the sign bit for positives, all bits for
    // negatives, then compare as unsigned big-endian.
    let bits = widened.to_bits();
    let mono = if bits >> 63 == 1 {
        !bits
    } else {
        bits ^ (1 << 63)
    };
    out.extend_from_slice(&mono.to_be_bytes());
    // Bias the exact integer so it also compares as unsigned bytes.
    out.extend_from_slice(&((exact as u64) ^ (1 << 63)).to_be_bytes());
}

fn encode_escaped(out: &mut Vec<u8>, bytes: &[u8]) {
    for &b in bytes {
        out.push(b);
        if b == 0x00 {
            out.push(0xFF);
        }
    }
    out.extend_from_slice(&[0x00, 0x00]);
}

// ---------------------------------------------------------------------
// Row payload codec (exact round-trip; ordering irrelevant).
// ---------------------------------------------------------------------

const ROW_NULL: u8 = 0;
const ROW_INT: u8 = 1;
const ROW_FLOAT: u8 = 2;
const ROW_TEXT: u8 = 3;
const ROW_BOOL: u8 = 4;
const ROW_TS: u8 = 5;
const ROW_BYTES: u8 = 6;

/// Encode a full row for storage as a tree value.
pub fn encode_row(row: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + row.len() * 9);
    out.extend_from_slice(&(row.len() as u32).to_le_bytes());
    for v in row {
        match v {
            Value::Null => out.push(ROW_NULL),
            Value::Int(i) => {
                out.push(ROW_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(ROW_FLOAT);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Text(s) => {
                out.push(ROW_TEXT);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(ROW_BOOL);
                out.push(u8::from(*b));
            }
            Value::Timestamp(t) => {
                out.push(ROW_TS);
                out.extend_from_slice(&t.to_le_bytes());
            }
            Value::Bytes(b) => {
                out.push(ROW_BYTES);
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
        }
    }
    out
}

/// Decode a row previously produced by [`encode_row`]. Panics on
/// malformed input: row payloads only ever come from our own trees, so
/// corruption here is a logic error, not an expected condition.
pub fn decode_row(buf: &[u8]) -> Vec<Value> {
    let mut p = 0usize;
    let n = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    p += 4;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = buf[p];
        p += 1;
        row.push(match tag {
            ROW_NULL => Value::Null,
            ROW_INT => {
                let v = i64::from_le_bytes(buf[p..p + 8].try_into().unwrap());
                p += 8;
                Value::Int(v)
            }
            ROW_FLOAT => {
                let v = u64::from_le_bytes(buf[p..p + 8].try_into().unwrap());
                p += 8;
                Value::Float(f64::from_bits(v))
            }
            ROW_TEXT => {
                let len = u32::from_le_bytes(buf[p..p + 4].try_into().unwrap()) as usize;
                p += 4;
                let s = std::str::from_utf8(&buf[p..p + len]).expect("utf8 row text");
                p += len;
                Value::Text(s.to_string())
            }
            ROW_BOOL => {
                let v = buf[p] != 0;
                p += 1;
                Value::Bool(v)
            }
            ROW_TS => {
                let v = i64::from_le_bytes(buf[p..p + 8].try_into().unwrap());
                p += 8;
                Value::Timestamp(v)
            }
            ROW_BYTES => {
                let len = u32::from_le_bytes(buf[p..p + 4].try_into().unwrap()) as usize;
                p += 4;
                let b = buf[p..p + len].to_vec();
                p += len;
                Value::Bytes(b)
            }
            other => panic!("corrupt row tag {other}"),
        });
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Random value whose numeric part stays within ±2^53, where the
    /// encoding is exactly faithful to `Value::cmp`.
    fn arb_value(state: &mut u64) -> Value {
        match splitmix(state) % 8 {
            0 => Value::Null,
            1 => Value::Bool(splitmix(state) & 1 == 1),
            2 => Value::Int((splitmix(state) % (1 << 53)) as i64 - (1 << 52)),
            3 => Value::Timestamp((splitmix(state) % (1 << 53)) as i64 - (1 << 52)),
            4 => {
                let i = (splitmix(state) % 2000) as i64 - 1000;
                if splitmix(state) & 1 == 1 {
                    Value::Float(i as f64) // integral float: canonical case
                } else {
                    Value::Float(i as f64 + 0.5)
                }
            }
            5 => {
                let n = (splitmix(state) % 12) as usize;
                let s: String = (0..n)
                    .map(|_| char::from(b'a' + (splitmix(state) % 26) as u8))
                    .collect();
                Value::Text(s)
            }
            6 => {
                // Text with embedded NULs to exercise the escape.
                let n = (splitmix(state) % 6) as usize;
                let s: String = (0..n)
                    .map(|_| if splitmix(state) & 1 == 1 { '\0' } else { 'x' })
                    .collect();
                Value::Text(s)
            }
            _ => {
                let n = (splitmix(state) % 8) as usize;
                Value::Bytes((0..n).map(|_| (splitmix(state) % 256) as u8).collect())
            }
        }
    }

    #[test]
    fn single_value_order_matches_value_cmp() {
        let mut state = crate::test_seed();
        for _ in 0..4000 {
            let a = arb_value(&mut state);
            let b = arb_value(&mut state);
            let ea = encode_key(std::slice::from_ref(&a));
            let eb = encode_key(std::slice::from_ref(&b));
            assert_eq!(
                ea.cmp(&eb),
                a.cmp(&b),
                "keycode order diverges: {a:?} vs {b:?} ({ea:02x?} vs {eb:02x?})"
            );
        }
    }

    #[test]
    fn composite_key_order_matches_tuple_cmp() {
        let mut state = crate::test_seed() ^ 0xC0FFEE;
        for _ in 0..2000 {
            let n = 1 + (splitmix(&mut state) % 3) as usize;
            let a: Vec<Value> = (0..n).map(|_| arb_value(&mut state)).collect();
            let b: Vec<Value> = (0..n).map(|_| arb_value(&mut state)).collect();
            assert_eq!(
                encode_key(&a).cmp(&encode_key(&b)),
                a.cmp(&b),
                "composite keycode diverges: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn cross_type_numeric_equality_is_byte_equality() {
        for i in [-7i64, 0, 5, 1 << 40] {
            let int = encode_key(&[Value::Int(i)]);
            let ts = encode_key(&[Value::Timestamp(i)]);
            let fl = encode_key(&[Value::Float(i as f64)]);
            assert_eq!(int, ts);
            assert_eq!(int, fl);
        }
        // Negative zero sorts below positive zero (total_cmp order),
        // exactly as the in-memory comparator does.
        let nz = encode_key(&[Value::Float(-0.0)]);
        let z = encode_key(&[Value::Int(0)]);
        assert!(nz < z);
        assert_eq!(
            Value::Float(-0.0).cmp(&Value::Int(0)),
            Ordering::Less,
            "keycode must agree with Value::cmp on -0.0"
        );
    }

    #[test]
    fn prefix_successor_bounds_prefix_scans() {
        assert_eq!(prefix_successor(b"ab"), Some(b"ac".to_vec()));
        assert_eq!(prefix_successor(&[0x61, 0xFF]), Some(vec![0x62]));
        assert_eq!(prefix_successor(&[0xFF, 0xFF]), None);
        // Every extension of the prefix is below the successor.
        let p = encode_key(&[Value::Int(5)]);
        let succ = prefix_successor(&p).unwrap();
        let ext = encode_index_entry(&[Value::Int(5), Value::Text("zzz".into())], u64::MAX);
        assert!(p < ext && ext < succ);
    }

    #[test]
    fn row_codec_round_trips_exactly() {
        let rows = vec![
            vec![],
            vec![Value::Null, Value::Bool(true), Value::Bool(false)],
            vec![
                Value::Int(i64::MIN),
                Value::Int(i64::MAX),
                Value::Timestamp(-1),
            ],
            vec![
                Value::Float(f64::NAN),
                Value::Float(-0.0),
                Value::Float(1e300),
            ],
            vec![Value::Text("".into()), Value::Text("héllo\0world".into())],
            vec![Value::Bytes(vec![]), Value::Bytes((0..=255).collect())],
        ];
        for row in rows {
            let enc = encode_row(&row);
            let dec = decode_row(&enc);
            assert_eq!(dec.len(), row.len());
            for (a, b) in row.iter().zip(&dec) {
                // Compare bit patterns, not Value::eq, so NaN and -0.0
                // round-trips are actually checked.
                match (a, b) {
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                    _ => assert_eq!(a, b),
                }
            }
        }
    }
}
