//! The database kernel: catalog, connections, transactions, recovery.
//!
//! Concurrency model: one coarse reader-writer lock over the catalog. Reads
//! (queries) share the lock; DML takes it exclusively per statement. A
//! transaction's atomicity is provided by an undo list held in the
//! connection (rollback reverses the transaction's own effects) and a redo
//! buffer flushed to the WAL at commit. This is the "read committed on a
//! single node" regime the paper's DM runs against — HEDC serializes writers
//! through the DM component rather than relying on exotic DBMS isolation.
//!
//! Known limitation (single-writer assumption, as in HEDC's deployment):
//! redo records are appended at commit time, not under the catalog lock, so
//! *concurrent writers to the same table* can produce a WAL whose replay
//! order differs from apply order (slot-id conflicts on recovery), and a
//! rollback can fail if another connection reused a freed slot in the
//! interim. The DM routes all writes through its update pool and entity
//! services, which serialize writers per entity; embedders doing raw
//! multi-writer DML on one table should wrap it in their own lock.

use crate::error::{DbError, DbResult};
use crate::expr::Expr;
use crate::index::RowId;
use crate::lob::LobStore;
use crate::paged::TableSnapshot;
use crate::query::{self, Query, QueryResult};
use crate::schema::Schema;
use crate::sql::{self, Statement};
use crate::stats::{DbStats, StatsSnapshot};
use crate::table::Table;
use crate::value::Value;
use crate::wal::{self, LogRecord, Wal, WalOptions};
use hedc_store::{Store, StoreOptions};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Which engine holds table rows and indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum StorageBackend {
    /// Rows in process-heap `Vec`s, indexes in `BTreeMap`s — the original
    /// backing. Fastest for datasets that fit comfortably in RAM.
    Memory,
    /// Rows and indexes in [`hedc_store`]'s paged copy-on-write B-trees:
    /// tables can exceed RAM (a page cache bounds residency) and readers
    /// run against MVCC snapshots that never block the writer.
    Paged,
}

impl Default for StorageBackend {
    fn default() -> Self {
        StorageBackend::Memory
    }
}

/// Declarative storage-engine configuration, embeddable in `HedcConfig`.
///
/// Durability is unchanged by the backend choice: the WAL above the
/// database remains the source of truth, and the paged store's backing
/// file is scratch space rebuilt from the WAL at open.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct StorageConfig {
    /// Backend selector.
    pub backend: StorageBackend,
    /// Page size in bytes for the paged backend (clamped by the store to
    /// `[128, 32768]`).
    pub page_size: usize,
    /// Page-cache budget in pages; `0` means use the process-wide default
    /// from [`crate::tuning::page_cache_pages`].
    pub cache_pages: usize,
    /// Backing file for the paged store. `None` uses an anonymous scratch
    /// file in the OS temp directory.
    pub store_path: Option<PathBuf>,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            backend: StorageBackend::Memory,
            page_size: 4096,
            cache_pages: 0,
            store_path: None,
        }
    }
}

impl StorageConfig {
    /// Convenience: a paged configuration with default page size and cache.
    pub fn paged() -> Self {
        StorageConfig {
            backend: StorageBackend::Paged,
            ..StorageConfig::default()
        }
    }
}

/// Options for [`Database::open`]: storage backend plus optional WAL.
#[derive(Debug, Clone, Default)]
pub struct DbOptions {
    /// Storage-engine configuration.
    pub storage: StorageConfig,
    /// Redo-log path; `None` disables durability (like
    /// [`Database::in_memory`]).
    pub wal_path: Option<PathBuf>,
    /// WAL durability options (group commit, fsync).
    pub wal: WalOptions,
}

#[derive(Debug, Default)]
struct Inner {
    tables: BTreeMap<String, Table>,
    lobs: LobStore,
    /// Shared paged store; `None` for the memory backend.
    store: Option<Arc<Store>>,
}

impl Inner {
    fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    fn table_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Construct a table on whichever backing this database uses.
    fn new_table(&self, schema: Schema) -> DbResult<Table> {
        match &self.store {
            Some(store) => Table::new_paged(schema, Arc::clone(store)),
            None => Ok(Table::new(schema)),
        }
    }
}

/// An embedded metadata database instance.
#[derive(Debug)]
pub struct Database {
    name: String,
    inner: RwLock<Inner>,
    stats: DbStats,
    wal: Mutex<Option<Wal>>,
    /// Published MVCC snapshots for paged tables, one per table, refreshed
    /// after every mutating statement. Queries against paged tables are
    /// served from here without touching the catalog lock, so browse reads
    /// never wait behind ingest writers. Always empty for the memory
    /// backend. Lock order: `inner` before `published`.
    published: RwLock<HashMap<String, Arc<TableSnapshot>>>,
}

impl Database {
    /// Create an in-memory database (no redo log).
    pub fn in_memory(name: impl Into<String>) -> Arc<Self> {
        Arc::new(Database {
            name: name.into(),
            inner: RwLock::new(Inner::default()),
            stats: DbStats::default(),
            wal: Mutex::new(None),
            published: RwLock::new(HashMap::new()),
        })
    }

    /// Open a database backed by a redo log, replaying any committed history
    /// found at `path` first.
    pub fn with_wal(name: impl Into<String>, path: impl AsRef<Path>) -> DbResult<Arc<Self>> {
        Self::with_wal_opts(name, path, WalOptions::default())
    }

    /// Like [`Database::with_wal`], but with explicit WAL durability options
    /// (group commit, fsync). Recovery is identical for every option set:
    /// replay stops at the last complete commit marker.
    pub fn with_wal_opts(
        name: impl Into<String>,
        path: impl AsRef<Path>,
        options: WalOptions,
    ) -> DbResult<Arc<Self>> {
        Self::open(
            name,
            DbOptions {
                storage: StorageConfig::default(),
                wal_path: Some(path.as_ref().to_path_buf()),
                wal: options,
            },
        )
    }

    /// Open a database with explicit storage and durability options. This
    /// is the general constructor; [`Database::in_memory`] and
    /// [`Database::with_wal`] are shorthands for the memory backend.
    ///
    /// With [`StorageBackend::Paged`], rows and indexes live in a paged
    /// copy-on-write B-tree store whose backing file is *scratch*: any
    /// existing file at `storage.store_path` is truncated, and the durable
    /// contents are rebuilt by replaying the WAL (exactly as for the memory
    /// backend). Replay produces identical row ids on either backend, so a
    /// WAL written under one backend can be opened under the other.
    pub fn open(name: impl Into<String>, opts: DbOptions) -> DbResult<Arc<Self>> {
        let store = match opts.storage.backend {
            StorageBackend::Memory => None,
            StorageBackend::Paged => {
                let cache_pages = if opts.storage.cache_pages == 0 {
                    crate::tuning::page_cache_pages()
                } else {
                    opts.storage.cache_pages
                };
                let store = Store::open(StoreOptions {
                    path: opts.storage.store_path.clone(),
                    page_size: opts.storage.page_size,
                    cache_pages,
                })
                .map_err(|e| DbError::Storage(e.to_string()))?;
                Some(Arc::new(store))
            }
        };
        let mut inner = Inner {
            store,
            ..Inner::default()
        };
        let wal = match &opts.wal_path {
            Some(path) => {
                let records = wal::read_committed(path)?;
                for rec in records {
                    replay(&mut inner, rec)?;
                }
                Some(Wal::open_with(path, opts.wal)?)
            }
            None => None,
        };
        let db = Arc::new(Database {
            name: name.into(),
            inner: RwLock::new(inner),
            stats: DbStats::default(),
            wal: Mutex::new(wal),
            published: RwLock::new(HashMap::new()),
        });
        // Publish initial snapshots for every paged table recovered from
        // the WAL so queries can run lock-free from the start.
        let names: Vec<String> = db.inner.read().tables.keys().cloned().collect();
        for name in names {
            db.republish(&name);
        }
        Ok(db)
    }

    /// Flush any group-commit-deferred WAL batches to the OS. A no-op for
    /// in-memory databases or a WAL with nothing pending. Ingest barriers
    /// (end of a pipeline run, a journal checkpoint) call this so "pipeline
    /// finished" implies "journal durable" even with a large group-commit
    /// window.
    pub fn wal_flush(&self) -> DbResult<()> {
        if let Some(wal) = self.wal.lock().as_mut() {
            wal.flush()?;
        }
        Ok(())
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Open a connection.
    pub fn connect(self: &Arc<Self>) -> Connection {
        Connection {
            db: Arc::clone(self),
            txn: None,
        }
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.read().tables.keys().cloned().collect()
    }

    /// A table's schema, cloned.
    pub fn schema_of(&self, table: &str) -> DbResult<Schema> {
        Ok(self.inner.read().table(table)?.schema().clone())
    }

    /// Live row count of a table.
    pub fn row_count(&self, table: &str) -> DbResult<usize> {
        Ok(self.inner.read().table(table)?.len())
    }

    /// Snapshot of the monitoring counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn log(&self, records: &[LogRecord]) -> DbResult<()> {
        if let Some(wal) = self.wal.lock().as_mut() {
            wal.append_commit(records)?;
        }
        Ok(())
    }

    /// Refresh the published MVCC snapshot for one table. A no-op for
    /// memory-backed tables ([`Table::freeze`] returns `None`). Takes
    /// `inner` shared then `published` exclusive — callers must not hold
    /// the catalog lock.
    fn republish(&self, table: &str) {
        let key = table.to_ascii_lowercase();
        let snap = match self.inner.read().tables.get(&key) {
            Some(t) => t.freeze(),
            None => None,
        };
        if let Some(snap) = snap {
            self.published.write().insert(key, Arc::new(snap));
        }
    }

    /// The published snapshot for a paged table, if any. Queries use this
    /// to serve reads without the catalog lock; embedders can hold one to
    /// pin a consistent view across several queries.
    pub fn snapshot(&self, table: &str) -> Option<Arc<TableSnapshot>> {
        self.published
            .read()
            .get(&table.to_ascii_lowercase())
            .cloned()
    }
}

fn replay(inner: &mut Inner, rec: LogRecord) -> DbResult<()> {
    match rec {
        LogRecord::CreateTable { schema } => {
            let key = schema.table.to_ascii_lowercase();
            if inner.tables.contains_key(&key) {
                return Err(DbError::CorruptLog(format!(
                    "duplicate CREATE TABLE {key} in log"
                )));
            }
            let table = inner.new_table(schema)?;
            inner.tables.insert(key, table);
        }
        LogRecord::CreateIndex {
            table,
            name,
            columns,
            unique,
        } => {
            let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
            inner.table_mut(&table)?.create_index(name, &cols, unique)?;
        }
        LogRecord::Insert {
            table,
            row_id,
            values,
        } => {
            inner.table_mut(&table)?.insert_at(row_id, values)?;
        }
        LogRecord::Update {
            table,
            row_id,
            values,
        } => {
            inner.table_mut(&table)?.update(row_id, values)?;
        }
        LogRecord::Delete { table, row_id } => {
            inner.table_mut(&table)?.delete(row_id)?;
        }
        LogRecord::Commit => {}
    }
    Ok(())
}

/// Undo record for rollback.
#[derive(Debug)]
enum Undo {
    Insert {
        table: String,
        row_id: RowId,
    },
    Update {
        table: String,
        row_id: RowId,
        old: Vec<Value>,
    },
    Delete {
        table: String,
        row_id: RowId,
        old: Vec<Value>,
    },
}

#[derive(Debug, Default)]
struct Txn {
    undo: Vec<Undo>,
    redo: Vec<LogRecord>,
}

/// Result of executing one SQL statement.
#[derive(Debug)]
pub enum SqlOutput {
    /// A SELECT's result set.
    Rows(QueryResult),
    /// Number of rows affected by DML.
    Affected(usize),
    /// DDL or transaction control: nothing to return.
    Done,
}

impl SqlOutput {
    /// Unwrap a result set; panics on DML/DDL output (test convenience).
    pub fn rows(self) -> QueryResult {
        match self {
            SqlOutput::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    /// Unwrap an affected-row count.
    pub fn affected(self) -> usize {
        match self {
            SqlOutput::Affected(n) => n,
            other => panic!("expected affected count, got {other:?}"),
        }
    }
}

/// A connection: the unit of transaction scope. Cheap to create, but the
/// paper found connection creation expensive enough to pool (§5.3) — the
/// pool in [`crate::ConnectionPool`] models that cost explicitly.
pub struct Connection {
    db: Arc<Database>,
    txn: Option<Txn>,
}

impl Connection {
    /// The owning database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Whether a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Begin a transaction. Nested transactions are rejected.
    pub fn begin(&mut self) -> DbResult<()> {
        if self.txn.is_some() {
            return Err(DbError::Txn("transaction already open".into()));
        }
        self.txn = Some(Txn::default());
        Ok(())
    }

    /// Commit the open transaction, flushing its redo records to the WAL.
    pub fn commit(&mut self) -> DbResult<()> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| DbError::Txn("commit without begin".into()))?;
        self.db.log(&txn.redo)?;
        DbStats::bump(&self.db.stats.commits);
        Ok(())
    }

    /// Roll back the open transaction, undoing its effects in reverse order.
    pub fn rollback(&mut self) -> DbResult<()> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| DbError::Txn("rollback without begin".into()))?;
        let mut touched: Vec<String> = Vec::new();
        {
            let mut inner = self.db.inner.write();
            for undo in txn.undo.into_iter().rev() {
                match undo {
                    Undo::Insert { table, row_id } => {
                        inner.table_mut(&table)?.delete(row_id)?;
                        touched.push(table);
                    }
                    Undo::Update { table, row_id, old } => {
                        inner.table_mut(&table)?.update(row_id, old)?;
                        touched.push(table);
                    }
                    Undo::Delete { table, row_id, old } => {
                        inner.table_mut(&table)?.insert_at(row_id, old)?;
                        touched.push(table);
                    }
                }
            }
        }
        touched.sort();
        touched.dedup();
        for table in &touched {
            self.db.republish(table);
        }
        DbStats::bump(&self.db.stats.rollbacks);
        Ok(())
    }

    fn record(&mut self, undo: Undo, redo: LogRecord) -> DbResult<()> {
        match &mut self.txn {
            Some(t) => {
                t.undo.push(undo);
                t.redo.push(redo);
                Ok(())
            }
            // Auto-commit: log immediately.
            None => self.db.log(std::slice::from_ref(&redo)),
        }
    }

    /// Create a table. DDL auto-commits and is not undone by rollback.
    pub fn create_table(&mut self, schema: Schema) -> DbResult<()> {
        {
            let mut inner = self.db.inner.write();
            let key = schema.table.to_ascii_lowercase();
            if inner.tables.contains_key(&key) {
                return Err(DbError::TableExists(schema.table));
            }
            let table = inner.new_table(schema.clone())?;
            inner.tables.insert(key, table);
        }
        self.db.republish(&schema.table);
        self.db.log(&[LogRecord::CreateTable { schema }])
    }

    /// Create an index. DDL auto-commits.
    pub fn create_index(
        &mut self,
        table: &str,
        name: &str,
        columns: &[&str],
        unique: bool,
    ) -> DbResult<()> {
        {
            let mut inner = self.db.inner.write();
            inner
                .table_mut(table)?
                .create_index(name, columns, unique)?;
        }
        self.db.republish(table);
        self.db.log(&[LogRecord::CreateIndex {
            table: table.to_string(),
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            unique,
        }])
    }

    /// Insert a row, returning its id.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> DbResult<RowId> {
        let (row_id, stored) = {
            let mut inner = self.db.inner.write();
            let t = inner.table_mut(table)?;
            let id = t.insert(values)?;
            (id, t.get(id)?.to_vec())
        };
        self.db.republish(table);
        DbStats::bump(&self.db.stats.edits);
        self.record(
            Undo::Insert {
                table: table.to_string(),
                row_id,
            },
            LogRecord::Insert {
                table: table.to_string(),
                row_id,
                values: stored,
            },
        )?;
        Ok(row_id)
    }

    /// Fetch one row by id.
    pub fn get_row(&self, table: &str, row_id: RowId) -> DbResult<Vec<Value>> {
        let inner = self.db.inner.read();
        Ok(inner.table(table)?.get(row_id)?.to_vec())
    }

    /// Run a structured query.
    ///
    /// Paged tables are served from the published MVCC snapshot without
    /// taking the catalog lock, so reads never wait behind a writer; the
    /// memory backend reads under the shared catalog lock as before.
    pub fn query(&self, q: &Query) -> DbResult<QueryResult> {
        let span = hedc_obs::Span::child("metadb.query");
        let started = std::time::Instant::now();
        let snap = self.db.snapshot(&q.table);
        let result = match &snap {
            Some(s) => query::execute(&**s, q)?,
            None => {
                let inner = self.db.inner.read();
                let t = inner.table(&q.table)?;
                query::execute(t, q)?
            }
        };
        hedc_obs::global()
            .histogram("metadb.query")
            .record(started.elapsed());
        drop(span);
        let s = &self.db.stats;
        DbStats::bump(&s.queries);
        DbStats::add(&s.rows_scanned, result.stats.rows_scanned as u64);
        DbStats::add(&s.rows_returned, result.stats.rows_returned as u64);
        DbStats::add(&s.rows_sorted, result.stats.rows_sorted as u64);
        match result.stats.access {
            query::AccessPath::FullScan => DbStats::bump(&s.full_scans),
            query::AccessPath::Index { .. } | query::AccessPath::IndexMultiPoint { .. } => {
                DbStats::bump(&s.index_hits)
            }
        }
        Ok(result)
    }

    /// Update all rows matching `filter` (or every row when `None`),
    /// assigning each `(column, expression)` pair. Returns rows affected.
    pub fn update_where(
        &mut self,
        table: &str,
        sets: &[(String, Expr)],
        filter: Option<Expr>,
    ) -> DbResult<usize> {
        let updates: Vec<(RowId, Vec<Value>, Vec<Value>)> = {
            let mut inner = self.db.inner.write();
            let t = inner.table_mut(table)?;
            let schema = t.schema().clone();
            let set_cols: Vec<(usize, Expr)> = sets
                .iter()
                .map(|(c, e)| Ok((schema.require_column(c)?, e.clone().bind(&schema)?)))
                .collect::<DbResult<_>>()?;
            let ids = matching_ids(t, filter.as_ref())?;
            // Evaluate every row's new values before touching the table:
            // an eval or type error aborts with no effects at all, and the
            // apply becomes one batched statement — a single store
            // transaction on the paged backing instead of a commit per
            // row. `update_batch` is itself all-or-nothing, so a unique
            // violation mid-batch also leaves no partial effects.
            let mut batch: Vec<(RowId, Vec<Value>)> = Vec::with_capacity(ids.len());
            for id in ids {
                let old = t.get(id)?.to_vec();
                let mut new_row = old.clone();
                for (col, expr) in &set_cols {
                    new_row[*col] = expr.eval(&old)?;
                }
                batch.push((id, new_row));
            }
            let olds = t.update_batch(batch.clone())?;
            batch
                .into_iter()
                .zip(olds)
                .map(|((id, new_row), old)| (id, old, new_row))
                .collect()
        };
        self.db.republish(table);
        let n = updates.len();
        for (row_id, old, new_row) in updates {
            DbStats::bump(&self.db.stats.edits);
            self.record(
                Undo::Update {
                    table: table.to_string(),
                    row_id,
                    old,
                },
                LogRecord::Update {
                    table: table.to_string(),
                    row_id,
                    values: new_row,
                },
            )?;
        }
        Ok(n)
    }

    /// Delete all rows matching `filter` (or every row when `None`).
    pub fn delete_where(&mut self, table: &str, filter: Option<Expr>) -> DbResult<usize> {
        let deleted: Vec<(RowId, Vec<Value>)> = {
            let mut inner = self.db.inner.write();
            let t = inner.table_mut(table)?;
            let ids = matching_ids(t, filter.as_ref())?;
            let mut out = Vec::with_capacity(ids.len());
            for id in ids {
                let old = t.delete(id)?;
                out.push((id, old));
            }
            out
        };
        self.db.republish(table);
        let n = deleted.len();
        for (row_id, old) in deleted {
            DbStats::bump(&self.db.stats.edits);
            self.record(
                Undo::Delete {
                    table: table.to_string(),
                    row_id,
                    old,
                },
                LogRecord::Delete {
                    table: table.to_string(),
                    row_id,
                },
            )?;
        }
        Ok(n)
    }

    /// Parse and execute one SQL statement. Compile (parse) and execute time
    /// are tracked separately — the split the paper's §5.4 query pipeline
    /// reasons about.
    pub fn execute_sql(&mut self, sql_text: &str) -> DbResult<SqlOutput> {
        let obs = hedc_obs::global();
        let compile_started = std::time::Instant::now();
        let stmt = sql::parse(sql_text)?;
        obs.histogram("metadb.compile")
            .record(compile_started.elapsed());
        let exec_started = std::time::Instant::now();
        let out = self.execute_statement(stmt);
        obs.histogram("metadb.execute")
            .record(exec_started.elapsed());
        out
    }

    /// Execute an already-parsed statement.
    pub fn execute_statement(&mut self, stmt: Statement) -> DbResult<SqlOutput> {
        match stmt {
            Statement::CreateTable(schema) => {
                self.create_table(schema)?;
                Ok(SqlOutput::Done)
            }
            Statement::CreateIndex {
                table,
                name,
                columns,
                unique,
            } => {
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                self.create_index(&table, &name, &cols, unique)?;
                Ok(SqlOutput::Done)
            }
            Statement::Insert {
                table,
                columns,
                values,
            } => {
                let mut count = 0usize;
                for row in values {
                    let full = reorder_insert(&self.db.schema_of(&table)?, &columns, row)?;
                    self.insert(&table, full)?;
                    count += 1;
                }
                Ok(SqlOutput::Affected(count))
            }
            Statement::Select(q) => Ok(SqlOutput::Rows(self.query(&q)?)),
            Statement::Update {
                table,
                sets,
                filter,
            } => {
                let n = self.update_where(&table, &sets, filter)?;
                Ok(SqlOutput::Affected(n))
            }
            Statement::Delete { table, filter } => {
                let n = self.delete_where(&table, filter)?;
                Ok(SqlOutput::Affected(n))
            }
            Statement::Begin => {
                self.begin()?;
                Ok(SqlOutput::Done)
            }
            Statement::Commit => {
                self.commit()?;
                Ok(SqlOutput::Done)
            }
            Statement::Rollback => {
                self.rollback()?;
                Ok(SqlOutput::Done)
            }
        }
    }

    // ---- LOB access (ablation support, §4.2) ------------------------------

    /// Store a LOB; not transactional and not logged (ablation only).
    pub fn lob_put(&mut self, data: &[u8]) -> u64 {
        DbStats::add(&self.db.stats.lob_bytes_written, data.len() as u64);
        self.db.inner.write().lobs.put(data)
    }

    /// Read a whole LOB.
    pub fn lob_get(&self, id: u64) -> DbResult<Vec<u8>> {
        let data = self.db.inner.read().lobs.get(id)?;
        DbStats::add(&self.db.stats.lob_bytes_read, data.len() as u64);
        Ok(data)
    }

    /// Read a LOB byte range.
    pub fn lob_get_range(&self, id: u64, offset: usize, len: usize) -> DbResult<Vec<u8>> {
        let data = self.db.inner.read().lobs.get_range(id, offset, len)?;
        DbStats::add(&self.db.stats.lob_bytes_read, data.len() as u64);
        Ok(data)
    }

    /// Delete a LOB.
    pub fn lob_delete(&mut self, id: u64) -> DbResult<()> {
        self.db.inner.write().lobs.delete(id)
    }
}

/// Row ids matching a filter, using the planner's access-path choice.
fn matching_ids(t: &Table, filter: Option<&Expr>) -> DbResult<Vec<RowId>> {
    match filter {
        None => Ok(t.scan_ids()),
        Some(f) => {
            let bound = f.clone().bind(t.schema())?;
            let (candidates, _) = query::plan_candidates(t, &bound);
            let mut out = Vec::new();
            for id in candidates {
                if let Ok(row) = t.get(id) {
                    if bound.eval_bool(&row)? {
                        out.push(id);
                    }
                }
            }
            Ok(out)
        }
    }
}

/// Expand an `INSERT (cols) VALUES (...)` row to full schema arity, filling
/// omitted columns with NULL (defaults are applied by `check_row`).
fn reorder_insert(
    schema: &Schema,
    columns: &Option<Vec<String>>,
    values: Vec<Value>,
) -> DbResult<Vec<Value>> {
    match columns {
        None => Ok(values),
        Some(cols) => {
            if cols.len() != values.len() {
                return Err(DbError::ArityMismatch {
                    expected: cols.len(),
                    got: values.len(),
                });
            }
            let mut full = vec![Value::Null; schema.arity()];
            for (c, v) in cols.iter().zip(values) {
                let i = schema.require_column(c)?;
                full[i] = v;
            }
            Ok(full)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(
            "hle",
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("time_start", DataType::Timestamp).not_null(),
                ColumnDef::new("label", DataType::Text),
            ],
        )
        .primary_key(&["id"])
    }

    fn seeded() -> (Arc<Database>, Connection) {
        let db = Database::in_memory("test");
        let mut conn = db.connect();
        conn.create_table(schema()).unwrap();
        for i in 0..10i64 {
            conn.insert(
                "hle",
                vec![
                    Value::Int(i),
                    Value::Int(i * 100),
                    Value::Text(format!("e{i}")),
                ],
            )
            .unwrap();
        }
        (db, conn)
    }

    #[test]
    fn insert_query_roundtrip() {
        let (_db, conn) = seeded();
        let r = conn
            .query(&Query::table("hle").filter(Expr::eq("id", 3)))
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][2], Value::Text("e3".into()));
    }

    #[test]
    fn update_where_applies_expressions() {
        let (_db, mut conn) = seeded();
        let n = conn
            .update_where(
                "hle",
                &[(
                    "label".to_string(),
                    Expr::Literal(Value::Text("bulk".into())),
                )],
                Some(Expr::cmp("id", crate::expr::CmpOp::Lt, 3)),
            )
            .unwrap();
        assert_eq!(n, 3);
        let r = conn
            .query(&Query::table("hle").filter(Expr::eq("label", "bulk")))
            .unwrap();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn delete_where_and_counts() {
        let (db, mut conn) = seeded();
        let n = conn
            .delete_where("hle", Some(Expr::cmp("id", crate::expr::CmpOp::Ge, 5)))
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(db.row_count("hle").unwrap(), 5);
    }

    #[test]
    fn failed_update_statement_leaves_no_partial_effects() {
        let (db, mut conn) = seeded();
        // `SET id = 5` collides with the existing pk 5 on the second row
        // it touches; the first row's update must be compensated.
        let err = conn
            .update_where(
                "hle",
                &[("id".to_string(), Expr::Literal(Value::Int(5)))],
                Some(Expr::cmp("id", crate::expr::CmpOp::Lt, 3)),
            )
            .unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        // All original ids still present exactly once.
        for i in 0..10i64 {
            let r = conn
                .query(&Query::table("hle").filter(Expr::eq("id", i)))
                .unwrap();
            assert_eq!(r.rows.len(), 1, "id {i} intact");
        }
        let _ = db;
    }

    #[test]
    fn rollback_undoes_everything_in_reverse() {
        let (db, mut conn) = seeded();
        conn.begin().unwrap();
        conn.insert("hle", vec![Value::Int(100), Value::Int(1), Value::Null])
            .unwrap();
        conn.update_where(
            "hle",
            &[("label".to_string(), Expr::Literal(Value::Text("x".into())))],
            Some(Expr::eq("id", 1)),
        )
        .unwrap();
        conn.delete_where("hle", Some(Expr::eq("id", 2))).unwrap();
        assert_eq!(db.row_count("hle").unwrap(), 10);
        conn.rollback().unwrap();
        assert_eq!(db.row_count("hle").unwrap(), 10);
        let r = conn
            .query(&Query::table("hle").filter(Expr::eq("id", 1)))
            .unwrap();
        assert_eq!(r.rows[0][2], Value::Text("e1".into()));
        let r = conn
            .query(&Query::table("hle").filter(Expr::eq("id", 2)))
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        let r = conn
            .query(&Query::table("hle").filter(Expr::eq("id", 100)))
            .unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn commit_then_rollback_errors() {
        let (_db, mut conn) = seeded();
        conn.begin().unwrap();
        conn.commit().unwrap();
        assert!(conn.rollback().is_err());
        assert!(conn.commit().is_err());
    }

    #[test]
    fn nested_begin_rejected() {
        let (_db, mut conn) = seeded();
        conn.begin().unwrap();
        assert!(conn.begin().is_err());
    }

    #[test]
    fn stats_accumulate() {
        let (db, mut conn) = seeded();
        let before = db.stats();
        conn.query(&Query::table("hle").filter(Expr::eq("id", 1)))
            .unwrap();
        conn.insert("hle", vec![Value::Int(50), Value::Int(1), Value::Null])
            .unwrap();
        let d = db.stats().since(&before);
        assert_eq!(d.queries, 1);
        assert_eq!(d.edits, 1);
        assert_eq!(d.index_hits, 1);
    }

    #[test]
    fn wal_recovery_restores_state() {
        let mut path = std::env::temp_dir();
        path.push(format!("hedc-metadb-recover-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let db = Database::with_wal("d", &path).unwrap();
            let mut conn = db.connect();
            conn.create_table(schema()).unwrap();
            conn.create_index("hle", "hle_time", &["time_start"], false)
                .unwrap();
            for i in 0..5i64 {
                conn.insert("hle", vec![Value::Int(i), Value::Int(i), Value::Null])
                    .unwrap();
            }
            conn.delete_where("hle", Some(Expr::eq("id", 3))).unwrap();
            conn.update_where(
                "hle",
                &[("label".to_string(), Expr::Literal(Value::Text("r".into())))],
                Some(Expr::eq("id", 4)),
            )
            .unwrap();
            // Rolled-back txn must not survive recovery.
            conn.begin().unwrap();
            conn.insert("hle", vec![Value::Int(99), Value::Int(9), Value::Null])
                .unwrap();
            conn.rollback().unwrap();
        }
        let db = Database::with_wal("d", &path).unwrap();
        assert_eq!(db.row_count("hle").unwrap(), 4);
        let conn = db.connect();
        let r = conn
            .query(&Query::table("hle").filter(Expr::eq("id", 4)))
            .unwrap();
        assert_eq!(r.rows[0][2], Value::Text("r".into()));
        let r = conn
            .query(&Query::table("hle").filter(Expr::eq("id", 99)))
            .unwrap();
        assert!(r.rows.is_empty());
        // Recovered index is functional.
        let r = conn
            .query(&Query::table("hle").filter(Expr::between("time_start", 0, 2)))
            .unwrap();
        assert!(matches!(r.stats.access, query::AccessPath::Index { .. }));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn committed_txn_survives_recovery() {
        let mut path = std::env::temp_dir();
        path.push(format!("hedc-metadb-commit-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let db = Database::with_wal("d", &path).unwrap();
            let mut conn = db.connect();
            conn.create_table(schema()).unwrap();
            conn.begin().unwrap();
            conn.insert("hle", vec![Value::Int(1), Value::Int(1), Value::Null])
                .unwrap();
            conn.commit().unwrap();
        }
        let db = Database::with_wal("d", &path).unwrap();
        assert_eq!(db.row_count("hle").unwrap(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    fn paged_opts() -> DbOptions {
        DbOptions {
            storage: StorageConfig {
                backend: StorageBackend::Paged,
                page_size: 512,
                cache_pages: 64,
                store_path: None,
            },
            ..DbOptions::default()
        }
    }

    fn seeded_paged() -> (Arc<Database>, Connection) {
        let db = Database::open("test-paged", paged_opts()).unwrap();
        let mut conn = db.connect();
        conn.create_table(schema()).unwrap();
        for i in 0..10i64 {
            conn.insert(
                "hle",
                vec![
                    Value::Int(i),
                    Value::Int(i * 100),
                    Value::Text(format!("e{i}")),
                ],
            )
            .unwrap();
        }
        (db, conn)
    }

    /// The full statement battery behaves identically on both backends:
    /// same affected counts, same surviving rows, same rollback results.
    #[test]
    fn paged_statements_match_memory() {
        let (mem_db, mut mem) = seeded();
        let (pag_db, mut pag) = seeded_paged();
        let run = |conn: &mut Connection| -> Vec<String> {
            let mut log = Vec::new();
            let n = conn
                .update_where(
                    "hle",
                    &[("label".to_string(), Expr::Literal(Value::Text("u".into())))],
                    Some(Expr::cmp("id", crate::expr::CmpOp::Lt, 4)),
                )
                .unwrap();
            log.push(format!("update {n}"));
            let n = conn
                .delete_where("hle", Some(Expr::cmp("id", crate::expr::CmpOp::Ge, 7)))
                .unwrap();
            log.push(format!("delete {n}"));
            conn.begin().unwrap();
            conn.insert("hle", vec![Value::Int(50), Value::Int(1), Value::Null])
                .unwrap();
            conn.rollback().unwrap();
            let r = conn
                .query(&Query::table("hle").order_by("id", crate::query::OrderDir::Asc))
                .unwrap();
            for row in &r.rows {
                log.push(format!("{row:?}"));
            }
            log
        };
        assert_eq!(run(&mut mem), run(&mut pag));
        assert_eq!(
            mem_db.row_count("hle").unwrap(),
            pag_db.row_count("hle").unwrap()
        );
    }

    /// Reads on a paged table come from the published snapshot: a snapshot
    /// handle taken before a write keeps serving the old state, while new
    /// queries see the write immediately.
    #[test]
    fn paged_published_snapshot_semantics() {
        let (db, mut conn) = seeded_paged();
        let pinned = db.snapshot("hle").expect("paged table publishes");
        conn.insert("hle", vec![Value::Int(77), Value::Int(7), Value::Null])
            .unwrap();
        assert_eq!(pinned.len(), 10);
        assert_eq!(db.snapshot("hle").unwrap().len(), 11);
        let r = conn
            .query(&Query::table("hle").filter(Expr::eq("id", 77)))
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        // Memory backend never publishes.
        let (mdb, _mconn) = seeded();
        assert!(mdb.snapshot("hle").is_none());
    }

    /// A WAL written under the memory backend recovers byte-identically
    /// (same rows, same row ids) when reopened under the paged backend.
    #[test]
    fn paged_recovery_from_memory_backend_wal() {
        let mut path = std::env::temp_dir();
        path.push(format!("hedc-metadb-xbackend-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let db = Database::with_wal("d", &path).unwrap();
            let mut conn = db.connect();
            conn.create_table(schema()).unwrap();
            conn.create_index("hle", "hle_time", &["time_start"], false)
                .unwrap();
            for i in 0..20i64 {
                conn.insert(
                    "hle",
                    vec![
                        Value::Int(i),
                        Value::Int(i * 7),
                        Value::Text(format!("e{i}")),
                    ],
                )
                .unwrap();
            }
            conn.delete_where("hle", Some(Expr::eq("id", 5))).unwrap();
            conn.insert("hle", vec![Value::Int(100), Value::Int(3), Value::Null])
                .unwrap();
        }
        let db = Database::open(
            "d",
            DbOptions {
                wal_path: Some(path.clone()),
                ..paged_opts()
            },
        )
        .unwrap();
        assert_eq!(db.row_count("hle").unwrap(), 20);
        let conn = db.connect();
        // Row 100 reused slot 5 (LIFO free list) — identical on both backends.
        let r = conn
            .query(&Query::table("hle").filter(Expr::eq("id", 100)))
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        let r = conn
            .query(&Query::table("hle").filter(Expr::between("time_start", 0, 35)))
            .unwrap();
        assert!(matches!(r.stats.access, query::AccessPath::Index { .. }));
        // t = 0, 7, 14, 21, 28 plus t = 3 from row 100; t = 35 was deleted.
        assert_eq!(r.rows.len(), 6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lob_roundtrip_with_stats() {
        let db = Database::in_memory("lobs");
        let mut conn = db.connect();
        let id = conn.lob_put(&[1, 2, 3, 4]);
        assert_eq!(conn.lob_get(id).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(conn.lob_get_range(id, 1, 2).unwrap(), vec![2, 3]);
        let s = db.stats();
        assert_eq!(s.lob_bytes_written, 4);
        assert_eq!(s.lob_bytes_read, 6);
        conn.lob_delete(id).unwrap();
        assert!(conn.lob_get(id).is_err());
    }
}
