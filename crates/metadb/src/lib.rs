//! # hedc-metadb — the embedded metadata database
//!
//! HEDC's central design choice (§4.1 of the paper) is that the **metadata**
//! — tuples describing events, analyses, catalogs, users, archives — lives
//! in a relational database, while the **data** (raw telemetry, derived
//! images) lives in a file system reachable only *through* that metadata.
//! This crate is the relational side of that split: an embedded engine with
//! typed schemas, B-tree indexes, a planner that prefers indexed access
//! paths, transactions with a redo log, a small SQL dialect, and the split
//! connection pools the paper describes in §5.3.
//!
//! It deliberately implements the subset of a commercial DBMS that HEDC's
//! design actually exercises — indexed range queries over a few hundred
//! thousand tuples, count/aggregate queries, short transactions — rather
//! than a general-purpose SQL system.
//!
//! ## Quick tour
//!
//! ```
//! use hedc_metadb::{Database, Query, Expr, Value};
//!
//! let db = Database::in_memory("demo");
//! let mut conn = db.connect();
//! conn.execute_sql("CREATE TABLE hle (id INT NOT NULL, t0 TIMESTAMP, label TEXT, PRIMARY KEY (id))").unwrap();
//! conn.execute_sql("CREATE INDEX hle_t0 ON hle (t0)").unwrap();
//! conn.execute_sql("INSERT INTO hle VALUES (1, 1000, 'flare'), (2, 2000, 'grb')").unwrap();
//!
//! // Structured query objects (what the DM uses)...
//! let r = conn.query(&Query::table("hle").filter(Expr::between("t0", 500, 1500))).unwrap();
//! assert_eq!(r.rows.len(), 1);
//!
//! // ...and SQL text (what advanced users submit) share one executor.
//! let r = conn.execute_sql("SELECT label FROM hle WHERE id = 2").unwrap().rows();
//! assert_eq!(r.rows[0][0], Value::Text("grb".into()));
//! ```

#![warn(missing_docs)]

mod db;
mod error;
mod expr;
mod fingerprint;
mod index;
mod keycode;
mod lob;
mod matview;
mod paged;
mod pool;
mod query;
mod schema;
mod sql;
mod stats;
mod table;
pub mod tuning;
mod value;
mod wal;

pub use db::{Connection, Database, DbOptions, SqlOutput, StorageBackend, StorageConfig};
pub use error::{DbError, DbResult};
pub use expr::{like_match, ArithOp, CmpOp, ColumnRange, Expr};
pub use index::{Index, RowId};
pub use lob::{LobStore, DEFAULT_CHUNK};
pub use matview::MatViewManager;
pub use paged::TableSnapshot;
pub use pool::{ConnectionPool, PoolKind, PoolSet, PoolStats, PooledConnection};
pub use query::{AccessPath, AggFunc, ExecStats, OrderDir, Projection, Query, QueryResult};
pub use schema::{ColumnDef, Schema};
pub use sql::{parse, query_to_sql, Statement};
pub use stats::{DbStats, StatsSnapshot};
pub use table::{IndexRef, Table};
pub use value::{DataType, Value};
pub use wal::{read_committed, LogRecord, Wal, WalOptions};

/// Seed for randomized tests: honors `HEDC_TEST_SEED` (decimal or
/// `0x`-prefixed hex) so a failing run can be replayed exactly, and
/// falls back to a fixed constant so default runs are reproducible.
#[doc(hidden)]
pub fn test_seed() -> u64 {
    match std::env::var("HEDC_TEST_SEED") {
        Ok(s) => {
            let s = s.trim();
            if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16).expect("HEDC_TEST_SEED hex")
            } else {
                s.parse().expect("HEDC_TEST_SEED decimal")
            }
        }
        Err(_) => 0x0570_BEE7,
    }
}
