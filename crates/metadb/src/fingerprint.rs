//! Canonical query fingerprints for result caching.
//!
//! Two queries that must return the same rows should produce the same
//! fingerprint even when they were *built* differently: `a AND b` vs
//! `b AND a`, `x > 3` vs `3 < x`, `IN (2, 1)` vs `IN (1, 2)`, or a
//! projection listed in a different order. Kleene three-valued AND/OR are
//! commutative and associative, and comparison operands flip cleanly, so
//! the canonical form flattens And/Or chains and sorts their operand
//! encodings, normalizes `Gt`/`Ge` to flipped `Lt`/`Le`, sorts the
//! operands of the symmetric `Eq`/`Ne`, and sorts `IN`-list items.
//!
//! Anything that changes the result *set* — limit, offset, order-by,
//! aggregates, group-by, the table itself — is encoded order-sensitively.
//! The projection is sorted only for plain (non-aggregate) queries: column
//! order there affects output layout, not content, and the cache layer
//! re-projects a hit into the requested order. Aggregate labels stay in
//! declaration order because they *are* the output.
//!
//! Literals are rendered through [`Value::to_sql_literal`], which handles
//! every value — including non-finite floats that a JSON encoding would
//! reject.

use crate::expr::{CmpOp, Expr};
use crate::query::{OrderDir, Projection, Query};

impl Query {
    /// A canonical textual fingerprint of this query, suitable as a cache
    /// key: semantically equal queries (commuted filters, permuted select
    /// lists) fingerprint identically; queries that can return different
    /// data fingerprint differently.
    pub fn fingerprint(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("t=");
        out.push_str(&self.table.to_ascii_lowercase());
        out.push_str(";p=");
        match &self.projection {
            Projection::All => out.push('*'),
            Projection::Columns(cols) => {
                let mut cs: Vec<String> = cols.iter().map(|c| c.to_ascii_lowercase()).collect();
                // Sorting is sound only when the projection drives output
                // layout, not content; aggregate mode ignores it anyway,
                // but keep declaration order there for clarity.
                if self.aggregates.is_empty() {
                    cs.sort();
                }
                out.push_str(&cs.join(","));
            }
        }
        out.push_str(";f=");
        if let Some(f) = &self.filter {
            out.push_str(&canon(f));
        }
        out.push_str(";o=");
        for (col, dir) in &self.order_by {
            out.push_str(&col.to_ascii_lowercase());
            out.push(match dir {
                OrderDir::Asc => '+',
                OrderDir::Desc => '-',
            });
            out.push(',');
        }
        out.push_str(";l=");
        if let Some(l) = self.limit {
            out.push_str(&l.to_string());
        }
        out.push_str(";k=");
        if let Some(k) = self.offset {
            out.push_str(&k.to_string());
        }
        out.push_str(";a=");
        for a in &self.aggregates {
            out.push_str(&a.label());
            out.push(',');
        }
        out.push_str(";g=");
        for g in &self.group_by {
            out.push_str(&g.to_ascii_lowercase());
            out.push(',');
        }
        out
    }
}

/// Canonical encoding of one expression.
fn canon(e: &Expr) -> String {
    match e {
        Expr::Literal(v) => format!("lit:{}", v.to_sql_literal()),
        Expr::Name(n) => format!("col:{}", n.to_ascii_lowercase()),
        Expr::Col(i) => format!("col#{i}"),
        Expr::Cmp(op, a, b) => {
            // Normalize Gt/Ge to the flipped Lt/Le so `x > 3` and `3 < x`
            // meet in the middle.
            let (op, a, b) = match op {
                CmpOp::Gt => (CmpOp::Lt, canon(b), canon(a)),
                CmpOp::Ge => (CmpOp::Le, canon(b), canon(a)),
                other => (*other, canon(a), canon(b)),
            };
            match op {
                // Eq/Ne are symmetric: sort the operand encodings.
                CmpOp::Eq | CmpOp::Ne => {
                    let (x, y) = if a <= b { (a, b) } else { (b, a) };
                    format!("cmp[{}]({x},{y})", op.sql())
                }
                _ => format!("cmp[{}]({a},{b})", op.sql()),
            }
        }
        Expr::And(_, _) => {
            let mut parts = Vec::new();
            flatten(e, true, &mut parts);
            parts.sort();
            format!("and({})", parts.join(","))
        }
        Expr::Or(_, _) => {
            let mut parts = Vec::new();
            flatten(e, false, &mut parts);
            parts.sort();
            format!("or({})", parts.join(","))
        }
        Expr::Not(inner) => format!("not({})", canon(inner)),
        Expr::IsNull { expr, negated } => {
            format!("isnull[{negated}]({})", canon(expr))
        }
        Expr::Between { expr, lo, hi } => {
            format!("between({},{},{})", canon(expr), canon(lo), canon(hi))
        }
        Expr::InList { expr, list } => {
            // Sort and dedup: `IN (2, 1, 1)` selects the same rows as
            // `IN (1, 2)`, so they must share a cache key.
            let mut items: Vec<String> = list.iter().map(canon).collect();
            items.sort();
            items.dedup();
            format!("in({};{})", canon(expr), items.join(","))
        }
        Expr::Like { expr, pattern } => {
            format!("like({};'{}')", canon(expr), pattern.replace('\'', "''"))
        }
        Expr::Arith(op, a, b) => {
            format!("arith[{op:?}]({},{})", canon(a), canon(b))
        }
    }
}

/// Flatten a chain of the same connective (`And` when `conj`, else `Or`)
/// into canonical operand encodings.
fn flatten(e: &Expr, conj: bool, out: &mut Vec<String>) {
    match (e, conj) {
        (Expr::And(a, b), true) => {
            flatten(a, true, out);
            flatten(b, true, out);
        }
        (Expr::Or(a, b), false) => {
            flatten(a, false, out);
            flatten(b, false, out);
        }
        _ => out.push(canon(e)),
    }
}

#[cfg(test)]
mod tests {
    use crate::{AggFunc, Expr, Query};

    #[test]
    fn commuted_conjuncts_fingerprint_identically() {
        let a = Query::table("hle")
            .filter(Expr::eq("public", true))
            .filter(Expr::eq("owner", 7));
        let b = Query::table("hle")
            .filter(Expr::eq("owner", 7))
            .filter(Expr::eq("public", true));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn flipped_comparison_fingerprints_identically() {
        let a = Query::table("hle").filter(Expr::Cmp(
            crate::CmpOp::Gt,
            Box::new(Expr::Name("t".into())),
            Box::new(Expr::Literal(3.into())),
        ));
        let b = Query::table("hle").filter(Expr::Cmp(
            crate::CmpOp::Lt,
            Box::new(Expr::Literal(3.into())),
            Box::new(Expr::Name("t".into())),
        ));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn select_order_is_canonicalized_but_aggregates_are_not() {
        let a = Query::table("ana").select(&["kind", "id"]);
        let b = Query::table("ana").select(&["id", "kind"]);
        assert_eq!(a.fingerprint(), b.fingerprint());

        let s = Query::table("ana")
            .aggregate(AggFunc::CountStar)
            .aggregate(AggFunc::Max("id".into()));
        let t = Query::table("ana")
            .aggregate(AggFunc::Max("id".into()))
            .aggregate(AggFunc::CountStar);
        assert_ne!(s.fingerprint(), t.fingerprint());
    }

    #[test]
    fn limit_offset_and_table_discriminate() {
        let base = Query::table("hle").filter(Expr::eq("public", true));
        assert_ne!(base.fingerprint(), base.clone().limit(5).fingerprint());
        assert_ne!(base.fingerprint(), base.clone().offset(5).fingerprint());
        assert_ne!(
            base.fingerprint(),
            Query::table("ana")
                .filter(Expr::eq("public", true))
                .fingerprint()
        );
    }

    #[test]
    fn in_list_order_is_canonicalized() {
        let a = Query::table("hle").filter(Expr::InList {
            expr: Box::new(Expr::Name("id".into())),
            list: vec![Expr::Literal(2.into()), Expr::Literal(1.into())],
        });
        let b = Query::table("hle").filter(Expr::InList {
            expr: Box::new(Expr::Name("id".into())),
            list: vec![Expr::Literal(1.into()), Expr::Literal(2.into())],
        });
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn in_list_duplicates_collapse_but_extensions_discriminate() {
        let a = Query::table("hle").filter(Expr::in_list("id", [1i64, 2, 2, 1]));
        let b = Query::table("hle").filter(Expr::in_list("id", [2i64, 1]));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = Query::table("hle").filter(Expr::in_list("id", [1i64, 2, 3]));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
