//! Predicate and scalar expressions.
//!
//! The DM layer builds query *objects* rather than SQL strings (§5.4); those
//! objects compile down to these expressions. The SQL parser produces the
//! same representation, so both entry points share one executor.

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::value::Value;
use std::ops::Bound;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Arithmetic operators (numeric only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// An expression tree over one row.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column referenced by name; resolved by [`Expr::bind`].
    Name(String),
    /// A column resolved to its position in the row.
    Col(usize),
    /// Binary comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// `IS NULL` (negated = `IS NOT NULL`).
    IsNull { expr: Box<Expr>, negated: bool },
    /// `x BETWEEN lo AND hi` (inclusive both ends).
    Between {
        expr: Box<Expr>,
        lo: Box<Expr>,
        hi: Box<Expr>,
    },
    /// `x IN (a, b, c)`.
    InList { expr: Box<Expr>, list: Vec<Expr> },
    /// SQL `LIKE` with `%` and `_` wildcards.
    Like { expr: Box<Expr>, pattern: String },
    /// Numeric arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience: `column op literal`.
    pub fn cmp(col: impl Into<String>, op: CmpOp, v: impl Into<Value>) -> Expr {
        Expr::Cmp(
            op,
            Box::new(Expr::Name(col.into())),
            Box::new(Expr::Literal(v.into())),
        )
    }

    /// Convenience: `column = literal`.
    pub fn eq(col: impl Into<String>, v: impl Into<Value>) -> Expr {
        Expr::cmp(col, CmpOp::Eq, v)
    }

    /// Convenience: `column BETWEEN lo AND hi`.
    pub fn between(col: impl Into<String>, lo: impl Into<Value>, hi: impl Into<Value>) -> Expr {
        Expr::Between {
            expr: Box::new(Expr::Name(col.into())),
            lo: Box::new(Expr::Literal(lo.into())),
            hi: Box::new(Expr::Literal(hi.into())),
        }
    }

    /// Convenience: `column IN (v1, v2, ...)`.
    pub fn in_list<V: Into<Value>>(
        col: impl Into<String>,
        vals: impl IntoIterator<Item = V>,
    ) -> Expr {
        Expr::InList {
            expr: Box::new(Expr::Name(col.into())),
            list: vals.into_iter().map(|v| Expr::Literal(v.into())).collect(),
        }
    }

    /// Conjunction that consumes self.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// Disjunction that consumes self.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Resolve all `Name` nodes to `Col` positions against a schema.
    pub fn bind(self, schema: &Schema) -> DbResult<Expr> {
        Ok(match self {
            Expr::Name(n) => Expr::Col(schema.require_column(&n)?),
            Expr::Literal(v) => Expr::Literal(v),
            Expr::Col(i) => Expr::Col(i),
            Expr::Cmp(op, a, b) => {
                Expr::Cmp(op, Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Expr::And(a, b) => Expr::And(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Or(a, b) => Expr::Or(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Not(a) => Expr::Not(Box::new(a.bind(schema)?)),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.bind(schema)?),
                negated,
            },
            Expr::Between { expr, lo, hi } => Expr::Between {
                expr: Box::new(expr.bind(schema)?),
                lo: Box::new(lo.bind(schema)?),
                hi: Box::new(hi.bind(schema)?),
            },
            Expr::InList { expr, list } => Expr::InList {
                expr: Box::new(expr.bind(schema)?),
                list: list
                    .into_iter()
                    .map(|e| e.bind(schema))
                    .collect::<DbResult<_>>()?,
            },
            Expr::Like { expr, pattern } => Expr::Like {
                expr: Box::new(expr.bind(schema)?),
                pattern,
            },
            Expr::Arith(op, a, b) => {
                Expr::Arith(op, Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
        })
    }

    /// Evaluate to a value. `Name` nodes must have been bound first.
    pub fn eval(&self, row: &[Value]) -> DbResult<Value> {
        Ok(match self {
            Expr::Literal(v) => v.clone(),
            Expr::Name(n) => return Err(DbError::Txn(format!("unbound column reference `{n}`"))),
            Expr::Col(i) => row.get(*i).cloned().ok_or(DbError::NoSuchRow(*i as u64))?,
            Expr::Cmp(op, a, b) => {
                let (x, y) = (a.eval(row)?, b.eval(row)?);
                // SQL three-valued logic: a comparison with NULL is UNKNOWN
                // (represented as Value::Null), so that NOT over it stays
                // UNKNOWN instead of flipping to TRUE.
                if x.is_null() || y.is_null() {
                    Value::Null
                } else {
                    let r = match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    };
                    Value::Bool(r)
                }
            }
            // Kleene logic: FALSE dominates AND, TRUE dominates OR,
            // UNKNOWN propagates otherwise.
            Expr::And(a, b) => match (a.eval(row)?.as_bool_tvl()?, b.eval(row)?.as_bool_tvl()?) {
                (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            },
            Expr::Or(a, b) => match (a.eval(row)?.as_bool_tvl()?, b.eval(row)?.as_bool_tvl()?) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            },
            Expr::Not(a) => match a.eval(row)?.as_bool_tvl()? {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            },
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Value::Bool(v.is_null() != *negated)
            }
            Expr::Between { expr, lo, hi } => {
                let v = expr.eval(row)?;
                let (l, h) = (lo.eval(row)?, hi.eval(row)?);
                if v.is_null() || l.is_null() || h.is_null() {
                    Value::Null
                } else {
                    Value::Bool(v >= l && v <= h)
                }
            }
            Expr::InList { expr, list } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    Value::Null
                } else {
                    // SQL IN: TRUE on a match; UNKNOWN (not FALSE) when no
                    // match but the list contains NULL.
                    let mut saw_null = false;
                    let mut found = false;
                    for item in list {
                        let iv = item.eval(row)?;
                        if iv.is_null() {
                            saw_null = true;
                        } else if iv == v {
                            found = true;
                            break;
                        }
                    }
                    if found {
                        Value::Bool(true)
                    } else if saw_null {
                        Value::Null
                    } else {
                        Value::Bool(false)
                    }
                }
            }
            Expr::Like { expr, pattern } => {
                let v = expr.eval(row)?;
                match v {
                    Value::Text(s) => Value::Bool(like_match(pattern, &s)),
                    Value::Null => Value::Null,
                    other => {
                        return Err(DbError::TypeMismatch {
                            column: "<like>".into(),
                            expected: "TEXT",
                            got: other.type_name(),
                        })
                    }
                }
            }
            Expr::Arith(op, a, b) => {
                let (x, y) = (a.eval(row)?, b.eval(row)?);
                if x.is_null() || y.is_null() {
                    return Ok(Value::Null);
                }
                match (x.as_int(), y.as_int(), op) {
                    // Integer arithmetic when both sides are integral and
                    // division is exact-free (SQL integer division).
                    (Some(i), Some(j), ArithOp::Add) => Value::Int(i.wrapping_add(j)),
                    (Some(i), Some(j), ArithOp::Sub) => Value::Int(i.wrapping_sub(j)),
                    (Some(i), Some(j), ArithOp::Mul) => Value::Int(i.wrapping_mul(j)),
                    (Some(i), Some(j), ArithOp::Div) => {
                        if j == 0 {
                            Value::Null
                        } else {
                            Value::Int(i / j)
                        }
                    }
                    _ => {
                        let fx = x.as_float().ok_or_else(|| DbError::TypeMismatch {
                            column: "<arith>".into(),
                            expected: "numeric",
                            got: x.type_name(),
                        })?;
                        let fy = y.as_float().ok_or_else(|| DbError::TypeMismatch {
                            column: "<arith>".into(),
                            expected: "numeric",
                            got: y.type_name(),
                        })?;
                        match op {
                            ArithOp::Add => Value::Float(fx + fy),
                            ArithOp::Sub => Value::Float(fx - fy),
                            ArithOp::Mul => Value::Float(fx * fy),
                            ArithOp::Div => Value::Float(fx / fy),
                        }
                    }
                }
            }
        })
    }

    /// Evaluate as a boolean predicate. UNKNOWN (NULL) collapses to false
    /// — the SQL rule for WHERE.
    pub fn eval_bool(&self, row: &[Value]) -> DbResult<bool> {
        match self.eval(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(DbError::TypeMismatch {
                column: "<predicate>".into(),
                expected: "BOOL",
                got: other.type_name(),
            }),
        }
    }

    /// Collect the conjuncts of this expression (flattening nested ANDs).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::And(a, b) = e {
                walk(a, out);
                walk(b, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Extract a sargable range on a single column, if this (already bound)
    /// conjunct constrains exactly one column against literals. Used by the
    /// planner to pick an index range scan.
    pub fn column_range(&self) -> Option<ColumnRange> {
        match self {
            Expr::Cmp(op, a, b) => {
                let (col, lit, op) = match (&**a, &**b) {
                    (Expr::Col(c), Expr::Literal(v)) => (*c, v.clone(), *op),
                    (Expr::Literal(v), Expr::Col(c)) => (*c, v.clone(), flip(*op)),
                    _ => return None,
                };
                let r = match op {
                    CmpOp::Eq => ColumnRange {
                        col,
                        low: Bound::Included(lit.clone()),
                        high: Bound::Included(lit),
                    },
                    CmpOp::Lt => ColumnRange {
                        col,
                        low: Bound::Unbounded,
                        high: Bound::Excluded(lit),
                    },
                    CmpOp::Le => ColumnRange {
                        col,
                        low: Bound::Unbounded,
                        high: Bound::Included(lit),
                    },
                    CmpOp::Gt => ColumnRange {
                        col,
                        low: Bound::Excluded(lit),
                        high: Bound::Unbounded,
                    },
                    CmpOp::Ge => ColumnRange {
                        col,
                        low: Bound::Included(lit),
                        high: Bound::Unbounded,
                    },
                    CmpOp::Ne => return None,
                };
                Some(r)
            }
            Expr::Between { expr, lo, hi } => match (&**expr, &**lo, &**hi) {
                (Expr::Col(c), Expr::Literal(l), Expr::Literal(h)) => Some(ColumnRange {
                    col: *c,
                    low: Bound::Included(l.clone()),
                    high: Bound::Included(h.clone()),
                }),
                _ => None,
            },
            _ => None,
        }
    }

    /// Extract the distinct probe points of a bound `col IN (literals)`
    /// conjunct, for the planner's multi-point index access path. NULL
    /// items are skipped: a non-null key never equals NULL, and the
    /// residual filter re-applies the full predicate (including its
    /// three-valued NULL semantics) to every candidate row anyway.
    pub fn column_in_points(&self) -> Option<(usize, Vec<Value>)> {
        let Expr::InList { expr, list } = self else {
            return None;
        };
        let Expr::Col(col) = &**expr else {
            return None;
        };
        let mut points = Vec::with_capacity(list.len());
        for item in list {
            match item {
                Expr::Literal(v) if v.is_null() => continue,
                Expr::Literal(v) => points.push(v.clone()),
                _ => return None,
            }
        }
        points.sort();
        points.dedup();
        Some((*col, points))
    }

    /// Render to SQL text. Bound columns require the schema to print names.
    pub fn to_sql(&self, schema: &Schema) -> String {
        match self {
            Expr::Literal(v) => v.to_sql_literal(),
            Expr::Name(n) => n.clone(),
            Expr::Col(i) => schema.columns[*i].name.clone(),
            Expr::Cmp(op, a, b) => {
                format!("{} {} {}", a.to_sql(schema), op.sql(), b.to_sql(schema))
            }
            Expr::And(a, b) => format!("({} AND {})", a.to_sql(schema), b.to_sql(schema)),
            Expr::Or(a, b) => format!("({} OR {})", a.to_sql(schema), b.to_sql(schema)),
            Expr::Not(a) => format!("NOT ({})", a.to_sql(schema)),
            Expr::IsNull { expr, negated } => format!(
                "{} IS {}NULL",
                expr.to_sql(schema),
                if *negated { "NOT " } else { "" }
            ),
            Expr::Between { expr, lo, hi } => format!(
                "{} BETWEEN {} AND {}",
                expr.to_sql(schema),
                lo.to_sql(schema),
                hi.to_sql(schema)
            ),
            Expr::InList { expr, list } => {
                let items: Vec<String> = list.iter().map(|e| e.to_sql(schema)).collect();
                format!("{} IN ({})", expr.to_sql(schema), items.join(", "))
            }
            Expr::Like { expr, pattern } => format!(
                "{} LIKE '{}'",
                expr.to_sql(schema),
                pattern.replace('\'', "''")
            ),
            Expr::Arith(op, a, b) => {
                let sym = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                };
                format!("({} {} {})", a.to_sql(schema), sym, b.to_sql(schema))
            }
        }
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

/// A sargable range on one column, consumable by an index range scan.
#[derive(Debug, Clone)]
pub struct ColumnRange {
    /// Column position.
    pub col: usize,
    /// Lower bound.
    pub low: Bound<Value>,
    /// Upper bound.
    pub high: Bound<Value>,
}

/// SQL `LIKE` matcher: `%` matches any run, `_` matches one char.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // Iterative two-pointer algorithm with backtracking to the last `%`.
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("flux", DataType::Float),
            ],
        )
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Int(7),
            Value::Text("flare".into()),
            Value::Float(2.5),
        ]
    }

    #[test]
    fn bind_and_eval_comparison() {
        let e = Expr::cmp("id", CmpOp::Ge, 5).bind(&schema()).unwrap();
        assert!(e.eval_bool(&row()).unwrap());
        let e = Expr::cmp("id", CmpOp::Lt, 5).bind(&schema()).unwrap();
        assert!(!e.eval_bool(&row()).unwrap());
    }

    #[test]
    fn bind_unknown_column_errors() {
        let err = Expr::eq("missing", 1).bind(&schema()).unwrap_err();
        assert!(matches!(err, DbError::NoSuchColumn { .. }));
    }

    #[test]
    fn null_comparisons_are_false() {
        let s = schema();
        let e = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Name("name".into())),
            Box::new(Expr::Literal(Value::Null)),
        )
        .bind(&s)
        .unwrap();
        assert!(!e.eval_bool(&row()).unwrap());
    }

    #[test]
    fn three_valued_logic_with_null() {
        let s = schema();
        let row_null = vec![Value::Int(1), Value::Null, Value::Float(2.0)];
        // NOT (name = 'x') over NULL name stays UNKNOWN -> filter false.
        let e = Expr::Not(Box::new(Expr::eq("name", "x"))).bind(&s).unwrap();
        assert!(!e.eval_bool(&row_null).unwrap());
        assert_eq!(e.eval(&row_null).unwrap(), Value::Null);
        // NOT BETWEEN over NULL is also UNKNOWN.
        let e = Expr::Not(Box::new(Expr::between("name", "a", "z")))
            .bind(&s)
            .unwrap();
        assert!(!e.eval_bool(&row_null).unwrap());
        // Kleene: FALSE AND UNKNOWN = FALSE; TRUE OR UNKNOWN = TRUE.
        let e = Expr::eq("id", 99)
            .and(Expr::eq("name", "x"))
            .bind(&s)
            .unwrap();
        assert_eq!(e.eval(&row_null).unwrap(), Value::Bool(false));
        let e = Expr::eq("id", 1)
            .or(Expr::eq("name", "x"))
            .bind(&s)
            .unwrap();
        assert_eq!(e.eval(&row_null).unwrap(), Value::Bool(true));
        // x IN (1, NULL) with no match is UNKNOWN, not FALSE.
        let e = Expr::InList {
            expr: Box::new(Expr::Name("id".into())),
            list: vec![Expr::Literal(Value::Int(99)), Expr::Literal(Value::Null)],
        }
        .bind(&s)
        .unwrap();
        assert_eq!(e.eval(&row_null).unwrap(), Value::Null);
    }

    #[test]
    fn between_and_in_list() {
        let s = schema();
        let e = Expr::between("flux", 1.0, 3.0).bind(&s).unwrap();
        assert!(e.eval_bool(&row()).unwrap());
        let e = Expr::InList {
            expr: Box::new(Expr::Name("id".into())),
            list: vec![Expr::Literal(Value::Int(3)), Expr::Literal(Value::Int(7))],
        }
        .bind(&s)
        .unwrap();
        assert!(e.eval_bool(&row()).unwrap());
    }

    #[test]
    fn like_wildcards() {
        assert!(like_match("fl%", "flare"));
        assert!(like_match("%are", "flare"));
        assert!(like_match("f_are", "flare"));
        assert!(like_match("%a%", "flare"));
        assert!(!like_match("f_are", "fare"));
        assert!(like_match("%", ""));
        assert!(!like_match("_", ""));
        assert!(like_match("a%b%c", "axxbyyc"));
        assert!(!like_match("a%b%c", "axxbyy"));
    }

    #[test]
    fn arithmetic_int_and_float() {
        let s = schema();
        let e = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::Name("id".into())),
            Box::new(Expr::Literal(Value::Int(3))),
        )
        .bind(&s)
        .unwrap();
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(10));
        let e = Expr::Arith(
            ArithOp::Mul,
            Box::new(Expr::Name("flux".into())),
            Box::new(Expr::Literal(Value::Int(2))),
        )
        .bind(&s)
        .unwrap();
        assert_eq!(e.eval(&row()).unwrap(), Value::Float(5.0));
    }

    #[test]
    fn division_by_zero_is_null() {
        let e = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::Literal(Value::Int(5))),
            Box::new(Expr::Literal(Value::Int(0))),
        );
        assert_eq!(e.eval(&[]).unwrap(), Value::Null);
    }

    #[test]
    fn conjunct_flattening_and_ranges() {
        let s = schema();
        let e = Expr::cmp("id", CmpOp::Ge, 5)
            .and(Expr::cmp("id", CmpOp::Le, 10).and(Expr::eq("name", "flare")))
            .bind(&s)
            .unwrap();
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
        let ranges: Vec<_> = parts.iter().filter_map(|c| c.column_range()).collect();
        assert_eq!(ranges.len(), 3);
        assert_eq!(ranges[0].col, 0);
    }

    #[test]
    fn flipped_literal_comparison_ranges() {
        let s = schema();
        // `5 < id` is the same range as `id > 5`.
        let e = Expr::Cmp(
            CmpOp::Lt,
            Box::new(Expr::Literal(Value::Int(5))),
            Box::new(Expr::Name("id".into())),
        )
        .bind(&s)
        .unwrap();
        let r = e.column_range().unwrap();
        assert!(matches!(r.low, Bound::Excluded(Value::Int(5))));
        assert!(matches!(r.high, Bound::Unbounded));
    }

    #[test]
    fn to_sql_roundtrips_shape() {
        let s = schema();
        let e = Expr::cmp("id", CmpOp::Ge, 5)
            .and(Expr::Like {
                expr: Box::new(Expr::Name("name".into())),
                pattern: "fl%".into(),
            })
            .bind(&s)
            .unwrap();
        assert_eq!(e.to_sql(&s), "(id >= 5 AND name LIKE 'fl%')");
    }
}
