//! Query specification, planning, and execution.
//!
//! The paper's DM builds queries as structured objects ("Java collection
//! objects", §5.4) which are "parsed, analyzed, verified and transformed into
//! regular SQL queries". [`Query`] is that structured object; the SQL parser
//! also lowers `SELECT` text into it, so both paths share this executor.

#[cfg(test)]
use crate::error::DbError;
use crate::error::DbResult;
use crate::expr::Expr;
use crate::index::RowId;
use crate::table::Table;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::ops::Bound;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum OrderDir {
    /// Ascending (NULLs first, per the `Value` total order).
    Asc,
    /// Descending.
    Desc,
}

/// Aggregate functions.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(col)` — non-null values.
    Count(String),
    /// `SUM(col)`
    Sum(String),
    /// `AVG(col)`
    Avg(String),
    /// `MIN(col)`
    Min(String),
    /// `MAX(col)`
    Max(String),
}

impl AggFunc {
    fn column(&self) -> Option<&str> {
        match self {
            AggFunc::CountStar => None,
            AggFunc::Count(c)
            | AggFunc::Sum(c)
            | AggFunc::Avg(c)
            | AggFunc::Min(c)
            | AggFunc::Max(c) => Some(c),
        }
    }

    /// Result column label, e.g. `COUNT(*)` or `SUM(flux)`.
    pub fn label(&self) -> String {
        match self {
            AggFunc::CountStar => "COUNT(*)".to_string(),
            AggFunc::Count(c) => format!("COUNT({c})"),
            AggFunc::Sum(c) => format!("SUM({c})"),
            AggFunc::Avg(c) => format!("AVG({c})"),
            AggFunc::Min(c) => format!("MIN({c})"),
            AggFunc::Max(c) => format!("MAX({c})"),
        }
    }
}

/// Column projection.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub enum Projection {
    /// `SELECT *`
    #[default]
    All,
    /// Named columns, in output order.
    Columns(Vec<String>),
}

/// A structured query over one table.
///
/// Serializes with serde so it can travel between DM nodes over the
/// `hedc-net` wire protocol (§5.4 call redirection) and be dumped into
/// `/hedc/stats.json`-style diagnostics.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Query {
    /// Target table.
    pub table: String,
    /// Output columns (ignored when `aggregates` is non-empty).
    pub projection: Projection,
    /// Optional filter predicate.
    pub filter: Option<Expr>,
    /// Sort specification applied before limit/offset.
    pub order_by: Vec<(String, OrderDir)>,
    /// Maximum number of result rows.
    pub limit: Option<usize>,
    /// Number of result rows to skip.
    pub offset: Option<usize>,
    /// Aggregate outputs; non-empty switches to aggregate mode.
    pub aggregates: Vec<AggFunc>,
    /// Group-by columns (aggregate mode only).
    pub group_by: Vec<String>,
}

impl Query {
    /// Start a query on a table.
    pub fn table(name: impl Into<String>) -> Self {
        Query {
            table: name.into(),
            ..Query::default()
        }
    }

    /// Project specific columns.
    pub fn select(mut self, cols: &[&str]) -> Self {
        self.projection = Projection::Columns(cols.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Add a filter, AND-ing with any existing filter.
    pub fn filter(mut self, e: Expr) -> Self {
        self.filter = Some(match self.filter.take() {
            Some(prev) => prev.and(e),
            None => e,
        });
        self
    }

    /// Add a sort key.
    pub fn order_by(mut self, col: impl Into<String>, dir: OrderDir) -> Self {
        self.order_by.push((col.into(), dir));
        self
    }

    /// Cap the result size.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Skip leading rows.
    pub fn offset(mut self, n: usize) -> Self {
        self.offset = Some(n);
        self
    }

    /// Add an aggregate output.
    pub fn aggregate(mut self, f: AggFunc) -> Self {
        self.aggregates.push(f);
        self
    }

    /// Group by a column.
    pub fn group_by(mut self, col: impl Into<String>) -> Self {
        self.group_by.push(col.into());
        self
    }
}

/// How the executor located candidate rows — reported so the evaluation can
/// verify "all database queries are performed on indexed fields" (§7.1).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AccessPath {
    /// Whole-heap scan.
    FullScan,
    /// Index range or point scan.
    Index {
        /// Index name used.
        name: String,
        /// Whether the probe was a point (equality) lookup.
        point: bool,
    },
}

/// Execution statistics for one query.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ExecStats {
    /// Rows fetched from the heap and tested.
    pub rows_scanned: usize,
    /// Rows returned.
    pub rows_returned: usize,
    /// Access path chosen by the planner.
    pub access: AccessPath,
}

/// A query result: column labels plus rows.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct QueryResult {
    /// Output column labels.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Executor statistics.
    pub stats: ExecStats,
}

impl QueryResult {
    /// First row, first column, as an integer (handy for COUNT queries).
    pub fn scalar_int(&self) -> Option<i64> {
        self.rows
            .first()
            .and_then(|r| r.first())
            .and_then(Value::as_int)
    }

    /// Allocated byte size of the result set: the struct itself, column
    /// labels (header + heap capacity), and every row's `Vec` header,
    /// spare capacity, and value footprints. This is the accounting unit
    /// for the result cache, so it must charge for *capacity*, not just
    /// initialized length — the old `Value::size_bytes` sum under-counted
    /// string capacity and ignored per-row overhead entirely.
    pub fn size_bytes(&self) -> usize {
        let header = std::mem::size_of::<QueryResult>();
        let columns: usize = self
            .columns
            .iter()
            .map(|c| std::mem::size_of::<String>() + c.capacity())
            .sum();
        let rows: usize = self
            .rows
            .iter()
            .map(|r| {
                std::mem::size_of::<Vec<Value>>() + r.capacity() * std::mem::size_of::<Value>()
                    - r.len() * std::mem::size_of::<Value>()
                    + r.iter().map(Value::alloc_bytes).sum::<usize>()
            })
            .sum();
        let access = match &self.stats.access {
            AccessPath::Index { name, .. } => name.capacity(),
            AccessPath::FullScan => 0,
        };
        header + columns + rows + access
    }
}

/// Execute a query against a table. This is the single scan/filter/sort/
/// aggregate pipeline used by SQL `SELECT`, DM query objects, and internal
/// maintenance scans.
pub fn execute(table: &Table, q: &Query) -> DbResult<QueryResult> {
    let schema = table.schema();
    let filter = match &q.filter {
        Some(f) => Some(f.clone().bind(schema)?),
        None => None,
    };

    // --- plan: choose an access path --------------------------------------
    let (candidates, access): (Vec<RowId>, AccessPath) = match &filter {
        Some(f) => plan_candidates(table, f),
        None => (
            table.scan().map(|(id, _)| id).collect(),
            AccessPath::FullScan,
        ),
    };

    // --- scan + filter ------------------------------------------------------
    let mut rows_scanned = 0usize;
    let mut matched: Vec<(RowId, &[Value])> = Vec::new();
    for id in candidates {
        let row = match table.get(id) {
            Ok(r) => r,
            Err(_) => continue, // deleted concurrently within this txn view
        };
        rows_scanned += 1;
        if let Some(f) = &filter {
            if !f.eval_bool(row)? {
                continue;
            }
        }
        matched.push((id, row));
    }

    // --- aggregate mode -----------------------------------------------------
    if !q.aggregates.is_empty() {
        return aggregate(schema, q, matched, rows_scanned, access);
    }

    // --- sort ----------------------------------------------------------------
    if !q.order_by.is_empty() {
        let keys: Vec<(usize, OrderDir)> = q
            .order_by
            .iter()
            .map(|(c, d)| Ok((schema.require_column(c)?, *d)))
            .collect::<DbResult<_>>()?;
        matched.sort_by(|(_, a), (_, b)| {
            for &(col, dir) in &keys {
                let ord = a[col].cmp(&b[col]);
                let ord = if dir == OrderDir::Desc {
                    ord.reverse()
                } else {
                    ord
                };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    // --- offset / limit -------------------------------------------------------
    let offset = q.offset.unwrap_or(0);
    let limit = q.limit.unwrap_or(usize::MAX);
    let window = matched.into_iter().skip(offset).take(limit);

    // --- project ---------------------------------------------------------------
    let (labels, cols): (Vec<String>, Option<Vec<usize>>) = match &q.projection {
        Projection::All => (
            schema.columns.iter().map(|c| c.name.clone()).collect(),
            None,
        ),
        Projection::Columns(names) => {
            let idx = names
                .iter()
                .map(|n| schema.require_column(n))
                .collect::<DbResult<Vec<_>>>()?;
            (names.clone(), Some(idx))
        }
    };
    let rows: Vec<Vec<Value>> = window
        .map(|(_, row)| match &cols {
            None => row.to_vec(),
            Some(idx) => idx.iter().map(|&i| row[i].clone()).collect(),
        })
        .collect();

    let rows_returned = rows.len();
    Ok(QueryResult {
        columns: labels,
        rows,
        stats: ExecStats {
            rows_scanned,
            rows_returned,
            access,
        },
    })
}

/// Choose candidate row ids for a bound filter: the most selective sargable
/// conjunct that has an index on its column wins; otherwise full scan.
pub(crate) fn plan_candidates(table: &Table, filter: &Expr) -> (Vec<RowId>, AccessPath) {
    let mut best: Option<(Vec<RowId>, String, bool)> = None;
    for conj in filter.conjuncts() {
        let Some(range) = conj.column_range() else {
            continue;
        };
        let Some(ix) = table.index_on(range.col) else {
            continue;
        };
        let point = matches!(
            (&range.low, &range.high),
            (Bound::Included(a), Bound::Included(b)) if a == b
        );
        let ids = ix.range(&[], as_ref_bound(&range.low), as_ref_bound(&range.high));
        let better = match &best {
            None => true,
            Some((cur, _, _)) => ids.len() < cur.len(),
        };
        if better {
            best = Some((ids, ix.name.clone(), point));
        }
    }
    match best {
        Some((ids, name, point)) => (ids, AccessPath::Index { name, point }),
        None => (
            table.scan().map(|(id, _)| id).collect(),
            AccessPath::FullScan,
        ),
    }
}

fn as_ref_bound(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Aggregate accumulator.
#[derive(Debug, Clone)]
struct Acc {
    count: i64,
    sum: f64,
    sum_is_int: bool,
    isum: i64,
    min: Option<Value>,
    max: Option<Value>,
}

impl Acc {
    fn new() -> Self {
        Acc {
            count: 0,
            sum: 0.0,
            sum_is_int: true,
            isum: 0,
            min: None,
            max: None,
        }
    }

    fn push(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(f) = v.as_float() {
            self.sum += f;
            match v.as_int() {
                Some(i) if self.sum_is_int => self.isum = self.isum.wrapping_add(i),
                _ => self.sum_is_int = false,
            }
        }
        if self.min.as_ref().is_none_or(|m| v < m) {
            self.min = Some(v.clone());
        }
        if self.max.as_ref().is_none_or(|m| v > m) {
            self.max = Some(v.clone());
        }
    }
}

fn aggregate(
    schema: &crate::schema::Schema,
    q: &Query,
    matched: Vec<(RowId, &[Value])>,
    rows_scanned: usize,
    access: AccessPath,
) -> DbResult<QueryResult> {
    // Resolve aggregate input columns.
    let agg_cols: Vec<Option<usize>> = q
        .aggregates
        .iter()
        .map(|a| match a.column() {
            Some(c) => schema.require_column(c).map(Some),
            None => Ok(None),
        })
        .collect::<DbResult<_>>()?;
    let group_cols: Vec<usize> = q
        .group_by
        .iter()
        .map(|c| schema.require_column(c))
        .collect::<DbResult<_>>()?;

    // Group rows (a single implicit group when group_by is empty).
    let mut groups: HashMap<Vec<Value>, (i64, Vec<Acc>)> = HashMap::new();
    let mut group_order: Vec<Vec<Value>> = Vec::new();
    for (_, row) in &matched {
        let key: Vec<Value> = group_cols.iter().map(|&c| row[c].clone()).collect();
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            group_order.push(key);
            (0, vec![Acc::new(); q.aggregates.len()])
        });
        entry.0 += 1;
        for (acc, col) in entry.1.iter_mut().zip(&agg_cols) {
            if let Some(c) = col {
                acc.push(&row[*c]);
            }
        }
    }
    // COUNT(*) over an empty, ungrouped input is still one row of zeroes.
    if groups.is_empty() && group_cols.is_empty() {
        group_order.push(Vec::new());
        groups.insert(Vec::new(), (0, vec![Acc::new(); q.aggregates.len()]));
    }

    let mut labels: Vec<String> = q.group_by.clone();
    labels.extend(q.aggregates.iter().map(AggFunc::label));

    let mut rows = Vec::with_capacity(group_order.len());
    for key in group_order {
        let (star_count, accs) = &groups[&key];
        let mut row = key.clone();
        for (agg, acc) in q.aggregates.iter().zip(accs) {
            let v = match agg {
                AggFunc::CountStar => Value::Int(*star_count),
                AggFunc::Count(_) => Value::Int(acc.count),
                AggFunc::Sum(_) => {
                    if acc.count == 0 {
                        Value::Null
                    } else if acc.sum_is_int {
                        Value::Int(acc.isum)
                    } else {
                        Value::Float(acc.sum)
                    }
                }
                AggFunc::Avg(_) => {
                    if acc.count == 0 {
                        Value::Null
                    } else {
                        Value::Float(acc.sum / acc.count as f64)
                    }
                }
                AggFunc::Min(_) => acc.min.clone().unwrap_or(Value::Null),
                AggFunc::Max(_) => acc.max.clone().unwrap_or(Value::Null),
            };
            row.push(v);
        }
        rows.push(row);
    }

    // Deterministic output order for grouped results.
    if !group_cols.is_empty() {
        let n = group_cols.len();
        rows.sort_by(|a, b| a[..n].cmp(&b[..n]));
    }

    // LIMIT/OFFSET apply to aggregate output too (grouped rows are already
    // ordered by their group keys).
    let offset = q.offset.unwrap_or(0);
    if offset > 0 {
        rows.drain(..offset.min(rows.len()));
    }
    if let Some(limit) = q.limit {
        rows.truncate(limit);
    }

    let rows_returned = rows.len();
    Ok(QueryResult {
        columns: labels,
        rows,
        stats: ExecStats {
            rows_scanned,
            rows_returned,
            access,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::DataType;

    fn table() -> Table {
        let mut t = Table::new(
            Schema::new(
                "ana",
                vec![
                    ColumnDef::new("id", DataType::Int).not_null(),
                    ColumnDef::new("hle_id", DataType::Int).not_null(),
                    ColumnDef::new("kind", DataType::Text).not_null(),
                    ColumnDef::new("dur", DataType::Float),
                ],
            )
            .primary_key(&["id"]),
        );
        t.create_index("ana_hle", &["hle_id"], false).unwrap();
        let kinds = ["image", "lightcurve", "spectrum"];
        for i in 0..30i64 {
            t.insert(vec![
                Value::Int(i),
                Value::Int(i / 3),
                Value::Text(kinds[(i % 3) as usize].into()),
                Value::Float(i as f64 * 0.5),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn point_lookup_uses_pk_index() {
        let t = table();
        let q = Query::table("ana").filter(Expr::eq("id", 7));
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(
            r.stats.access,
            AccessPath::Index {
                name: "ana_pk".into(),
                point: true
            }
        );
        assert_eq!(r.stats.rows_scanned, 1);
    }

    #[test]
    fn range_scan_uses_secondary_index() {
        let t = table();
        let q = Query::table("ana").filter(Expr::between("hle_id", 2, 4));
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows.len(), 9);
        assert!(matches!(
            r.stats.access,
            AccessPath::Index { point: false, .. }
        ));
    }

    #[test]
    fn unindexed_predicate_full_scans() {
        let t = table();
        let q = Query::table("ana").filter(Expr::eq("kind", "image"));
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows.len(), 10);
        assert_eq!(r.stats.access, AccessPath::FullScan);
        assert_eq!(r.stats.rows_scanned, 30);
    }

    #[test]
    fn residual_filter_applied_after_index() {
        let t = table();
        let q = Query::table("ana").filter(Expr::eq("hle_id", 2).and(Expr::eq("kind", "image")));
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert!(matches!(r.stats.access, AccessPath::Index { .. }));
        assert_eq!(r.stats.rows_scanned, 3); // only hle_id=2 candidates touched
    }

    #[test]
    fn projection_order_and_limit() {
        let t = table();
        let q = Query::table("ana")
            .select(&["kind", "id"])
            .order_by("id", OrderDir::Desc)
            .limit(3)
            .offset(1);
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.columns, vec!["kind", "id"]);
        let ids: Vec<i64> = r.rows.iter().map(|r| r[1].as_int().unwrap()).collect();
        assert_eq!(ids, vec![28, 27, 26]);
    }

    #[test]
    fn count_star_and_filtered_count() {
        let t = table();
        let q = Query::table("ana").aggregate(AggFunc::CountStar);
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.scalar_int(), Some(30));

        let q = Query::table("ana")
            .filter(Expr::cmp("id", CmpOp::Lt, 10))
            .aggregate(AggFunc::CountStar);
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.scalar_int(), Some(10));
    }

    #[test]
    fn aggregates_sum_avg_min_max() {
        let t = table();
        let q = Query::table("ana")
            .aggregate(AggFunc::Sum("id".into()))
            .aggregate(AggFunc::Avg("dur".into()))
            .aggregate(AggFunc::Min("dur".into()))
            .aggregate(AggFunc::Max("dur".into()));
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows[0][0], Value::Int((0..30).sum::<i64>()));
        let avg = r.rows[0][1].as_float().unwrap();
        assert!((avg - 7.25).abs() < 1e-9);
        assert_eq!(r.rows[0][2], Value::Float(0.0));
        assert_eq!(r.rows[0][3], Value::Float(14.5));
    }

    #[test]
    fn group_by_kind() {
        let t = table();
        let q = Query::table("ana")
            .group_by("kind")
            .aggregate(AggFunc::CountStar);
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.columns, vec!["kind", "COUNT(*)"]);
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert_eq!(row[1], Value::Int(10));
        }
        // Deterministic sorted group order.
        assert_eq!(r.rows[0][0], Value::Text("image".into()));
    }

    #[test]
    fn empty_aggregate_returns_zero_row() {
        let t = table();
        let q = Query::table("ana")
            .filter(Expr::eq("id", 9999))
            .aggregate(AggFunc::CountStar)
            .aggregate(AggFunc::Sum("dur".into()));
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert_eq!(r.rows[0][1], Value::Null);
    }

    #[test]
    fn aggregate_respects_limit_and_offset() {
        let t = table();
        let q = Query::table("ana")
            .group_by("kind")
            .aggregate(AggFunc::CountStar)
            .limit(2)
            .offset(1);
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows.len(), 2);
        // Sorted group order is image < lightcurve < spectrum; offset 1
        // drops "image".
        assert_eq!(r.rows[0][0], Value::Text("lightcurve".into()));
    }

    #[test]
    fn unknown_projection_column_errors() {
        let t = table();
        let q = Query::table("ana").select(&["nope"]);
        assert!(matches!(
            execute(&t, &q).unwrap_err(),
            DbError::NoSuchColumn { .. }
        ));
    }

    /// Pin the cache-accounting arithmetic: `size_bytes` charges the
    /// struct header, column label capacity, per-row `Vec` overhead
    /// (including spare capacity), and value *capacity* rather than
    /// initialized length.
    #[test]
    fn size_bytes_charges_capacity_and_row_overhead() {
        let val = std::mem::size_of::<Value>();
        let vec_hdr = std::mem::size_of::<Vec<Value>>();
        let str_hdr = std::mem::size_of::<String>();
        let base = std::mem::size_of::<QueryResult>();

        let empty = QueryResult {
            columns: vec![],
            rows: vec![],
            stats: ExecStats {
                rows_scanned: 0,
                rows_returned: 0,
                access: AccessPath::FullScan,
            },
        };
        assert_eq!(empty.size_bytes(), base);

        // One column whose backing String has excess capacity; one row
        // holding an Int and a Text with excess capacity.
        let mut label = String::with_capacity(16);
        label.push_str("id");
        let mut text = String::with_capacity(32);
        text.push_str("abcd");
        let mut row = Vec::with_capacity(4);
        row.push(Value::Int(7));
        row.push(Value::Text(text));
        let r = QueryResult {
            columns: vec![label],
            rows: vec![row],
            stats: ExecStats {
                rows_scanned: 1,
                rows_returned: 1,
                access: AccessPath::FullScan,
            },
        };
        let expected = base
            + (str_hdr + 16)            // column label: header + capacity 16
            + vec_hdr + 4 * val         // row: Vec header + capacity-4 slots
            + 32; // Text heap capacity (Int carries no heap)
        assert_eq!(r.size_bytes(), expected);
        // The old accounting (len-based value sum, no overhead) would have
        // said 8 + (4 + 8) = 20; capacity-aware is strictly larger.
        assert!(r.size_bytes() > 20);
    }
}
