//! Query specification, planning, and execution.
//!
//! The paper's DM builds queries as structured objects ("Java collection
//! objects", §5.4) which are "parsed, analyzed, verified and transformed into
//! regular SQL queries". [`Query`] is that structured object; the SQL parser
//! also lowers `SELECT` text into it, so both paths share this executor.

#[cfg(test)]
use crate::error::DbError;
use crate::error::DbResult;
use crate::expr::Expr;
use crate::index::RowId;
use crate::paged::TableSnapshot;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;
use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::ops::Bound;

/// What the executor needs from a row container. Implemented by live
/// [`Table`]s (both backings, under the catalog lock) and by frozen
/// [`TableSnapshot`]s (paged tables, no lock at all) — one pipeline,
/// three access modes.
///
/// `Sync` is required so the parallel scan stage can share the source
/// across scoped worker threads.
pub(crate) trait RowSource: Sync {
    /// Schema of the underlying table.
    fn schema(&self) -> &Schema;
    /// Fetch one row; `None` when the id is stale or deleted.
    fn fetch(&self, id: RowId) -> Option<Cow<'_, [Value]>>;
    /// All live row ids in slot order (the full-scan candidate list).
    fn all_ids(&self) -> Vec<RowId>;
    /// Position of the best index whose first key column is `col`.
    fn best_index(&self, col: usize) -> Option<usize>;
    /// Name of the index at `pos` (for access-path reporting).
    fn index_name(&self, pos: usize) -> String;
    /// First-column range scan on the index at `pos`.
    fn index_range(&self, pos: usize, low: Bound<&Value>, high: Bound<&Value>) -> Vec<RowId>;
}

impl RowSource for Table {
    fn schema(&self) -> &Schema {
        Table::schema(self)
    }
    fn fetch(&self, id: RowId) -> Option<Cow<'_, [Value]>> {
        self.get(id).ok()
    }
    fn all_ids(&self) -> Vec<RowId> {
        self.scan_ids()
    }
    fn best_index(&self, col: usize) -> Option<usize> {
        self.index_pos_on(col)
    }
    fn index_name(&self, pos: usize) -> String {
        self.indexes()[pos].name().to_string()
    }
    fn index_range(&self, pos: usize, low: Bound<&Value>, high: Bound<&Value>) -> Vec<RowId> {
        self.indexes()[pos].range(&[], low, high)
    }
}

impl RowSource for TableSnapshot {
    fn schema(&self) -> &Schema {
        TableSnapshot::schema(self)
    }
    fn fetch(&self, id: RowId) -> Option<Cow<'_, [Value]>> {
        self.get(id).map(Cow::Owned)
    }
    fn all_ids(&self) -> Vec<RowId> {
        self.scan_ids()
    }
    fn best_index(&self, col: usize) -> Option<usize> {
        TableSnapshot::best_index(self, col)
    }
    fn index_name(&self, pos: usize) -> String {
        TableSnapshot::index_name(self, pos).to_string()
    }
    fn index_range(&self, pos: usize, low: Bound<&Value>, high: Bound<&Value>) -> Vec<RowId> {
        TableSnapshot::index_range(self, pos, low, high)
    }
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum OrderDir {
    /// Ascending (NULLs first, per the `Value` total order).
    Asc,
    /// Descending.
    Desc,
}

/// Aggregate functions.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(col)` — non-null values.
    Count(String),
    /// `SUM(col)`
    Sum(String),
    /// `AVG(col)`
    Avg(String),
    /// `MIN(col)`
    Min(String),
    /// `MAX(col)`
    Max(String),
}

impl AggFunc {
    fn column(&self) -> Option<&str> {
        match self {
            AggFunc::CountStar => None,
            AggFunc::Count(c)
            | AggFunc::Sum(c)
            | AggFunc::Avg(c)
            | AggFunc::Min(c)
            | AggFunc::Max(c) => Some(c),
        }
    }

    /// Result column label, e.g. `COUNT(*)` or `SUM(flux)`.
    pub fn label(&self) -> String {
        match self {
            AggFunc::CountStar => "COUNT(*)".to_string(),
            AggFunc::Count(c) => format!("COUNT({c})"),
            AggFunc::Sum(c) => format!("SUM({c})"),
            AggFunc::Avg(c) => format!("AVG({c})"),
            AggFunc::Min(c) => format!("MIN({c})"),
            AggFunc::Max(c) => format!("MAX({c})"),
        }
    }
}

/// Column projection.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub enum Projection {
    /// `SELECT *`
    #[default]
    All,
    /// Named columns, in output order.
    Columns(Vec<String>),
}

/// A structured query over one table.
///
/// Serializes with serde so it can travel between DM nodes over the
/// `hedc-net` wire protocol (§5.4 call redirection) and be dumped into
/// `/hedc/stats.json`-style diagnostics.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Query {
    /// Target table.
    pub table: String,
    /// Output columns (ignored when `aggregates` is non-empty).
    pub projection: Projection,
    /// Optional filter predicate.
    pub filter: Option<Expr>,
    /// Sort specification applied before limit/offset.
    pub order_by: Vec<(String, OrderDir)>,
    /// Maximum number of result rows.
    pub limit: Option<usize>,
    /// Number of result rows to skip.
    pub offset: Option<usize>,
    /// Aggregate outputs; non-empty switches to aggregate mode.
    pub aggregates: Vec<AggFunc>,
    /// Group-by columns (aggregate mode only).
    pub group_by: Vec<String>,
}

impl Query {
    /// Start a query on a table.
    pub fn table(name: impl Into<String>) -> Self {
        Query {
            table: name.into(),
            ..Query::default()
        }
    }

    /// Project specific columns.
    pub fn select(mut self, cols: &[&str]) -> Self {
        self.projection = Projection::Columns(cols.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Add a filter, AND-ing with any existing filter.
    pub fn filter(mut self, e: Expr) -> Self {
        self.filter = Some(match self.filter.take() {
            Some(prev) => prev.and(e),
            None => e,
        });
        self
    }

    /// Add a sort key.
    pub fn order_by(mut self, col: impl Into<String>, dir: OrderDir) -> Self {
        self.order_by.push((col.into(), dir));
        self
    }

    /// Cap the result size.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Skip leading rows.
    pub fn offset(mut self, n: usize) -> Self {
        self.offset = Some(n);
        self
    }

    /// Add an aggregate output.
    pub fn aggregate(mut self, f: AggFunc) -> Self {
        self.aggregates.push(f);
        self
    }

    /// Group by a column.
    pub fn group_by(mut self, col: impl Into<String>) -> Self {
        self.group_by.push(col.into());
        self
    }
}

/// How the executor located candidate rows — reported so the evaluation can
/// verify "all database queries are performed on indexed fields" (§7.1).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AccessPath {
    /// Whole-heap scan.
    FullScan,
    /// Index range or point scan.
    Index {
        /// Index name used.
        name: String,
        /// Whether the probe was a point (equality) lookup.
        point: bool,
    },
    /// Multi-point index probes for an `IN`-list predicate: one point
    /// lookup per distinct list item, candidate sets concatenated.
    IndexMultiPoint {
        /// Index name used.
        name: String,
        /// Number of distinct probe points.
        probes: usize,
    },
}

/// Execution statistics for one query.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ExecStats {
    /// Rows fetched from the heap and tested.
    pub rows_scanned: usize,
    /// Rows returned.
    pub rows_returned: usize,
    /// Rows that passed through the sort stage: the full match count for a
    /// complete sort, only the bounded-heap working set (`offset + limit`)
    /// when the top-k path engages. `0` when no sort ran.
    #[serde(default)]
    pub rows_sorted: usize,
    /// Access path chosen by the planner.
    pub access: AccessPath,
}

/// A query result: column labels plus rows.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct QueryResult {
    /// Output column labels.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Executor statistics.
    pub stats: ExecStats,
}

impl QueryResult {
    /// First row, first column, as an integer (handy for COUNT queries).
    pub fn scalar_int(&self) -> Option<i64> {
        self.rows
            .first()
            .and_then(|r| r.first())
            .and_then(Value::as_int)
    }

    /// Allocated byte size of the result set: the struct itself, column
    /// labels (header + heap capacity), and every row's `Vec` header,
    /// spare capacity, and value footprints. This is the accounting unit
    /// for the result cache, so it must charge for *capacity*, not just
    /// initialized length — the old `Value::size_bytes` sum under-counted
    /// string capacity and ignored per-row overhead entirely.
    pub fn size_bytes(&self) -> usize {
        let header = std::mem::size_of::<QueryResult>();
        let columns: usize = self
            .columns
            .iter()
            .map(|c| std::mem::size_of::<String>() + c.capacity())
            .sum();
        let rows: usize = self
            .rows
            .iter()
            .map(|r| {
                std::mem::size_of::<Vec<Value>>() + r.capacity() * std::mem::size_of::<Value>()
                    - r.len() * std::mem::size_of::<Value>()
                    + r.iter().map(Value::alloc_bytes).sum::<usize>()
            })
            .sum();
        let access = match &self.stats.access {
            AccessPath::Index { name, .. } | AccessPath::IndexMultiPoint { name, .. } => {
                name.capacity()
            }
            AccessPath::FullScan => 0,
        };
        header + columns + rows + access
    }
}

/// Execute a query against a row source. This is the single scan/filter/
/// sort/aggregate pipeline used by SQL `SELECT`, DM query objects, internal
/// maintenance scans, and lock-free snapshot reads.
pub fn execute<S: RowSource + ?Sized>(source: &S, q: &Query) -> DbResult<QueryResult> {
    let schema = source.schema();
    let filter = match &q.filter {
        Some(f) => Some(f.clone().bind(schema)?),
        None => None,
    };

    // --- plan: choose an access path --------------------------------------
    let (candidates, access): (Vec<RowId>, AccessPath) = match &filter {
        Some(f) => plan_candidates(source, f),
        None => (source.all_ids(), AccessPath::FullScan),
    };

    // --- scan + filter ------------------------------------------------------
    let (rows_scanned, mut matched) = scan_filter(source, &filter, candidates)?;

    // --- aggregate mode -----------------------------------------------------
    if !q.aggregates.is_empty() {
        return aggregate(schema, q, matched, rows_scanned, access);
    }

    // --- sort ----------------------------------------------------------------
    let mut rows_sorted = 0usize;
    if !q.order_by.is_empty() {
        let keys: Vec<(usize, OrderDir)> = q
            .order_by
            .iter()
            .map(|(c, d)| Ok((schema.require_column(c)?, *d)))
            .collect::<DbResult<_>>()?;
        let by_keys = |a: &[Value], b: &[Value]| {
            for &(col, dir) in &keys {
                let ord = a[col].cmp(&b[col]);
                let ord = if dir == OrderDir::Desc {
                    ord.reverse()
                } else {
                    ord
                };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        };
        // Top-k pushdown: when a LIMIT bounds the output, only the first
        // `offset + limit` rows in sort order can ever be returned, so a
        // bounded heap of that size replaces sorting every matched row.
        let keep = q
            .limit
            .map(|l| q.offset.unwrap_or(0).saturating_add(l))
            .unwrap_or(usize::MAX);
        if keep < matched.len() && crate::tuning::topk_enabled() {
            matched = top_k_by(matched, keep, &|(_, a), (_, b)| {
                by_keys(a.as_ref(), b.as_ref())
            });
            rows_sorted = matched.len();
        } else {
            matched.sort_by(|(_, a), (_, b)| by_keys(a.as_ref(), b.as_ref()));
            rows_sorted = matched.len();
        }
    }

    // --- offset / limit -------------------------------------------------------
    let offset = q.offset.unwrap_or(0);
    let limit = q.limit.unwrap_or(usize::MAX);
    let window = matched.into_iter().skip(offset).take(limit);

    // --- project ---------------------------------------------------------------
    let (labels, cols): (Vec<String>, Option<Vec<usize>>) = match &q.projection {
        Projection::All => (
            schema.columns.iter().map(|c| c.name.clone()).collect(),
            None,
        ),
        Projection::Columns(names) => {
            let idx = names
                .iter()
                .map(|n| schema.require_column(n))
                .collect::<DbResult<Vec<_>>>()?;
            (names.clone(), Some(idx))
        }
    };
    let rows: Vec<Vec<Value>> = window
        .map(|(_, row)| match &cols {
            None => row.into_owned(),
            Some(idx) => idx.iter().map(|&i| row[i].clone()).collect(),
        })
        .collect();

    let rows_returned = rows.len();
    Ok(QueryResult {
        columns: labels,
        rows,
        stats: ExecStats {
            rows_scanned,
            rows_returned,
            rows_sorted,
            access,
        },
    })
}

/// Fetch candidate rows and apply the filter. Above the
/// [`crate::tuning::parallel_scan_threshold`] the candidate list is
/// partitioned into contiguous chunks evaluated by scoped worker threads;
/// chunk results are re-joined in order, so the output is identical to the
/// sequential walk.
fn scan_filter<'t, S: RowSource + ?Sized>(
    source: &'t S,
    filter: &Option<Expr>,
    candidates: Vec<RowId>,
) -> DbResult<(usize, Vec<(RowId, Cow<'t, [Value]>)>)> {
    let threshold = crate::tuning::parallel_scan_threshold();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    if filter.is_some() && threshold > 0 && candidates.len() >= threshold && workers > 1 {
        let chunk = candidates.len().div_ceil(workers);
        let results: Vec<DbResult<(usize, Vec<(RowId, Cow<'t, [Value]>)>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = candidates
                    .chunks(chunk)
                    .map(|ids| scope.spawn(move || scan_filter_chunk(source, filter, ids)))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
        let mut rows_scanned = 0usize;
        let mut matched = Vec::new();
        for r in results {
            let (scanned, part) = r?;
            rows_scanned += scanned;
            matched.extend(part);
        }
        Ok((rows_scanned, matched))
    } else {
        scan_filter_chunk(source, filter, &candidates)
    }
}

fn scan_filter_chunk<'t, S: RowSource + ?Sized>(
    source: &'t S,
    filter: &Option<Expr>,
    ids: &[RowId],
) -> DbResult<(usize, Vec<(RowId, Cow<'t, [Value]>)>)> {
    let mut rows_scanned = 0usize;
    let mut matched: Vec<(RowId, Cow<'t, [Value]>)> = Vec::new();
    for &id in ids {
        let row = match source.fetch(id) {
            Some(r) => r,
            None => continue, // deleted concurrently within this txn view
        };
        rows_scanned += 1;
        if let Some(f) = filter {
            if !f.eval_bool(&row)? {
                continue;
            }
        }
        matched.push((id, row));
    }
    Ok((rows_scanned, matched))
}

/// Keep the `k` least elements of `items` under `cmp`, returned in
/// ascending order: a bounded binary max-heap (worst survivor at the root)
/// does O(n log k) comparisons in k slots instead of sorting all n.
fn top_k_by<T>(items: Vec<T>, k: usize, cmp: &dyn Fn(&T, &T) -> Ordering) -> Vec<T> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: Vec<T> = Vec::with_capacity(k);
    let sift_down = |heap: &mut [T], mut i: usize| loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut largest = i;
        if l < heap.len() && cmp(&heap[l], &heap[largest]) == Ordering::Greater {
            largest = l;
        }
        if r < heap.len() && cmp(&heap[r], &heap[largest]) == Ordering::Greater {
            largest = r;
        }
        if largest == i {
            break;
        }
        heap.swap(i, largest);
        i = largest;
    };
    for item in items {
        if heap.len() < k {
            heap.push(item);
            // Sift up the freshly appended element.
            let mut i = heap.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if cmp(&heap[i], &heap[parent]) != Ordering::Greater {
                    break;
                }
                heap.swap(i, parent);
                i = parent;
            }
        } else if cmp(&item, &heap[0]) == Ordering::Less {
            heap[0] = item;
            sift_down(&mut heap, 0);
        }
    }
    heap.sort_by(|a, b| cmp(a, b));
    heap
}

/// Choose candidate row ids for a bound filter: the most selective sargable
/// conjunct (single-column range or `IN`-list of literals) that has an index
/// on its column wins; otherwise full scan.
pub(crate) fn plan_candidates<S: RowSource + ?Sized>(
    source: &S,
    filter: &Expr,
) -> (Vec<RowId>, AccessPath) {
    let mut best: Option<(Vec<RowId>, AccessPath)> = None;
    let consider =
        |ids: Vec<RowId>, access: AccessPath, best: &mut Option<(Vec<RowId>, AccessPath)>| {
            let better = match best {
                None => true,
                Some((cur, _)) => ids.len() < cur.len(),
            };
            if better {
                *best = Some((ids, access));
            }
        };
    for conj in filter.conjuncts() {
        if let Some(range) = conj.column_range() {
            let Some(pos) = source.best_index(range.col) else {
                continue;
            };
            let point = matches!(
                (&range.low, &range.high),
                (Bound::Included(a), Bound::Included(b)) if a == b
            );
            let ids = source.index_range(pos, as_ref_bound(&range.low), as_ref_bound(&range.high));
            let access = AccessPath::Index {
                name: source.index_name(pos),
                point,
            };
            consider(ids, access, &mut best);
        } else if let Some((col, points)) = conj.column_in_points() {
            let Some(pos) = source.best_index(col) else {
                continue;
            };
            // One point probe per distinct list item. Points are distinct
            // (deduped) so the per-point id sets are disjoint — plain
            // concatenation, no dedup pass needed.
            let ids: Vec<RowId> = points
                .iter()
                .flat_map(|v| source.index_range(pos, Bound::Included(v), Bound::Included(v)))
                .collect();
            let access = AccessPath::IndexMultiPoint {
                name: source.index_name(pos),
                probes: points.len(),
            };
            consider(ids, access, &mut best);
        }
    }
    match best {
        Some((ids, access)) => (ids, access),
        None => (source.all_ids(), AccessPath::FullScan),
    }
}

fn as_ref_bound(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Aggregate accumulator.
#[derive(Debug, Clone)]
struct Acc {
    count: i64,
    sum: f64,
    sum_is_int: bool,
    isum: i64,
    min: Option<Value>,
    max: Option<Value>,
}

impl Acc {
    fn new() -> Self {
        Acc {
            count: 0,
            sum: 0.0,
            sum_is_int: true,
            isum: 0,
            min: None,
            max: None,
        }
    }

    fn push(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(f) = v.as_float() {
            self.sum += f;
            match v.as_int() {
                Some(i) if self.sum_is_int => self.isum = self.isum.wrapping_add(i),
                _ => self.sum_is_int = false,
            }
        }
        if self.min.as_ref().is_none_or(|m| v < m) {
            self.min = Some(v.clone());
        }
        if self.max.as_ref().is_none_or(|m| v > m) {
            self.max = Some(v.clone());
        }
    }
}

fn aggregate(
    schema: &Schema,
    q: &Query,
    matched: Vec<(RowId, Cow<'_, [Value]>)>,
    rows_scanned: usize,
    access: AccessPath,
) -> DbResult<QueryResult> {
    // Resolve aggregate input columns.
    let agg_cols: Vec<Option<usize>> = q
        .aggregates
        .iter()
        .map(|a| match a.column() {
            Some(c) => schema.require_column(c).map(Some),
            None => Ok(None),
        })
        .collect::<DbResult<_>>()?;
    let group_cols: Vec<usize> = q
        .group_by
        .iter()
        .map(|c| schema.require_column(c))
        .collect::<DbResult<_>>()?;

    // Group rows (a single implicit group when group_by is empty).
    let mut groups: HashMap<Vec<Value>, (i64, Vec<Acc>)> = HashMap::new();
    let mut group_order: Vec<Vec<Value>> = Vec::new();
    for (_, row) in &matched {
        let key: Vec<Value> = group_cols.iter().map(|&c| row[c].clone()).collect();
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            group_order.push(key);
            (0, vec![Acc::new(); q.aggregates.len()])
        });
        entry.0 += 1;
        for (acc, col) in entry.1.iter_mut().zip(&agg_cols) {
            if let Some(c) = col {
                acc.push(&row[*c]);
            }
        }
    }
    // COUNT(*) over an empty, ungrouped input is still one row of zeroes.
    if groups.is_empty() && group_cols.is_empty() {
        group_order.push(Vec::new());
        groups.insert(Vec::new(), (0, vec![Acc::new(); q.aggregates.len()]));
    }

    let mut labels: Vec<String> = q.group_by.clone();
    labels.extend(q.aggregates.iter().map(AggFunc::label));

    let mut rows = Vec::with_capacity(group_order.len());
    for key in group_order {
        let (star_count, accs) = &groups[&key];
        let mut row = key.clone();
        for (agg, acc) in q.aggregates.iter().zip(accs) {
            let v = match agg {
                AggFunc::CountStar => Value::Int(*star_count),
                AggFunc::Count(_) => Value::Int(acc.count),
                AggFunc::Sum(_) => {
                    if acc.count == 0 {
                        Value::Null
                    } else if acc.sum_is_int {
                        Value::Int(acc.isum)
                    } else {
                        Value::Float(acc.sum)
                    }
                }
                AggFunc::Avg(_) => {
                    if acc.count == 0 {
                        Value::Null
                    } else {
                        Value::Float(acc.sum / acc.count as f64)
                    }
                }
                AggFunc::Min(_) => acc.min.clone().unwrap_or(Value::Null),
                AggFunc::Max(_) => acc.max.clone().unwrap_or(Value::Null),
            };
            row.push(v);
        }
        rows.push(row);
    }

    // Output order: an explicit ORDER BY over *output* columns (group keys
    // or aggregate labels like `count(*)`) wins; grouped results default to
    // group-key order otherwise. Top-k pushdown applies here exactly as in
    // the plain path — with a LIMIT, only the first `offset + limit` groups
    // in sort order can survive.
    let mut rows_sorted = 0usize;
    if !q.order_by.is_empty() {
        let keys: Vec<(usize, OrderDir)> = q
            .order_by
            .iter()
            .map(|(c, d)| {
                labels
                    .iter()
                    .position(|l| l == c)
                    .map(|i| (i, *d))
                    .ok_or_else(|| crate::error::DbError::NoSuchColumn {
                        table: q.table.clone(),
                        column: c.clone(),
                    })
            })
            .collect::<DbResult<_>>()?;
        let by_keys = |a: &Vec<Value>, b: &Vec<Value>| {
            for &(col, dir) in &keys {
                let ord = a[col].cmp(&b[col]);
                let ord = if dir == OrderDir::Desc {
                    ord.reverse()
                } else {
                    ord
                };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        };
        let keep = q
            .limit
            .map(|l| q.offset.unwrap_or(0).saturating_add(l))
            .unwrap_or(usize::MAX);
        if keep < rows.len() && crate::tuning::topk_enabled() {
            rows = top_k_by(rows, keep, &by_keys);
        } else {
            rows.sort_by(by_keys);
        }
        rows_sorted = rows.len();
    } else if !group_cols.is_empty() {
        let n = group_cols.len();
        rows.sort_by(|a, b| a[..n].cmp(&b[..n]));
        rows_sorted = rows.len();
    }

    // LIMIT/OFFSET apply to aggregate output too (grouped rows are already
    // ordered by their group keys).
    let offset = q.offset.unwrap_or(0);
    if offset > 0 {
        rows.drain(..offset.min(rows.len()));
    }
    if let Some(limit) = q.limit {
        rows.truncate(limit);
    }

    let rows_returned = rows.len();
    Ok(QueryResult {
        columns: labels,
        rows,
        stats: ExecStats {
            rows_scanned,
            rows_returned,
            rows_sorted,
            access,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::DataType;

    fn table() -> Table {
        let mut t = Table::new(
            Schema::new(
                "ana",
                vec![
                    ColumnDef::new("id", DataType::Int).not_null(),
                    ColumnDef::new("hle_id", DataType::Int).not_null(),
                    ColumnDef::new("kind", DataType::Text).not_null(),
                    ColumnDef::new("dur", DataType::Float),
                ],
            )
            .primary_key(&["id"]),
        );
        t.create_index("ana_hle", &["hle_id"], false).unwrap();
        let kinds = ["image", "lightcurve", "spectrum"];
        for i in 0..30i64 {
            t.insert(vec![
                Value::Int(i),
                Value::Int(i / 3),
                Value::Text(kinds[(i % 3) as usize].into()),
                Value::Float(i as f64 * 0.5),
            ])
            .unwrap();
        }
        t
    }

    /// Serializes tests that flip the process-wide tuning knobs so they
    /// don't race each other (flipped knobs never change *results*, only
    /// which execution strategy produced them).
    static TUNING_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn point_lookup_uses_pk_index() {
        let t = table();
        let q = Query::table("ana").filter(Expr::eq("id", 7));
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(
            r.stats.access,
            AccessPath::Index {
                name: "ana_pk".into(),
                point: true
            }
        );
        assert_eq!(r.stats.rows_scanned, 1);
    }

    #[test]
    fn range_scan_uses_secondary_index() {
        let t = table();
        let q = Query::table("ana").filter(Expr::between("hle_id", 2, 4));
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows.len(), 9);
        assert!(matches!(
            r.stats.access,
            AccessPath::Index { point: false, .. }
        ));
    }

    #[test]
    fn unindexed_predicate_full_scans() {
        let t = table();
        let q = Query::table("ana").filter(Expr::eq("kind", "image"));
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows.len(), 10);
        assert_eq!(r.stats.access, AccessPath::FullScan);
        assert_eq!(r.stats.rows_scanned, 30);
    }

    #[test]
    fn residual_filter_applied_after_index() {
        let t = table();
        let q = Query::table("ana").filter(Expr::eq("hle_id", 2).and(Expr::eq("kind", "image")));
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert!(matches!(r.stats.access, AccessPath::Index { .. }));
        assert_eq!(r.stats.rows_scanned, 3); // only hle_id=2 candidates touched
    }

    #[test]
    fn projection_order_and_limit() {
        let t = table();
        let q = Query::table("ana")
            .select(&["kind", "id"])
            .order_by("id", OrderDir::Desc)
            .limit(3)
            .offset(1);
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.columns, vec!["kind", "id"]);
        let ids: Vec<i64> = r.rows.iter().map(|r| r[1].as_int().unwrap()).collect();
        assert_eq!(ids, vec![28, 27, 26]);
    }

    #[test]
    fn count_star_and_filtered_count() {
        let t = table();
        let q = Query::table("ana").aggregate(AggFunc::CountStar);
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.scalar_int(), Some(30));

        let q = Query::table("ana")
            .filter(Expr::cmp("id", CmpOp::Lt, 10))
            .aggregate(AggFunc::CountStar);
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.scalar_int(), Some(10));
    }

    #[test]
    fn aggregates_sum_avg_min_max() {
        let t = table();
        let q = Query::table("ana")
            .aggregate(AggFunc::Sum("id".into()))
            .aggregate(AggFunc::Avg("dur".into()))
            .aggregate(AggFunc::Min("dur".into()))
            .aggregate(AggFunc::Max("dur".into()));
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows[0][0], Value::Int((0..30).sum::<i64>()));
        let avg = r.rows[0][1].as_float().unwrap();
        assert!((avg - 7.25).abs() < 1e-9);
        assert_eq!(r.rows[0][2], Value::Float(0.0));
        assert_eq!(r.rows[0][3], Value::Float(14.5));
    }

    #[test]
    fn group_by_kind() {
        let t = table();
        let q = Query::table("ana")
            .group_by("kind")
            .aggregate(AggFunc::CountStar);
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.columns, vec!["kind", "COUNT(*)"]);
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert_eq!(row[1], Value::Int(10));
        }
        // Deterministic sorted group order.
        assert_eq!(r.rows[0][0], Value::Text("image".into()));
    }

    #[test]
    fn empty_aggregate_returns_zero_row() {
        let t = table();
        let q = Query::table("ana")
            .filter(Expr::eq("id", 9999))
            .aggregate(AggFunc::CountStar)
            .aggregate(AggFunc::Sum("dur".into()));
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert_eq!(r.rows[0][1], Value::Null);
    }

    #[test]
    fn aggregate_respects_limit_and_offset() {
        let t = table();
        let q = Query::table("ana")
            .group_by("kind")
            .aggregate(AggFunc::CountStar)
            .limit(2)
            .offset(1);
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows.len(), 2);
        // Sorted group order is image < lightcurve < spectrum; offset 1
        // drops "image".
        assert_eq!(r.rows[0][0], Value::Text("lightcurve".into()));
    }

    #[test]
    fn aggregate_orders_by_output_columns() {
        let _g = TUNING_LOCK.lock().unwrap();
        // Per-kind SUM(dur): image 67.5 < lightcurve 72.5 < spectrum 77.5.
        let t = table();
        let q = Query::table("ana")
            .group_by("kind")
            .aggregate(AggFunc::Sum("dur".into()))
            .order_by("SUM(dur)", OrderDir::Desc)
            .limit(2);
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.columns, vec!["kind".to_string(), "SUM(dur)".to_string()]);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Text("spectrum".into()));
        assert_eq!(r.rows[1][0], Value::Text("lightcurve".into()));
        // Top-k pushdown bounds the grouped sort too: 3 groups, keep 2.
        assert_eq!(r.stats.rows_sorted, 2);

        // Group keys are orderable output columns as well.
        let by_kind = execute(
            &t,
            &Query::table("ana")
                .group_by("kind")
                .aggregate(AggFunc::CountStar)
                .order_by("kind", OrderDir::Desc),
        )
        .unwrap();
        assert_eq!(by_kind.rows[0][0], Value::Text("spectrum".into()));
        assert_eq!(by_kind.rows[2][0], Value::Text("image".into()));
    }

    #[test]
    fn aggregate_order_by_non_output_column_is_an_error() {
        // `dur` is an *input* column; after grouping it no longer exists.
        let t = table();
        let q = Query::table("ana")
            .group_by("kind")
            .aggregate(AggFunc::CountStar)
            .order_by("dur", OrderDir::Asc);
        assert!(execute(&t, &q).is_err());
    }

    #[test]
    fn in_list_uses_multi_point_probes() {
        let t = table();
        let q = Query::table("ana").filter(Expr::in_list("id", [3i64, 7, 11, 7]));
        let r = execute(&t, &q).unwrap();
        let mut ids: Vec<i64> = r.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        ids.sort();
        assert_eq!(ids, vec![3, 7, 11]);
        assert_eq!(
            r.stats.access,
            AccessPath::IndexMultiPoint {
                name: "ana_pk".into(),
                probes: 3, // the duplicate 7 collapses to one probe
            }
        );
        assert_eq!(r.stats.rows_scanned, 3);
    }

    #[test]
    fn in_list_with_null_item_skips_the_null_probe() {
        let t = table();
        let q = Query::table("ana").filter(Expr::InList {
            expr: Box::new(Expr::Name("id".into())),
            list: vec![Expr::Literal(Value::Int(3)), Expr::Literal(Value::Null)],
        });
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert!(matches!(
            r.stats.access,
            AccessPath::IndexMultiPoint { probes: 1, .. }
        ));
    }

    #[test]
    fn in_list_on_unindexed_column_full_scans() {
        let t = table();
        let q = Query::table("ana").filter(Expr::in_list("kind", ["image", "spectrum"]));
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows.len(), 20);
        assert_eq!(r.stats.access, AccessPath::FullScan);
    }

    #[test]
    fn in_list_competes_on_selectivity() {
        // `hle_id IN (2)` selects 3 rows; `id IN (5, 6, 7, 8)` selects 4.
        // The planner must pick the smaller candidate set.
        let t = table();
        let q = Query::table("ana")
            .filter(Expr::in_list("id", [5i64, 6, 7, 8]))
            .filter(Expr::in_list("hle_id", [2i64]));
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows.len(), 3); // ids 6,7,8 have hle_id 2
        assert!(matches!(
            r.stats.access,
            AccessPath::IndexMultiPoint { probes: 1, .. }
        ));
        assert_eq!(r.stats.rows_scanned, 3);
    }

    #[test]
    fn topk_limit_bounds_the_sort_working_set() {
        let _g = TUNING_LOCK.lock().unwrap();
        let t = table();
        let q = Query::table("ana").order_by("dur", OrderDir::Desc).limit(3);
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows.len(), 3);
        // Bounded heap: only k rows enter the sort, not all 30 matches.
        assert_eq!(r.stats.rows_sorted, 3);
        // Identical output to the full-sort baseline.
        crate::tuning::set_topk_enabled(false);
        let full = execute(&t, &q).unwrap();
        crate::tuning::set_topk_enabled(true);
        assert_eq!(full.stats.rows_sorted, 30);
        assert_eq!(r.rows, full.rows);
    }

    #[test]
    fn topk_keeps_offset_rows_in_the_heap() {
        let _g = TUNING_LOCK.lock().unwrap();
        let t = table();
        let q = Query::table("ana")
            .order_by("id", OrderDir::Asc)
            .offset(5)
            .limit(4);
        let r = execute(&t, &q).unwrap();
        let ids: Vec<i64> = r.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![5, 6, 7, 8]);
        // The heap must retain offset + limit rows or the window is wrong.
        assert_eq!(r.stats.rows_sorted, 9);
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let _g = TUNING_LOCK.lock().unwrap();
        let t = table();
        let q = Query::table("ana")
            .filter(Expr::eq("kind", "image"))
            .order_by("id", OrderDir::Asc);
        crate::tuning::set_parallel_scan_threshold(1); // force the parallel path
        let par = execute(&t, &q).unwrap();
        crate::tuning::set_parallel_scan_threshold(crate::tuning::DEFAULT_PARALLEL_SCAN_ROWS);
        let seq = execute(&t, &q).unwrap();
        assert_eq!(par.rows, seq.rows);
        assert_eq!(par.stats.rows_scanned, seq.stats.rows_scanned);
    }

    #[test]
    fn unknown_projection_column_errors() {
        let t = table();
        let q = Query::table("ana").select(&["nope"]);
        assert!(matches!(
            execute(&t, &q).unwrap_err(),
            DbError::NoSuchColumn { .. }
        ));
    }

    /// The same 30 rows as [`table`], but on the paged backing with tiny
    /// pages (real splits) and a small cache (real evictions).
    fn paged_table() -> Table {
        let store = std::sync::Arc::new(
            hedc_store::Store::open(hedc_store::StoreOptions {
                path: None,
                page_size: 512,
                cache_pages: 16,
            })
            .unwrap(),
        );
        let mut t = Table::new_paged(
            Schema::new(
                "ana",
                vec![
                    ColumnDef::new("id", DataType::Int).not_null(),
                    ColumnDef::new("hle_id", DataType::Int).not_null(),
                    ColumnDef::new("kind", DataType::Text).not_null(),
                    ColumnDef::new("dur", DataType::Float),
                ],
            )
            .primary_key(&["id"]),
            store,
        )
        .unwrap();
        t.create_index("ana_hle", &["hle_id"], false).unwrap();
        let kinds = ["image", "lightcurve", "spectrum"];
        for i in 0..30i64 {
            t.insert(vec![
                Value::Int(i),
                Value::Int(i / 3),
                Value::Text(kinds[(i % 3) as usize].into()),
                Value::Float(i as f64 * 0.5),
            ])
            .unwrap();
        }
        t
    }

    /// Every access path — point, range, multi-point, full scan, sort,
    /// aggregate — must return identical rows, stats, and access paths on
    /// the memory backing, the paged backing, and a frozen paged snapshot.
    #[test]
    fn paged_and_snapshot_execution_match_memory() {
        let mem = table();
        let paged = paged_table();
        let snap = paged.freeze().expect("paged tables freeze");
        let queries = vec![
            Query::table("ana").filter(Expr::eq("id", 7)),
            Query::table("ana").filter(Expr::between("hle_id", 2, 4)),
            Query::table("ana").filter(Expr::eq("kind", "image")),
            Query::table("ana").filter(Expr::eq("hle_id", 2).and(Expr::eq("kind", "image"))),
            Query::table("ana")
                .select(&["kind", "id"])
                .order_by("id", OrderDir::Desc)
                .limit(3)
                .offset(1),
            Query::table("ana").filter(Expr::in_list("id", [3i64, 7, 11, 7])),
            Query::table("ana")
                .group_by("kind")
                .aggregate(AggFunc::CountStar),
            Query::table("ana")
                .aggregate(AggFunc::Sum("id".into()))
                .aggregate(AggFunc::Avg("dur".into()))
                .aggregate(AggFunc::Min("dur".into()))
                .aggregate(AggFunc::Max("dur".into())),
            Query::table("ana").order_by("dur", OrderDir::Desc).limit(5),
        ];
        for q in &queries {
            let m = execute(&mem, q).unwrap();
            let p = execute(&paged, q).unwrap();
            let s = execute(&snap, q).unwrap();
            assert_eq!(m.rows, p.rows, "paged rows diverge for {q:?}");
            assert_eq!(m.rows, s.rows, "snapshot rows diverge for {q:?}");
            assert_eq!(
                m.stats.access, p.stats.access,
                "access path diverges for {q:?}"
            );
            assert_eq!(
                m.stats.access, s.stats.access,
                "snapshot access diverges for {q:?}"
            );
            assert_eq!(m.stats.rows_scanned, p.stats.rows_scanned);
            assert_eq!(m.columns, p.columns);
        }
    }

    /// A frozen snapshot keeps answering the old state while the live
    /// table moves on — the reader/writer decoupling the paged backend
    /// exists to provide.
    #[test]
    fn snapshot_reads_are_stable_under_writes() {
        let mut paged = paged_table();
        let snap = paged.freeze().unwrap();
        for i in 30..60i64 {
            paged
                .insert(vec![
                    Value::Int(i),
                    Value::Int(i / 3),
                    Value::Text("late".into()),
                    Value::Null,
                ])
                .unwrap();
        }
        let count = Query::table("ana").aggregate(AggFunc::CountStar);
        assert_eq!(execute(&snap, &count).unwrap().scalar_int(), Some(30));
        assert_eq!(execute(&paged, &count).unwrap().scalar_int(), Some(60));
    }

    /// Pin the cache-accounting arithmetic: `size_bytes` charges the
    /// struct header, column label capacity, per-row `Vec` overhead
    /// (including spare capacity), and value *capacity* rather than
    /// initialized length.
    #[test]
    fn size_bytes_charges_capacity_and_row_overhead() {
        let val = std::mem::size_of::<Value>();
        let vec_hdr = std::mem::size_of::<Vec<Value>>();
        let str_hdr = std::mem::size_of::<String>();
        let base = std::mem::size_of::<QueryResult>();

        let empty = QueryResult {
            columns: vec![],
            rows: vec![],
            stats: ExecStats {
                rows_scanned: 0,
                rows_returned: 0,
                rows_sorted: 0,
                access: AccessPath::FullScan,
            },
        };
        assert_eq!(empty.size_bytes(), base);

        // One column whose backing String has excess capacity; one row
        // holding an Int and a Text with excess capacity.
        let mut label = String::with_capacity(16);
        label.push_str("id");
        let mut text = String::with_capacity(32);
        text.push_str("abcd");
        let mut row = Vec::with_capacity(4);
        row.push(Value::Int(7));
        row.push(Value::Text(text));
        let r = QueryResult {
            columns: vec![label],
            rows: vec![row],
            stats: ExecStats {
                rows_scanned: 1,
                rows_returned: 1,
                rows_sorted: 0,
                access: AccessPath::FullScan,
            },
        };
        let expected = base
            + (str_hdr + 16)            // column label: header + capacity 16
            + vec_hdr + 4 * val         // row: Vec header + capacity-4 slots
            + 32; // Text heap capacity (Int carries no heap)
        assert_eq!(r.size_bytes(), expected);
        // The old accounting (len-based value sum, no overhead) would have
        // said 8 + (4 + 8) = 20; capacity-aware is strictly larger.
        assert!(r.size_bytes() > 20);
    }
}
