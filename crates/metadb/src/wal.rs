//! Redo logging and recovery.
//!
//! The paper stores "critical data, such as the database redo logs" on the
//! RAID with tape backup (§2.3). This module is that redo log: committed
//! transactions append their logical operations followed by a commit marker;
//! recovery replays complete commit batches and truncates a torn tail.
//!
//! Records are newline-delimited JSON. A text format was chosen deliberately:
//! the log doubles as the audit trail surfaced in HEDC's operational section,
//! and debuggability beats byte-shaving at metadata scale.

use crate::error::{DbError, DbResult};
use crate::value::Value;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// One logical redo record.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LogRecord {
    /// DDL: create a table (schema captured as its DDL string for lineage).
    CreateTable {
        /// The full schema, serialized.
        schema: crate::schema::Schema,
    },
    /// DDL: create an index.
    CreateIndex {
        /// Target table.
        table: String,
        /// Index name.
        name: String,
        /// Indexed column names.
        columns: Vec<String>,
        /// Uniqueness flag.
        unique: bool,
    },
    /// DML: a row was inserted at `row_id`.
    Insert {
        /// Target table.
        table: String,
        /// Slot the row occupies (replay must reuse it).
        row_id: u64,
        /// The inserted values.
        values: Vec<Value>,
    },
    /// DML: the row at `row_id` was replaced.
    Update {
        /// Target table.
        table: String,
        /// Affected slot.
        row_id: u64,
        /// The new values.
        values: Vec<Value>,
    },
    /// DML: the row at `row_id` was deleted.
    Delete {
        /// Target table.
        table: String,
        /// Affected slot.
        row_id: u64,
    },
    /// Commit marker terminating a batch.
    Commit,
}

/// Durability tuning for a [`Wal`] handle.
///
/// The default (`group_commit = 1`, `fsync = false`) reproduces the original
/// behaviour exactly: every committed batch is flushed to the OS immediately.
/// Raising `group_commit` lets N commit batches share one flush (and one
/// `fdatasync` when `fsync` is set), which is the classic group-commit
/// optimisation: concurrent loaders stop serialising on the log flush, at the
/// cost of losing at most the last `group_commit - 1` *complete* batches on a
/// crash. Recovery semantics are unchanged — the log is still append-ordered,
/// so a recovered prefix is always a consistent cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// Call `fdatasync` on each flush (durable past an OS crash, not just a
    /// process crash). Off by default: the repo's tests and benches model
    /// process crashes.
    pub fsync: bool,
    /// Flush once every N commit batches (min 1). Unflushed batches sit in
    /// the `BufWriter` and are lost if the process dies before the next
    /// flush — but never torn, because [`read_committed`] discards any
    /// commit-less tail.
    pub group_commit: usize,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            fsync: false,
            group_commit: 1,
        }
    }
}

/// Append-only redo log writer.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    records_written: u64,
    options: WalOptions,
    unflushed_commits: usize,
}

impl Wal {
    /// Open (or create) the log at `path` for appending, flushing every
    /// commit (the durable default).
    pub fn open(path: impl AsRef<Path>) -> DbResult<Self> {
        Self::open_with(path, WalOptions::default())
    }

    /// Open (or create) the log at `path` with explicit durability options.
    pub fn open_with(path: impl AsRef<Path>, options: WalOptions) -> DbResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal {
            path,
            writer: BufWriter::new(file),
            records_written: 0,
            options,
            unflushed_commits: 0,
        })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of records written through this handle.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// The durability options this handle was opened with.
    pub fn options(&self) -> WalOptions {
        self.options
    }

    /// Append a committed batch: all records, then the commit marker. The
    /// batch is flushed immediately unless group commit defers it. A batch is
    /// all-or-nothing from recovery's point of view because replay stops at
    /// the last complete `Commit`.
    pub fn append_commit(&mut self, records: &[LogRecord]) -> DbResult<()> {
        for r in records {
            let line =
                serde_json::to_string(r).map_err(|e| DbError::Io(format!("log serialize: {e}")))?;
            self.writer.write_all(line.as_bytes())?;
            self.writer.write_all(b"\n")?;
            self.records_written += 1;
        }
        let commit = serde_json::to_string(&LogRecord::Commit)
            .map_err(|e| DbError::Io(format!("log serialize: {e}")))?;
        self.writer.write_all(commit.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.records_written += 1;
        self.unflushed_commits += 1;
        if self.unflushed_commits >= self.options.group_commit.max(1) {
            self.flush()?;
        }
        Ok(())
    }

    /// Flush buffered batches to the OS (and to disk when `fsync` is set).
    /// A no-op when nothing is pending.
    pub fn flush(&mut self) -> DbResult<()> {
        if self.unflushed_commits == 0 {
            return Ok(());
        }
        self.writer.flush()?;
        if self.options.fsync {
            self.writer.get_ref().sync_data()?;
        }
        self.unflushed_commits = 0;
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort: a clean shutdown should not lose deferred batches.
        let _ = self.flush();
    }
}

/// Read all *committed* batches from a log file. A torn tail (incomplete
/// batch or partially-written line) is tolerated and discarded; a garbled
/// line *within* a committed region is a [`DbError::CorruptLog`].
pub fn read_committed(path: impl AsRef<Path>) -> DbResult<Vec<LogRecord>> {
    let file = match File::open(path.as_ref()) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let reader = BufReader::new(file);
    let mut committed: Vec<LogRecord> = Vec::new();
    let mut pending: Vec<LogRecord> = Vec::new();
    let mut tail_garbled = false;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if tail_garbled {
            // Valid JSON after a garbled line inside what would have to be a
            // committed batch means real corruption, not a torn tail.
            return Err(DbError::CorruptLog(
                "valid records follow a garbled line".into(),
            ));
        }
        match serde_json::from_str::<LogRecord>(&line) {
            Ok(LogRecord::Commit) => {
                committed.append(&mut pending);
            }
            Ok(rec) => pending.push(rec),
            Err(_) => tail_garbled = true,
        }
    }
    // `pending` (a batch without a commit marker) is a torn tail: discard.
    Ok(committed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hedc-metadb-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn ins(table: &str, id: u64) -> LogRecord {
        LogRecord::Insert {
            table: table.into(),
            row_id: id,
            values: vec![Value::Int(id as i64)],
        }
    }

    #[test]
    fn roundtrip_committed_batches() {
        let path = tmp("roundtrip");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_commit(&[ins("t", 0), ins("t", 1)]).unwrap();
            wal.append_commit(&[ins("t", 2)]).unwrap();
            assert_eq!(wal.records_written(), 5);
        }
        let recs = read_committed(&path).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[2], ins("t", 2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty() {
        let recs = read_committed("/nonexistent/dir/never.wal").unwrap();
        assert!(recs.is_empty());
    }

    #[test]
    fn torn_tail_discarded() {
        let path = tmp("torn");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_commit(&[ins("t", 0)]).unwrap();
        }
        // Simulate a crash mid-batch: records but no commit marker...
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            let line = serde_json::to_string(&ins("t", 99)).unwrap();
            writeln!(f, "{line}").unwrap();
            // ...and a half-written line.
            write!(f, "{{\"Insert\":{{\"tab").unwrap();
        }
        let recs = read_committed(&path).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0], ins("t", 0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_before_committed_data_is_an_error() {
        let path = tmp("corrupt");
        {
            let mut f = File::create(&path).unwrap();
            writeln!(f, "garbage not json").unwrap();
            let line = serde_json::to_string(&LogRecord::Commit).unwrap();
            writeln!(f, "{line}").unwrap();
        }
        assert!(matches!(
            read_committed(&path).unwrap_err(),
            DbError::CorruptLog(_)
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_defers_flush_until_threshold() {
        let path = tmp("group");
        let opts = WalOptions {
            fsync: false,
            group_commit: 3,
        };
        let mut wal = Wal::open_with(&path, opts).unwrap();
        wal.append_commit(&[ins("t", 0)]).unwrap();
        wal.append_commit(&[ins("t", 1)]).unwrap();
        // Two batches buffered, none flushed: a concurrent reader (or a
        // crashed process) sees an empty committed prefix.
        assert!(read_committed(&path).unwrap().is_empty());
        wal.append_commit(&[ins("t", 2)]).unwrap();
        // Third batch crossed the threshold: all three became durable at once.
        assert_eq!(read_committed(&path).unwrap().len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_drop_flushes_pending_batches() {
        let path = tmp("group-drop");
        {
            let mut wal = Wal::open_with(
                &path,
                WalOptions {
                    fsync: false,
                    group_commit: 16,
                },
            )
            .unwrap();
            wal.append_commit(&[ins("t", 0)]).unwrap();
            wal.append_commit(&[ins("t", 1)]).unwrap();
            // Dropped below threshold: clean shutdown must not lose them.
        }
        assert_eq!(read_committed(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn explicit_flush_publishes_buffered_batches() {
        let path = tmp("group-flush");
        let mut wal = Wal::open_with(
            &path,
            WalOptions {
                fsync: true,
                group_commit: 8,
            },
        )
        .unwrap();
        wal.append_commit(&[ins("t", 7)]).unwrap();
        assert!(read_committed(&path).unwrap().is_empty());
        wal.flush().unwrap();
        assert_eq!(read_committed(&path).unwrap().len(), 1);
        // Idempotent with nothing pending.
        wal.flush().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_after_reopen_preserves_history() {
        let path = tmp("reopen");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_commit(&[ins("t", 0)]).unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_commit(&[ins("t", 1)]).unwrap();
        }
        let recs = read_committed(&path).unwrap();
        assert_eq!(recs.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
