//! Database-wide monitoring counters.
//!
//! The paper's operational schema section stores "monitoring information such
//! as usage statistics" (§4.1), and the evaluation reasons in queries/second
//! against a known capacity (§7.3). These counters are what those numbers are
//! read from.
//!
//! Counters live in an [`hedc_obs::MetricsRegistry`] (one per database, so
//! per-instance test accounting stays exact), and [`DbStats::snapshot`] reads
//! back through that registry — there is a single snapshot path shared with
//! the rest of the observability layer. The public fields stay addressable as
//! raw atomics because [`hedc_obs::Counter`] derefs to its `AtomicU64`.

use hedc_obs::{Counter, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic counters updated by the engine. All methods are lock-free.
#[derive(Debug)]
pub struct DbStats {
    registry: MetricsRegistry,
    /// SELECT statements executed.
    pub queries: Arc<Counter>,
    /// INSERT/UPDATE/DELETE statements executed.
    pub edits: Arc<Counter>,
    /// Rows fetched from heaps and tested against predicates.
    pub rows_scanned: Arc<Counter>,
    /// Rows returned to clients.
    pub rows_returned: Arc<Counter>,
    /// Rows that entered a sort stage (full matches for a complete sort,
    /// only the bounded working set on the top-k path).
    pub rows_sorted: Arc<Counter>,
    /// Queries answered via an index access path.
    pub index_hits: Arc<Counter>,
    /// Queries answered via a full scan.
    pub full_scans: Arc<Counter>,
    /// Transactions committed.
    pub commits: Arc<Counter>,
    /// Transactions rolled back.
    pub rollbacks: Arc<Counter>,
    /// Bytes read through LOB accessors (ablation metric).
    pub lob_bytes_read: Arc<Counter>,
    /// Bytes written through LOB accessors (ablation metric).
    pub lob_bytes_written: Arc<Counter>,
}

impl Default for DbStats {
    fn default() -> Self {
        let registry = MetricsRegistry::new();
        let queries = registry.counter("db.queries");
        let edits = registry.counter("db.edits");
        let rows_scanned = registry.counter("db.rows_scanned");
        let rows_returned = registry.counter("db.rows_returned");
        let rows_sorted = registry.counter("db.rows_sorted");
        let index_hits = registry.counter("db.index_hits");
        let full_scans = registry.counter("db.full_scans");
        let commits = registry.counter("db.commits");
        let rollbacks = registry.counter("db.rollbacks");
        let lob_bytes_read = registry.counter("db.lob_bytes_read");
        let lob_bytes_written = registry.counter("db.lob_bytes_written");
        DbStats {
            registry,
            queries,
            edits,
            rows_scanned,
            rows_returned,
            rows_sorted,
            index_hits,
            full_scans,
            commits,
            rollbacks,
            lob_bytes_read,
            lob_bytes_written,
        }
    }
}

impl DbStats {
    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Read a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// The registry these counters live in (for export alongside the global
    /// observability snapshot).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Snapshot all counters at once, reading through the registry.
    pub fn snapshot(&self) -> StatsSnapshot {
        let r = &self.registry;
        StatsSnapshot {
            queries: r.counter_value("db.queries"),
            edits: r.counter_value("db.edits"),
            rows_scanned: r.counter_value("db.rows_scanned"),
            rows_returned: r.counter_value("db.rows_returned"),
            rows_sorted: r.counter_value("db.rows_sorted"),
            index_hits: r.counter_value("db.index_hits"),
            full_scans: r.counter_value("db.full_scans"),
            commits: r.counter_value("db.commits"),
            rollbacks: r.counter_value("db.rollbacks"),
            lob_bytes_read: r.counter_value("db.lob_bytes_read"),
            lob_bytes_written: r.counter_value("db.lob_bytes_written"),
        }
    }
}

/// A point-in-time copy of [`DbStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct StatsSnapshot {
    /// SELECT statements executed.
    pub queries: u64,
    /// DML statements executed.
    pub edits: u64,
    /// Rows fetched and tested.
    pub rows_scanned: u64,
    /// Rows returned.
    pub rows_returned: u64,
    /// Rows that entered a sort stage.
    #[serde(default)]
    pub rows_sorted: u64,
    /// Index-path queries.
    pub index_hits: u64,
    /// Full-scan queries.
    pub full_scans: u64,
    /// Commits.
    pub commits: u64,
    /// Rollbacks.
    pub rollbacks: u64,
    /// LOB bytes read.
    pub lob_bytes_read: u64,
    /// LOB bytes written.
    pub lob_bytes_written: u64,
}

impl StatsSnapshot {
    /// Difference since an earlier snapshot (for per-test accounting).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            queries: self.queries - earlier.queries,
            edits: self.edits - earlier.edits,
            rows_scanned: self.rows_scanned - earlier.rows_scanned,
            rows_returned: self.rows_returned - earlier.rows_returned,
            rows_sorted: self.rows_sorted - earlier.rows_sorted,
            index_hits: self.index_hits - earlier.index_hits,
            full_scans: self.full_scans - earlier.full_scans,
            commits: self.commits - earlier.commits,
            rollbacks: self.rollbacks - earlier.rollbacks,
            lob_bytes_read: self.lob_bytes_read - earlier.lob_bytes_read,
            lob_bytes_written: self.lob_bytes_written - earlier.lob_bytes_written,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_snapshot() {
        let s = DbStats::default();
        DbStats::bump(&s.queries);
        DbStats::bump(&s.queries);
        DbStats::add(&s.rows_scanned, 80);
        let snap = s.snapshot();
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.rows_scanned, 80);
        assert_eq!(snap.edits, 0);
    }

    #[test]
    fn since_subtracts() {
        let s = DbStats::default();
        DbStats::bump(&s.queries);
        let a = s.snapshot();
        DbStats::bump(&s.queries);
        DbStats::bump(&s.edits);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.queries, 1);
        assert_eq!(d.edits, 1);
    }

    #[test]
    fn fields_and_registry_share_storage() {
        let s = DbStats::default();
        s.queries.inc();
        assert_eq!(s.registry().counter_value("db.queries"), 1);
    }
}
