//! Database-wide monitoring counters.
//!
//! The paper's operational schema section stores "monitoring information such
//! as usage statistics" (§4.1), and the evaluation reasons in queries/second
//! against a known capacity (§7.3). These counters are what those numbers are
//! read from.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters updated by the engine. All methods are lock-free.
#[derive(Debug, Default)]
pub struct DbStats {
    /// SELECT statements executed.
    pub queries: AtomicU64,
    /// INSERT/UPDATE/DELETE statements executed.
    pub edits: AtomicU64,
    /// Rows fetched from heaps and tested against predicates.
    pub rows_scanned: AtomicU64,
    /// Rows returned to clients.
    pub rows_returned: AtomicU64,
    /// Queries answered via an index access path.
    pub index_hits: AtomicU64,
    /// Queries answered via a full scan.
    pub full_scans: AtomicU64,
    /// Transactions committed.
    pub commits: AtomicU64,
    /// Transactions rolled back.
    pub rollbacks: AtomicU64,
    /// Bytes read through LOB accessors (ablation metric).
    pub lob_bytes_read: AtomicU64,
    /// Bytes written through LOB accessors (ablation metric).
    pub lob_bytes_written: AtomicU64,
}

impl DbStats {
    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Read a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Snapshot all counters at once.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            queries: Self::get(&self.queries),
            edits: Self::get(&self.edits),
            rows_scanned: Self::get(&self.rows_scanned),
            rows_returned: Self::get(&self.rows_returned),
            index_hits: Self::get(&self.index_hits),
            full_scans: Self::get(&self.full_scans),
            commits: Self::get(&self.commits),
            rollbacks: Self::get(&self.rollbacks),
            lob_bytes_read: Self::get(&self.lob_bytes_read),
            lob_bytes_written: Self::get(&self.lob_bytes_written),
        }
    }
}

/// A point-in-time copy of [`DbStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct StatsSnapshot {
    /// SELECT statements executed.
    pub queries: u64,
    /// DML statements executed.
    pub edits: u64,
    /// Rows fetched and tested.
    pub rows_scanned: u64,
    /// Rows returned.
    pub rows_returned: u64,
    /// Index-path queries.
    pub index_hits: u64,
    /// Full-scan queries.
    pub full_scans: u64,
    /// Commits.
    pub commits: u64,
    /// Rollbacks.
    pub rollbacks: u64,
    /// LOB bytes read.
    pub lob_bytes_read: u64,
    /// LOB bytes written.
    pub lob_bytes_written: u64,
}

impl StatsSnapshot {
    /// Difference since an earlier snapshot (for per-test accounting).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            queries: self.queries - earlier.queries,
            edits: self.edits - earlier.edits,
            rows_scanned: self.rows_scanned - earlier.rows_scanned,
            rows_returned: self.rows_returned - earlier.rows_returned,
            index_hits: self.index_hits - earlier.index_hits,
            full_scans: self.full_scans - earlier.full_scans,
            commits: self.commits - earlier.commits,
            rollbacks: self.rollbacks - earlier.rollbacks,
            lob_bytes_read: self.lob_bytes_read - earlier.lob_bytes_read,
            lob_bytes_written: self.lob_bytes_written - earlier.lob_bytes_written,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_snapshot() {
        let s = DbStats::default();
        DbStats::bump(&s.queries);
        DbStats::bump(&s.queries);
        DbStats::add(&s.rows_scanned, 80);
        let snap = s.snapshot();
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.rows_scanned, 80);
        assert_eq!(snap.edits, 0);
    }

    #[test]
    fn since_subtracts() {
        let s = DbStats::default();
        DbStats::bump(&s.queries);
        let a = s.snapshot();
        DbStats::bump(&s.queries);
        DbStats::bump(&s.edits);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.queries, 1);
        assert_eq!(d.edits, 1);
    }
}
