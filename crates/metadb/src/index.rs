//! Secondary indexes.
//!
//! All of the paper's evaluation queries run "on indexed fields" (§7.1), so
//! indexes are the workhorse of the metadata engine. An index maps an ordered
//! composite key (one or more column values) to the set of row ids holding
//! that key. Backed by a B-tree (`std::collections::BTreeMap`), which gives
//! the logarithmic point lookups and ordered range scans the planner expects.

use crate::error::{DbError, DbResult};
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Row identifier: a stable handle into a table's heap.
pub type RowId = u64;

/// A secondary (or primary) index over one or more columns.
#[derive(Debug, Clone)]
pub struct Index {
    /// Index name (unique per database).
    pub name: String,
    /// Positions of the indexed columns, in key order.
    pub columns: Vec<usize>,
    /// Whether duplicate keys are rejected.
    pub unique: bool,
    map: BTreeMap<Vec<Value>, Vec<RowId>>,
    entries: usize,
}

impl Index {
    /// Create an empty index.
    pub fn new(name: impl Into<String>, columns: Vec<usize>, unique: bool) -> Self {
        Index {
            name: name.into(),
            columns,
            unique,
            map: BTreeMap::new(),
            entries: 0,
        }
    }

    /// Extract this index's key from a full row.
    pub fn key_of(&self, row: &[Value]) -> Vec<Value> {
        self.columns.iter().map(|&c| row[c].clone()).collect()
    }

    /// Number of (key, rowid) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Would inserting `row` violate uniqueness? NULL keys are exempt,
    /// matching SQL unique-index semantics.
    pub fn check_unique(&self, row: &[Value]) -> DbResult<()> {
        if !self.unique {
            return Ok(());
        }
        let key = self.key_of(row);
        if key.iter().any(Value::is_null) {
            return Ok(());
        }
        if self.map.contains_key(&key) {
            return Err(DbError::UniqueViolation {
                index: self.name.clone(),
            });
        }
        Ok(())
    }

    /// Insert a row's key. The caller must have called [`Index::check_unique`]
    /// first when enforcing constraints.
    pub fn insert(&mut self, row: &[Value], id: RowId) {
        let key = self.key_of(row);
        self.map.entry(key).or_default().push(id);
        self.entries += 1;
    }

    /// Remove a row's key.
    pub fn remove(&mut self, row: &[Value], id: RowId) {
        let key = self.key_of(row);
        if let Some(ids) = self.map.get_mut(&key) {
            if let Some(pos) = ids.iter().position(|&x| x == id) {
                ids.swap_remove(pos);
                self.entries -= 1;
            }
            if ids.is_empty() {
                self.map.remove(&key);
            }
        }
    }

    /// Exact-key lookup.
    pub fn get(&self, key: &[Value]) -> &[RowId] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Range scan over single-column bounds on the *first* key column, with
    /// an equality prefix for composite indexes.
    ///
    /// `eq_prefix` pins the first `eq_prefix.len()` key columns; `low`/`high`
    /// bound the next column. Returns row ids in key order.
    pub fn range(
        &self,
        eq_prefix: &[Value],
        low: Bound<&Value>,
        high: Bound<&Value>,
    ) -> Vec<RowId> {
        let mut out = Vec::new();
        // Lower bound of the B-tree walk: the prefix alone (inclusive) or
        // prefix + low value.
        let start: Bound<Vec<Value>> = match low {
            Bound::Unbounded => {
                if eq_prefix.is_empty() {
                    Bound::Unbounded
                } else {
                    Bound::Included(eq_prefix.to_vec())
                }
            }
            Bound::Included(v) => {
                let mut k = eq_prefix.to_vec();
                k.push(v.clone());
                Bound::Included(k)
            }
            Bound::Excluded(v) => {
                let mut k = eq_prefix.to_vec();
                k.push(v.clone());
                // Excluded on a prefix key would also exclude longer keys
                // sharing the bound value; walk from Included and filter below.
                Bound::Included(k)
            }
        };
        let pin = eq_prefix.len();
        for (key, ids) in self.map.range((start, Bound::<Vec<Value>>::Unbounded)) {
            // Stop once we leave the equality prefix.
            if key.len() < pin || key[..pin] != *eq_prefix {
                break;
            }
            if let Some(v) = key.get(pin) {
                match low {
                    Bound::Excluded(l) if v <= l => continue,
                    Bound::Included(l) if v < l => continue,
                    _ => {}
                }
                match high {
                    Bound::Excluded(h) if v >= h => break,
                    Bound::Included(h) if v > h => break,
                    _ => {}
                }
            } else if !matches!((low, high), (Bound::Unbounded, Bound::Unbounded)) {
                // Key is exactly the prefix but a bound constrains the next
                // column: a missing component can't satisfy a bound.
                continue;
            }
            out.extend_from_slice(ids);
        }
        out
    }

    /// Full in-order traversal of all row ids.
    pub fn iter_all(&self) -> impl Iterator<Item = RowId> + '_ {
        self.map.values().flat_map(|ids| ids.iter().copied())
    }

    /// Number of distinct keys (used by the planner's selectivity guess).
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn insert_get_remove() {
        let mut ix = Index::new("ix", vec![0], false);
        ix.insert(&[v(5)], 1);
        ix.insert(&[v(5)], 2);
        ix.insert(&[v(9)], 3);
        assert_eq!(ix.len(), 3);
        assert_eq!(ix.get(&[v(5)]), &[1, 2]);
        ix.remove(&[v(5)], 1);
        assert_eq!(ix.get(&[v(5)]), &[2]);
        ix.remove(&[v(5)], 2);
        assert!(ix.get(&[v(5)]).is_empty());
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn unique_violation_detected() {
        let mut ix = Index::new("pk", vec![0], true);
        ix.insert(&[v(1)], 1);
        assert!(ix.check_unique(&[v(1)]).is_err());
        assert!(ix.check_unique(&[v(2)]).is_ok());
        // NULL keys never collide.
        ix.insert(&[Value::Null], 2);
        assert!(ix.check_unique(&[Value::Null]).is_ok());
    }

    #[test]
    fn range_scan_single_column() {
        let mut ix = Index::new("ix", vec![0], false);
        for i in 0..10 {
            ix.insert(&[v(i)], i as RowId);
        }
        let ids = ix.range(&[], Bound::Included(&v(3)), Bound::Excluded(&v(7)));
        assert_eq!(ids, vec![3, 4, 5, 6]);
        let ids = ix.range(&[], Bound::Excluded(&v(3)), Bound::Included(&v(5)));
        assert_eq!(ids, vec![4, 5]);
        let ids = ix.range(&[], Bound::Unbounded, Bound::Unbounded);
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn range_scan_composite_prefix() {
        // Index on (owner, time): equality on owner, range on time.
        let mut ix = Index::new("ix", vec![0, 1], false);
        for owner in 0..3 {
            for t in 0..5 {
                ix.insert(&[v(owner), v(t)], (owner * 10 + t) as RowId);
            }
        }
        let ids = ix.range(&[v(1)], Bound::Included(&v(2)), Bound::Included(&v(3)));
        assert_eq!(ids, vec![12, 13]);
        // Prefix only, unbounded range = all of owner 2.
        let ids = ix.range(&[v(2)], Bound::Unbounded, Bound::Unbounded);
        assert_eq!(ids, vec![20, 21, 22, 23, 24]);
        // Prefix that doesn't exist.
        let ids = ix.range(&[v(9)], Bound::Unbounded, Bound::Unbounded);
        assert!(ids.is_empty());
    }

    #[test]
    fn distinct_key_counting() {
        let mut ix = Index::new("ix", vec![0], false);
        ix.insert(&[v(1)], 1);
        ix.insert(&[v(1)], 2);
        ix.insert(&[v(2)], 3);
        assert_eq!(ix.distinct_keys(), 2);
        assert_eq!(ix.iter_all().count(), 3);
    }
}
