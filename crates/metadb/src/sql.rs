//! A small SQL dialect: tokenizer, parser, and statement representation.
//!
//! The DM normally speaks structured [`Query`] objects, but the paper also
//! lets advanced users submit "their own SQL queries" (§1) and the DM itself
//! compiles query objects *to* SQL (§5.4). Supporting a real textual dialect
//! keeps that path honest: generated SQL is parsed back by this module, so a
//! malformed generator is caught by tests instead of silently diverging.
//!
//! Supported statements: `CREATE TABLE`, `CREATE [UNIQUE] INDEX`, `INSERT`,
//! `SELECT` (with WHERE/GROUP BY/ORDER BY/LIMIT/OFFSET and aggregates),
//! `UPDATE`, `DELETE`, `BEGIN`, `COMMIT`, `ROLLBACK`.

use crate::error::{DbError, DbResult};
use crate::expr::{ArithOp, CmpOp, Expr};
use crate::query::{AggFunc, OrderDir, Projection, Query};
use crate::schema::{ColumnDef, Schema};
use crate::value::{DataType, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone)]
pub enum Statement {
    /// `CREATE TABLE ...`
    CreateTable(Schema),
    /// `CREATE [UNIQUE] INDEX name ON table (cols)`
    CreateIndex {
        /// Target table.
        table: String,
        /// Index name.
        name: String,
        /// Indexed columns.
        columns: Vec<String>,
        /// Uniqueness.
        unique: bool,
    },
    /// `INSERT INTO table [(cols)] VALUES (...), (...)`
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Rows of literal values.
        values: Vec<Vec<Value>>,
    },
    /// `SELECT ...`
    Select(Query),
    /// `UPDATE table SET col = expr [WHERE ...]`
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Optional filter.
        filter: Option<Expr>,
    },
    /// `DELETE FROM table [WHERE ...]`
    Delete {
        /// Target table.
        table: String,
        /// Optional filter.
        filter: Option<Expr>,
    },
    /// `BEGIN`
    Begin,
    /// `COMMIT`
    Commit,
    /// `ROLLBACK`
    Rollback,
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Hex(Vec<u8>),
    Sym(&'static str),
    Eof,
}

fn tokenize(input: &str) -> DbResult<Vec<Tok>> {
    let b: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '-' && b.get(i + 1) == Some(&'-') {
            // Line comment.
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            let word: String = b[start..i].iter().collect();
            // X'ab01' hex literal.
            if (word == "X" || word == "x") && b.get(i) == Some(&'\'') {
                i += 1;
                let hstart = i;
                while i < b.len() && b[i] != '\'' {
                    i += 1;
                }
                if i >= b.len() {
                    return Err(DbError::Parse("unterminated hex literal".into()));
                }
                let hex: String = b[hstart..i].iter().collect();
                i += 1;
                if !hex.len().is_multiple_of(2) {
                    return Err(DbError::Parse("odd-length hex literal".into()));
                }
                let mut bytes = Vec::with_capacity(hex.len() / 2);
                for pair in hex.as_bytes().chunks(2) {
                    let s = std::str::from_utf8(pair).unwrap();
                    bytes.push(
                        u8::from_str_radix(s, 16)
                            .map_err(|_| DbError::Parse(format!("bad hex `{s}`")))?,
                    );
                }
                out.push(Tok::Hex(bytes));
            } else {
                out.push(Tok::Ident(word));
            }
            continue;
        }
        if c.is_ascii_digit() || (c == '.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())) {
            let start = i;
            let mut is_float = false;
            while i < b.len()
                && (b[i].is_ascii_digit()
                    || b[i] == '.'
                    || b[i] == 'e'
                    || b[i] == 'E'
                    || ((b[i] == '+' || b[i] == '-') && (b[i - 1] == 'e' || b[i - 1] == 'E')))
            {
                if b[i] == '.' || b[i] == 'e' || b[i] == 'E' {
                    is_float = true;
                }
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            if is_float {
                let f: f64 = text
                    .parse()
                    .map_err(|_| DbError::Parse(format!("bad float `{text}`")))?;
                out.push(Tok::Float(f));
            } else {
                let n: i64 = text
                    .parse()
                    .map_err(|_| DbError::Parse(format!("bad integer `{text}`")))?;
                out.push(Tok::Int(n));
            }
            continue;
        }
        if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                if i >= b.len() {
                    return Err(DbError::Parse("unterminated string literal".into()));
                }
                if b[i] == '\'' {
                    if b.get(i + 1) == Some(&'\'') {
                        s.push('\'');
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                s.push(b[i]);
                i += 1;
            }
            out.push(Tok::Str(s));
            continue;
        }
        let two: Option<&'static str> = match (c, b.get(i + 1)) {
            ('<', Some('=')) => Some("<="),
            ('>', Some('=')) => Some(">="),
            ('<', Some('>')) => Some("<>"),
            ('!', Some('=')) => Some("<>"),
            _ => None,
        };
        if let Some(sym) = two {
            out.push(Tok::Sym(sym));
            i += 2;
            continue;
        }
        let one: Option<&'static str> = match c {
            '(' => Some("("),
            ')' => Some(")"),
            ',' => Some(","),
            ';' => Some(";"),
            '=' => Some("="),
            '<' => Some("<"),
            '>' => Some(">"),
            '+' => Some("+"),
            '-' => Some("-"),
            '*' => Some("*"),
            '/' => Some("/"),
            '.' => Some("."),
            _ => None,
        };
        match one {
            Some(sym) => {
                out.push(Tok::Sym(sym));
                i += 1;
            }
            None => return Err(DbError::Parse(format!("unexpected character `{c}`"))),
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> DbResult<T> {
        Err(DbError::Parse(format!(
            "{} (at token {:?})",
            msg.into(),
            self.peek()
        )))
    }

    /// Consume a keyword (case-insensitive); error if absent.
    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`"))
        }
    }

    /// Consume a keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Tok::Ident(w) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.next();
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(w) if w.eq_ignore_ascii_case(kw))
    }

    fn expect_sym(&mut self, sym: &str) -> DbResult<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            self.err(format!("expected `{sym}`"))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Tok::Sym(s) if *s == sym) {
            self.next();
            return true;
        }
        false
    }

    fn ident(&mut self) -> DbResult<String> {
        match self.next() {
            Tok::Ident(w) => Ok(w),
            other => Err(DbError::Parse(format!(
                "expected identifier, got {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> DbResult<Statement> {
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.create_table();
            }
            let unique = self.eat_kw("UNIQUE");
            if self.eat_kw("INDEX") {
                return self.create_index(unique);
            }
            return self.err("expected TABLE or INDEX after CREATE");
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("BEGIN") {
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            return Ok(Statement::Rollback);
        }
        self.err("expected a statement")
    }

    fn create_table(&mut self) -> DbResult<Statement> {
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut cols: Vec<ColumnDef> = Vec::new();
        let mut pk: Vec<String> = Vec::new();
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                self.expect_sym("(")?;
                loop {
                    pk.push(self.ident()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
            } else {
                let cname = self.ident()?;
                let tname = self.ident()?;
                let ty = DataType::parse(&tname)
                    .ok_or_else(|| DbError::Parse(format!("unknown type `{tname}`")))?;
                let mut col = ColumnDef::new(cname, ty);
                loop {
                    if self.eat_kw("NOT") {
                        self.expect_kw("NULL")?;
                        col.not_null = true;
                    } else if self.eat_kw("DEFAULT") {
                        col.default = Some(self.literal()?);
                    } else {
                        break;
                    }
                }
                cols.push(col);
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        let mut schema = Schema::new(name, cols);
        if !pk.is_empty() {
            let refs: Vec<&str> = pk.iter().map(String::as_str).collect();
            // `primary_key` panics on unknown columns; validate first.
            for c in &refs {
                if schema.column_index(c).is_none() {
                    return Err(DbError::Parse(format!("unknown PRIMARY KEY column `{c}`")));
                }
            }
            schema = schema.primary_key(&refs);
        }
        Ok(Statement::CreateTable(schema))
    }

    fn create_index(&mut self, unique: bool) -> DbResult<Statement> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(Statement::CreateIndex {
            table,
            name,
            columns,
            unique,
        })
    }

    fn insert(&mut self) -> DbResult<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if self.eat_sym("(") {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut values = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.signed_literal()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            values.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            values,
        })
    }

    fn select(&mut self) -> DbResult<Query> {
        // Projection / aggregate list.
        let mut q = Query::default();
        let mut plain_cols: Vec<String> = Vec::new();
        let mut star = false;
        loop {
            if self.eat_sym("*") {
                star = true;
            } else if let Some(agg) = self.try_aggregate()? {
                q.aggregates.push(agg);
            } else {
                plain_cols.push(self.ident()?);
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_kw("FROM")?;
        q.table = self.ident()?;
        if self.eat_kw("WHERE") {
            q.filter = Some(self.expr()?);
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                q.group_by.push(self.ident()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let col = self.ident()?;
                let dir = if self.eat_kw("DESC") {
                    OrderDir::Desc
                } else {
                    self.eat_kw("ASC");
                    OrderDir::Asc
                };
                q.order_by.push((col, dir));
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            q.limit = Some(self.usize_literal()?);
        }
        if self.eat_kw("OFFSET") {
            q.offset = Some(self.usize_literal()?);
        }
        if !q.aggregates.is_empty() {
            // Plain columns alongside aggregates must be the group-by keys;
            // the executor emits group keys automatically, so just validate.
            for c in &plain_cols {
                if !q.group_by.iter().any(|g| g.eq_ignore_ascii_case(c)) {
                    return Err(DbError::Parse(format!(
                        "column `{c}` must appear in GROUP BY"
                    )));
                }
            }
        } else if star {
            q.projection = Projection::All;
        } else if !plain_cols.is_empty() {
            q.projection = Projection::Columns(plain_cols);
        } else {
            return self.err("empty select list");
        }
        Ok(q)
    }

    fn try_aggregate(&mut self) -> DbResult<Option<AggFunc>> {
        let kw = match self.peek() {
            Tok::Ident(w) => w.to_ascii_uppercase(),
            _ => return Ok(None),
        };
        let is_agg = matches!(kw.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX");
        // Only treat as aggregate when followed by `(` — otherwise it's a
        // column that happens to be called e.g. `count`.
        if !is_agg || !matches!(self.toks.get(self.pos + 1), Some(Tok::Sym("("))) {
            return Ok(None);
        }
        self.next(); // keyword
        self.next(); // (
        let agg = if kw == "COUNT" && self.eat_sym("*") {
            AggFunc::CountStar
        } else {
            let col = self.ident()?;
            match kw.as_str() {
                "COUNT" => AggFunc::Count(col),
                "SUM" => AggFunc::Sum(col),
                "AVG" => AggFunc::Avg(col),
                "MIN" => AggFunc::Min(col),
                "MAX" => AggFunc::Max(col),
                _ => unreachable!(),
            }
        };
        self.expect_sym(")")?;
        Ok(Some(agg))
    }

    fn update(&mut self) -> DbResult<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym("=")?;
            sets.push((col, self.expr()?));
            if !self.eat_sym(",") {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            filter,
        })
    }

    fn delete(&mut self) -> DbResult<Statement> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    // --- expressions, precedence: OR < AND < NOT < cmp < add < mul < unary

    fn expr(&mut self) -> DbResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> DbResult<Expr> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> DbResult<Expr> {
        let left = self.add_expr()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] BETWEEN / IN / LIKE
        let negated = self.peek_kw("NOT") && {
            // lookahead: NOT BETWEEN / NOT IN / NOT LIKE
            matches!(self.toks.get(self.pos + 1), Some(Tok::Ident(w))
                    if ["BETWEEN", "IN", "LIKE"].iter().any(|k| w.eq_ignore_ascii_case(k)))
        };
        if negated {
            self.next();
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.add_expr()?;
            self.expect_kw("AND")?;
            let hi = self.add_expr()?;
            let e = Expr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
            };
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.add_expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            let e = Expr::InList {
                expr: Box::new(left),
                list,
            };
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        if self.eat_kw("LIKE") {
            let pattern = match self.next() {
                Tok::Str(s) => s,
                other => {
                    return Err(DbError::Parse(format!(
                        "LIKE requires a string pattern, got {other:?}"
                    )))
                }
            };
            let e = Expr::Like {
                expr: Box::new(left),
                pattern,
            };
            return Ok(if negated { Expr::Not(Box::new(e)) } else { e });
        }
        let op = match self.peek() {
            Tok::Sym("=") => Some(CmpOp::Eq),
            Tok::Sym("<>") => Some(CmpOp::Ne),
            Tok::Sym("<") => Some(CmpOp::Lt),
            Tok::Sym("<=") => Some(CmpOp::Le),
            Tok::Sym(">") => Some(CmpOp::Gt),
            Tok::Sym(">=") => Some(CmpOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.next();
                let right = self.add_expr()?;
                Ok(Expr::Cmp(op, Box::new(left), Box::new(right)))
            }
            None => Ok(left),
        }
    }

    fn add_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Sym("+") => ArithOp::Add,
                Tok::Sym("-") => ArithOp::Sub,
                _ => break,
            };
            self.next();
            let right = self.mul_expr()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Sym("*") => ArithOp::Mul,
                Tok::Sym("/") => ArithOp::Div,
                _ => break,
            };
            self.next();
            let right = self.unary_expr()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> DbResult<Expr> {
        if self.eat_sym("-") {
            let inner = self.unary_expr()?;
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Arith(
                    ArithOp::Sub,
                    Box::new(Expr::Literal(Value::Int(0))),
                    Box::new(other),
                ),
            });
        }
        if self.eat_sym("(") {
            let e = self.expr()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        match self.next() {
            Tok::Int(i) => Ok(Expr::Literal(Value::Int(i))),
            Tok::Float(f) => Ok(Expr::Literal(Value::Float(f))),
            Tok::Str(s) => Ok(Expr::Literal(Value::Text(s))),
            Tok::Hex(b) => Ok(Expr::Literal(Value::Bytes(b))),
            Tok::Ident(w) => {
                if w.eq_ignore_ascii_case("NULL") {
                    Ok(Expr::Literal(Value::Null))
                } else if w.eq_ignore_ascii_case("TRUE") {
                    Ok(Expr::Literal(Value::Bool(true)))
                } else if w.eq_ignore_ascii_case("FALSE") {
                    Ok(Expr::Literal(Value::Bool(false)))
                } else {
                    Ok(Expr::Name(w))
                }
            }
            other => Err(DbError::Parse(format!("unexpected token {other:?}"))),
        }
    }

    fn literal(&mut self) -> DbResult<Value> {
        match self.unary_expr()? {
            Expr::Literal(v) => Ok(v),
            other => Err(DbError::Parse(format!("expected literal, got {other:?}"))),
        }
    }

    /// A literal with optional leading minus (INSERT values).
    fn signed_literal(&mut self) -> DbResult<Value> {
        self.literal()
    }

    fn usize_literal(&mut self) -> DbResult<usize> {
        match self.next() {
            Tok::Int(i) if i >= 0 => Ok(i as usize),
            other => Err(DbError::Parse(format!(
                "expected non-negative integer, got {other:?}"
            ))),
        }
    }
}

/// Parse one SQL statement (a trailing semicolon is allowed).
pub fn parse(input: &str) -> DbResult<Statement> {
    let toks = tokenize(input)?;
    let mut p = Parser { toks, pos: 0 };
    let stmt = p.statement()?;
    p.eat_sym(";");
    if *p.peek() != Tok::Eof {
        return p.err("trailing input after statement");
    }
    Ok(stmt)
}

/// Render a [`Query`] back to SQL text. This is the DM's "transformed into
/// regular SQL queries" step (§5.4); [`parse`] accepts everything this emits.
pub fn query_to_sql(q: &Query, schema: &Schema) -> String {
    let mut out = String::from("SELECT ");
    if q.aggregates.is_empty() {
        match &q.projection {
            Projection::All => out.push('*'),
            Projection::Columns(cols) => out.push_str(&cols.join(", ")),
        }
    } else {
        let mut parts: Vec<String> = q.group_by.clone();
        parts.extend(q.aggregates.iter().map(AggFunc::label));
        out.push_str(&parts.join(", "));
    }
    out.push_str(" FROM ");
    out.push_str(&q.table);
    if let Some(f) = &q.filter {
        out.push_str(" WHERE ");
        out.push_str(&f.to_sql(schema));
    }
    if !q.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        out.push_str(&q.group_by.join(", "));
    }
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        let parts: Vec<String> = q
            .order_by
            .iter()
            .map(|(c, d)| format!("{c} {}", if *d == OrderDir::Desc { "DESC" } else { "ASC" }))
            .collect();
        out.push_str(&parts.join(", "));
    }
    if let Some(n) = q.limit {
        out.push_str(&format!(" LIMIT {n}"));
    }
    if let Some(n) = q.offset {
        out.push_str(&format!(" OFFSET {n}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_basics() {
        let toks = tokenize("SELECT a, b FROM t WHERE x >= 1.5 AND y = 'o''k'").unwrap();
        assert!(toks.contains(&Tok::Sym(">=")));
        assert!(toks.contains(&Tok::Float(1.5)));
        assert!(toks.contains(&Tok::Str("o'k".into())));
    }

    #[test]
    fn tokenizer_errors() {
        assert!(tokenize("SELECT 'unterminated").is_err());
        assert!(tokenize("SELECT @").is_err());
        assert!(tokenize("SELECT X'abc'").is_err()); // odd hex
    }

    #[test]
    fn comments_are_skipped() {
        let s = parse("SELECT * FROM t -- trailing comment").unwrap();
        assert!(matches!(s, Statement::Select(_)));
    }

    #[test]
    fn parse_create_table_full() {
        let s = parse(
            "CREATE TABLE hle (id INT NOT NULL, t TIMESTAMP NOT NULL, \
             label TEXT DEFAULT 'none', flux FLOAT, PRIMARY KEY (id))",
        )
        .unwrap();
        let Statement::CreateTable(schema) = s else {
            panic!("not a create table");
        };
        assert_eq!(schema.table, "hle");
        assert_eq!(schema.arity(), 4);
        assert_eq!(schema.primary_key, vec![0]);
        assert_eq!(schema.columns[2].default, Some(Value::Text("none".into())));
    }

    #[test]
    fn parse_create_index() {
        let s = parse("CREATE UNIQUE INDEX ix ON t (a, b)").unwrap();
        let Statement::CreateIndex {
            table,
            name,
            columns,
            unique,
        } = s
        else {
            panic!()
        };
        assert_eq!((table.as_str(), name.as_str(), unique), ("t", "ix", true));
        assert_eq!(columns, vec!["a", "b"]);
    }

    #[test]
    fn parse_insert_multi_row_with_columns() {
        let s = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (-2, NULL)").unwrap();
        let Statement::Insert {
            columns, values, ..
        } = s
        else {
            panic!()
        };
        assert_eq!(columns, Some(vec!["a".to_string(), "b".to_string()]));
        assert_eq!(values.len(), 2);
        assert_eq!(values[1][0], Value::Int(-2));
        assert_eq!(values[1][1], Value::Null);
    }

    #[test]
    fn parse_select_all_clauses() {
        let s = parse(
            "SELECT a, b FROM t WHERE a >= 3 AND b LIKE 'fl%' \
             ORDER BY a DESC, b LIMIT 10 OFFSET 5",
        )
        .unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.table, "t");
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(5));
        assert_eq!(q.order_by.len(), 2);
        assert_eq!(q.order_by[0].1, OrderDir::Desc);
        assert!(q.filter.is_some());
    }

    #[test]
    fn parse_aggregates_and_group_by() {
        let s = parse("SELECT kind, COUNT(*), AVG(dur) FROM ana GROUP BY kind").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.aggregates.len(), 2);
        assert_eq!(q.group_by, vec!["kind"]);
    }

    #[test]
    fn plain_column_without_group_by_is_error() {
        assert!(parse("SELECT kind, COUNT(*) FROM ana").is_err());
    }

    #[test]
    fn count_as_column_name_is_not_an_aggregate() {
        let s = parse("SELECT count FROM t").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.projection, Projection::Columns(vec!["count".into()]));
    }

    #[test]
    fn parse_update_delete() {
        let s = parse("UPDATE t SET a = a + 1, b = 'x' WHERE a < 10").unwrap();
        let Statement::Update { sets, filter, .. } = s else {
            panic!()
        };
        assert_eq!(sets.len(), 2);
        assert!(filter.is_some());

        let s = parse("DELETE FROM t").unwrap();
        let Statement::Delete { filter, .. } = s else {
            panic!()
        };
        assert!(filter.is_none());
    }

    #[test]
    fn parse_not_between_in() {
        let s = parse("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 2 OR b NOT IN (1,2)").unwrap();
        let Statement::Select(q) = s else { panic!() };
        let f = q.filter.unwrap();
        assert!(matches!(f, Expr::Or(_, _)));
    }

    #[test]
    fn parse_is_null() {
        let s = parse("SELECT * FROM t WHERE a IS NOT NULL AND b IS NULL").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert!(q.filter.is_some());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT * FROM t garbage more").is_err());
        assert!(parse("COMMIT extra").is_err());
    }

    #[test]
    fn txn_statements() {
        assert!(matches!(parse("BEGIN").unwrap(), Statement::Begin));
        assert!(matches!(parse("COMMIT;").unwrap(), Statement::Commit));
        assert!(matches!(parse("ROLLBACK").unwrap(), Statement::Rollback));
    }

    #[test]
    fn operator_precedence() {
        // a = 1 OR b = 2 AND c = 3  =>  a=1 OR (b=2 AND c=3)
        let s = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        let Statement::Select(q) = s else { panic!() };
        let Expr::Or(_, rhs) = q.filter.unwrap() else {
            panic!("expected OR at top");
        };
        assert!(matches!(*rhs, Expr::And(_, _)));
    }

    #[test]
    fn arithmetic_precedence() {
        // 1 + 2 * 3 = 7
        let s = parse("SELECT * FROM t WHERE a = 1 + 2 * 3").unwrap();
        let Statement::Select(q) = s else { panic!() };
        let Expr::Cmp(_, _, rhs) = q.filter.unwrap() else {
            panic!()
        };
        assert_eq!(rhs.eval(&[]).unwrap(), Value::Int(7));
    }
}
