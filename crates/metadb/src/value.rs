//! Typed values and column data types.
//!
//! The metadata database stores only small, structured values — the actual
//! science data lives in the file store (see the paper, §4.1/§4.2). `Bytes`
//! exists so that the LOB-versus-filesystem ablation (§4.2) can be measured
//! against the very same engine.

use std::cmp::Ordering;
use std::fmt;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
    /// Milliseconds since an arbitrary mission epoch. RHESSI metadata is
    /// dominated by observation-time ranges, so timestamps are first-class.
    Timestamp,
    /// Raw bytes (LOB). Only used by the ablation benchmarks.
    Bytes,
}

impl DataType {
    /// Human-readable name used in error messages and `CREATE TABLE` output.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Timestamp => "TIMESTAMP",
            DataType::Bytes => "BYTES",
        }
    }

    /// Parse a type name as it appears in SQL DDL (case-insensitive).
    pub fn parse(s: &str) -> Option<DataType> {
        match s.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" => Some(DataType::Int),
            "FLOAT" | "REAL" | "DOUBLE" => Some(DataType::Float),
            "TEXT" | "VARCHAR" | "STRING" => Some(DataType::Text),
            "BOOL" | "BOOLEAN" => Some(DataType::Bool),
            "TIMESTAMP" | "DATETIME" => Some(DataType::Timestamp),
            "BYTES" | "BLOB" | "LOB" => Some(DataType::Bytes),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single cell value.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value. Compared with [`f64::total_cmp`] so `Value` has a total order.
    Float(f64),
    /// Text value.
    Text(String),
    /// Boolean value.
    Bool(bool),
    /// Timestamp in milliseconds since the mission epoch.
    Timestamp(i64),
    /// LOB bytes.
    Bytes(Vec<u8>),
}

impl Value {
    /// The runtime type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INT",
            Value::Float(_) => "FLOAT",
            Value::Text(_) => "TEXT",
            Value::Bool(_) => "BOOL",
            Value::Timestamp(_) => "TIMESTAMP",
            Value::Bytes(_) => "BYTES",
        }
    }

    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value may be stored in a column of type `ty`.
    ///
    /// NULL is compatible with every type; nullability is enforced separately
    /// by the `NOT NULL` constraint. Ints are accepted by timestamp columns
    /// (and vice versa) because both are mission-epoch milliseconds on the
    /// wire.
    pub fn compatible_with(&self, ty: DataType) -> bool {
        #[allow(clippy::match_like_matches_macro)] // table form reads clearer
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Int(_), DataType::Int | DataType::Timestamp) => true,
            (Value::Float(_), DataType::Float) => true,
            (Value::Int(_), DataType::Float) => true,
            (Value::Text(_), DataType::Text) => true,
            (Value::Bool(_), DataType::Bool) => true,
            (Value::Timestamp(_), DataType::Timestamp | DataType::Int) => true,
            (Value::Bytes(_), DataType::Bytes) => true,
            _ => false,
        }
    }

    /// Coerce into the canonical representation for a column type
    /// (e.g. `Int` stored into a `Float` column becomes `Float`).
    pub fn coerce(self, ty: DataType) -> Value {
        match (self, ty) {
            (Value::Int(i), DataType::Float) => Value::Float(i as f64),
            (Value::Int(i), DataType::Timestamp) => Value::Timestamp(i),
            (Value::Timestamp(t), DataType::Int) => Value::Int(t),
            (v, _) => v,
        }
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) | Value::Timestamp(i) => Some(*i),
            _ => None,
        }
    }

    /// Float accessor (ints widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) | Value::Timestamp(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Text accessor.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Three-valued-logic accessor: `Some(bool)` for BOOL, `None` for NULL
    /// (UNKNOWN), error for anything else. Used by the predicate evaluator.
    pub fn as_bool_tvl(&self) -> Result<Option<bool>, crate::error::DbError> {
        match self {
            Value::Bool(b) => Ok(Some(*b)),
            Value::Null => Ok(None),
            other => Err(crate::error::DbError::TypeMismatch {
                column: "<predicate>".into(),
                expected: "BOOL",
                got: other.type_name(),
            }),
        }
    }

    /// Bytes accessor.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Approximate in-memory size in bytes, used by the pool statistics and
    /// the LOB ablation to report data volumes.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) | Value::Timestamp(_) | Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Text(s) => s.len() + 8,
            Value::Bytes(b) => b.len() + 8,
        }
    }

    /// Actual allocated footprint: the enum slot plus any heap capacity
    /// (not just the initialized length). This is the cache-accounting
    /// unit — a `Text` built through repeated pushes can hold twice its
    /// `len` in capacity, and [`Value::size_bytes`] would under-charge it.
    pub fn alloc_bytes(&self) -> usize {
        std::mem::size_of::<Value>()
            + match self {
                Value::Text(s) => s.capacity(),
                Value::Bytes(b) => b.capacity(),
                _ => 0,
            }
    }

    /// Render as a SQL literal (used when generating SQL text and when
    /// serializing the redo log in its debug form).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                // Keep a trailing `.0` so the literal parses back as a float.
                let s = f.to_string();
                if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            // Timestamps travel as plain integers; Int is storable into
            // Timestamp columns, so the literal round-trips.
            Value::Timestamp(t) => t.to_string(),
            Value::Bytes(b) => {
                let mut out = String::with_capacity(2 + b.len() * 2);
                out.push_str("X'");
                for byte in b {
                    out.push_str(&format!("{byte:02x}"));
                }
                out.push('\'');
                out
            }
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Timestamp(_) | Value::Float(_) => 2,
            Value::Text(_) => 3,
            Value::Bytes(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order across all values: NULL < BOOL < numeric < TEXT < BYTES.
    /// Ints, floats, and timestamps compare numerically among each other so
    /// that `WHERE time_start >= 12000` works regardless of literal type.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (a, b) if a.rank() == 2 && b.rank() == 2 => {
                // Numeric comparison; use total_cmp on f64 for a total order.
                match (a, b) {
                    (Int(x), Int(y)) => x.cmp(y),
                    (Timestamp(x), Timestamp(y)) => x.cmp(y),
                    (Int(x), Timestamp(y)) | (Timestamp(x), Int(y)) => x.cmp(y),
                    _ => {
                        let x = a.as_float().expect("numeric");
                        let y = b.as_float().expect("numeric");
                        x.total_cmp(&y)
                    }
                }
            }
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Int(i) | Value::Timestamp(i) => (*i as f64).to_bits().hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Text(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Bytes(b) => b.hash(state),
        }
    }
}

impl fmt::Display for Value {
    /// Human-facing rendering: text is unquoted, timestamps are `@millis`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(t) => write!(f, "@{t}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_roundtrip() {
        for ty in [
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bool,
            DataType::Timestamp,
            DataType::Bytes,
        ] {
            assert_eq!(DataType::parse(ty.name()), Some(ty));
        }
        assert_eq!(DataType::parse("nonsense"), None);
    }

    #[test]
    fn numeric_cross_type_ordering() {
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(1.5) < Value::Int(2));
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(Value::Int(7), Value::Timestamp(7));
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Null < Value::Text(String::new()));
    }

    #[test]
    fn rank_ordering_between_types() {
        assert!(Value::Bool(true) < Value::Int(0));
        assert!(Value::Int(i64::MAX) < Value::Text("".into()));
        assert!(Value::Text("zzz".into()) < Value::Bytes(vec![]));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        // total_cmp puts NaN above +inf; the key property is that it's a
        // total order that never panics.
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn compatibility_and_coercion() {
        assert!(Value::Int(5).compatible_with(DataType::Float));
        assert!(Value::Null.compatible_with(DataType::Bool));
        assert!(!Value::Text("x".into()).compatible_with(DataType::Int));
        assert_eq!(Value::Int(5).coerce(DataType::Float), Value::Float(5.0));
        assert_eq!(
            Value::Int(99).coerce(DataType::Timestamp),
            Value::Timestamp(99)
        );
    }

    #[test]
    fn sql_literal_escaping() {
        assert_eq!(Value::Text("o'brien".into()).to_sql_literal(), "'o''brien'");
        assert_eq!(Value::Float(2.0).to_sql_literal(), "2.0");
        assert_eq!(Value::Bytes(vec![0xab, 0x01]).to_sql_literal(), "X'ab01'");
    }

    #[test]
    fn size_accounting() {
        assert_eq!(Value::Int(0).size_bytes(), 8);
        assert_eq!(Value::Text("abcd".into()).size_bytes(), 12);
        assert_eq!(Value::Bytes(vec![0; 100]).size_bytes(), 108);
    }
}
