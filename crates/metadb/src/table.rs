//! Tables: row storage plus attached indexes, over one of two backings.
//!
//! A [`Table`] presents identical semantics — stable row-id slots, a
//! LIFO free list, constraint checking, index maintenance — regardless
//! of where the rows physically live:
//!
//! - **Memory** (the default): rows in a `Vec` heap, indexes in
//!   `BTreeMap`s. Fast, but bounded by RAM and readers must hold the
//!   database catalog lock.
//! - **Paged**: rows and indexes in [`hedc_store`] copy-on-write
//!   B-trees behind a budgeted page cache. Tables can exceed RAM, and
//!   point-in-time [`TableSnapshot`]s serve readers without any lock
//!   shared with the writer.
//!
//! All constraint checking (types, NOT NULL, uniqueness) happens here so
//! that every caller — SQL, DM query objects, recovery replay — gets
//! identical semantics, and so that redo-log replay assigns the same
//! row ids on either backing.

use crate::error::{DbError, DbResult};
use crate::index::{Index, RowId};
use crate::paged::{PagedTable, TableSnapshot};
use crate::schema::Schema;
use crate::value::Value;
use hedc_store::Store;
use std::borrow::Cow;
use std::ops::Bound;
use std::sync::Arc;

/// A table. See the module docs for the two backings.
#[derive(Debug)]
pub struct Table {
    schema: Schema,
    live: usize,
    data_bytes: usize,
    backing: Backing,
}

#[derive(Debug)]
enum Backing {
    Memory {
        rows: Vec<Option<Vec<Value>>>,
        free: Vec<usize>,
        indexes: Vec<Index>,
    },
    Paged(PagedTable),
}

impl Table {
    /// Create an empty in-memory table. If the schema declares a primary
    /// key, a unique index named `<table>_pk` is created automatically.
    pub fn new(schema: Schema) -> Self {
        let mut indexes = Vec::new();
        if !schema.primary_key.is_empty() {
            let cols = schema.primary_key.clone();
            let name = format!("{}_pk", schema.table);
            indexes.push(Index::new(name, cols, true));
        }
        Table {
            live: 0,
            data_bytes: 0,
            backing: Backing::Memory {
                rows: Vec::new(),
                free: Vec::new(),
                indexes,
            },
            schema,
        }
    }

    /// Create an empty paged table whose rows and indexes live in
    /// `store`. The implicit `<table>_pk` index is created exactly as in
    /// the memory backing.
    pub fn new_paged(schema: Schema, store: Arc<Store>) -> DbResult<Self> {
        let paged = PagedTable::new(store, &schema)?;
        Ok(Table {
            live: 0,
            data_bytes: 0,
            backing: Backing::Paged(paged),
            schema,
        })
    }

    /// Whether this table uses the paged backing.
    pub fn is_paged(&self) -> bool {
        matches!(self.backing, Backing::Paged(_))
    }

    /// Freeze the current committed state into a lock-free snapshot.
    /// Returns `None` for memory-backed tables, which have no
    /// independent committed state to freeze.
    pub fn freeze(&self) -> Option<TableSnapshot> {
        match &self.backing {
            Backing::Paged(p) => Some(p.freeze(&self.schema, self.live, self.data_bytes)),
            Backing::Memory { .. } => None,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Approximate bytes of live row data (drives the pool's volume stats).
    pub fn data_bytes(&self) -> usize {
        self.data_bytes
    }

    /// Attached indexes, as backing-agnostic views.
    pub fn indexes(&self) -> Vec<IndexRef<'_>> {
        match &self.backing {
            Backing::Memory { indexes, .. } => indexes
                .iter()
                .map(|ix| IndexRef(IndexRefInner::Memory(ix)))
                .collect(),
            Backing::Paged(p) => (0..p.indexes.len())
                .map(|pos| IndexRef(IndexRefInner::Paged { table: p, pos }))
                .collect(),
        }
    }

    fn index_names(&self) -> Vec<String> {
        match &self.backing {
            Backing::Memory { indexes, .. } => indexes.iter().map(|ix| ix.name.clone()).collect(),
            Backing::Paged(p) => p.indexes.iter().map(|ix| ix.name.clone()).collect(),
        }
    }

    /// Create a secondary index over the named columns, backfilling from
    /// existing rows. `unique` enforces key uniqueness (including backfill).
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        columns: &[&str],
        unique: bool,
    ) -> DbResult<()> {
        let name = name.into();
        if self.index_names().iter().any(|n| *n == name) {
            return Err(DbError::IndexExists(name));
        }
        let cols = columns
            .iter()
            .map(|c| self.schema.require_column(c))
            .collect::<DbResult<Vec<_>>>()?;
        match &mut self.backing {
            Backing::Memory { rows, indexes, .. } => {
                let mut ix = Index::new(name, cols, unique);
                for (slot, row) in rows.iter().enumerate() {
                    if let Some(row) = row {
                        ix.check_unique(row)?;
                        ix.insert(row, slot as RowId);
                    }
                }
                indexes.push(ix);
                Ok(())
            }
            Backing::Paged(p) => p.create_index(name, cols, unique),
        }
    }

    /// Drop an index by name. The implicit primary-key index cannot be
    /// dropped.
    pub fn drop_index(&mut self, name: &str) -> DbResult<()> {
        let pk_name = format!("{}_pk", self.schema.table);
        if name == pk_name {
            return Err(DbError::Unsupported("cannot drop primary key index".into()));
        }
        let pos = self
            .index_names()
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| DbError::NoSuchIndex(name.to_string()))?;
        match &mut self.backing {
            Backing::Memory { indexes, .. } => {
                indexes.remove(pos);
            }
            Backing::Paged(p) => p.drop_index(pos),
        }
        Ok(())
    }

    /// Find an index by name.
    pub fn index(&self, name: &str) -> Option<IndexRef<'_>> {
        let pos = self.index_names().iter().position(|n| n == name)?;
        Some(self.indexes().swap_remove(pos))
    }

    /// Position of the best index whose first key column is `col`
    /// (prefers unique).
    pub(crate) fn index_pos_on(&self, col: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        let ixs = self.indexes();
        for (i, ix) in ixs.iter().enumerate() {
            if ix.columns().first() == Some(&col) {
                match best {
                    Some(b) if ixs[b].unique() && !ix.unique() => {}
                    _ => best = Some(i),
                }
            }
        }
        best
    }

    /// Find the best index whose first key column is `col` (prefers unique).
    pub fn index_on(&self, col: usize) -> Option<IndexRef<'_>> {
        let pos = self.index_pos_on(col)?;
        Some(self.indexes().swap_remove(pos))
    }

    /// Validate and insert a row; returns its id.
    pub fn insert(&mut self, values: Vec<Value>) -> DbResult<RowId> {
        let row = self.schema.check_row(values, true)?;
        let bytes = row_bytes(&row);
        let id = match &mut self.backing {
            Backing::Memory {
                rows,
                free,
                indexes,
            } => {
                for ix in indexes.iter() {
                    ix.check_unique(&row)?;
                }
                let slot = match free.pop() {
                    Some(s) => s,
                    None => {
                        rows.push(None);
                        rows.len() - 1
                    }
                };
                let id = slot as RowId;
                for ix in indexes.iter_mut() {
                    ix.insert(&row, id);
                }
                rows[slot] = Some(row);
                id
            }
            Backing::Paged(p) => p.insert(&row)?,
        };
        self.data_bytes += bytes;
        self.live += 1;
        Ok(id)
    }

    /// Insert a row into a *specific* slot. Used by recovery replay (slot
    /// assignments must match the original run) and by rollback of deletes.
    pub(crate) fn insert_at(&mut self, id: RowId, values: Vec<Value>) -> DbResult<()> {
        let row = self.schema.check_row(values, false)?;
        let bytes = row_bytes(&row);
        match &mut self.backing {
            Backing::Memory {
                rows,
                free,
                indexes,
            } => {
                for ix in indexes.iter() {
                    ix.check_unique(&row)?;
                }
                let slot = id as usize;
                if slot >= rows.len() {
                    // Extend the heap; intermediate slots become free.
                    for i in rows.len()..slot {
                        free.push(i);
                    }
                    rows.resize_with(slot + 1, || None);
                } else {
                    if rows[slot].is_some() {
                        return Err(DbError::Txn(format!("slot {id} already occupied")));
                    }
                    if let Some(pos) = free.iter().position(|&f| f == slot) {
                        free.swap_remove(pos);
                    }
                }
                for ix in indexes.iter_mut() {
                    ix.insert(&row, id);
                }
                rows[slot] = Some(row);
            }
            Backing::Paged(p) => p.insert_at(id, &row)?,
        }
        self.data_bytes += bytes;
        self.live += 1;
        Ok(())
    }

    /// Fetch a row by id. Borrowed from the heap for memory tables,
    /// decoded (owned) for paged ones.
    pub fn get(&self, id: RowId) -> DbResult<Cow<'_, [Value]>> {
        match &self.backing {
            Backing::Memory { rows, .. } => rows
                .get(id as usize)
                .and_then(|r| r.as_deref())
                .map(Cow::Borrowed)
                .ok_or(DbError::NoSuchRow(id)),
            Backing::Paged(p) => p.get(id).map(Cow::Owned),
        }
    }

    /// Replace a full row; returns the previous values.
    pub fn update(&mut self, id: RowId, values: Vec<Value>) -> DbResult<Vec<Value>> {
        let new_row = self.schema.check_row(values, false)?;
        let new_bytes = row_bytes(&new_row);
        let old = match &mut self.backing {
            Backing::Memory { rows, indexes, .. } => {
                let slot = id as usize;
                let old = rows
                    .get(slot)
                    .and_then(|r| r.as_ref())
                    .cloned()
                    .ok_or(DbError::NoSuchRow(id))?;
                // Unique checks must ignore this row's own current key.
                for ix in indexes.iter() {
                    if ix.unique {
                        let old_key = ix.key_of(&old);
                        let new_key = ix.key_of(&new_row);
                        if old_key != new_key {
                            ix.check_unique(&new_row)?;
                        }
                    }
                }
                for ix in indexes.iter_mut() {
                    ix.remove(&old, id);
                    ix.insert(&new_row, id);
                }
                rows[slot] = Some(new_row);
                old
            }
            Backing::Paged(p) => p.update(id, &new_row)?,
        };
        self.data_bytes = self.data_bytes + new_bytes - row_bytes(&old);
        Ok(old)
    }

    /// Replace many rows as one statement; returns previous values in
    /// batch order. All-or-nothing on both backings: the paged backing
    /// applies the whole batch in a single store transaction (one
    /// commit, one snapshot refresh — the bulk-update fast path), the
    /// memory backing compensates already-applied rows in reverse on a
    /// mid-batch failure.
    pub fn update_batch(&mut self, updates: Vec<(RowId, Vec<Value>)>) -> DbResult<Vec<Vec<Value>>> {
        if !self.is_paged() {
            let mut olds: Vec<Vec<Value>> = Vec::with_capacity(updates.len());
            let mut done: Vec<RowId> = Vec::with_capacity(updates.len());
            for (id, new_row) in updates {
                match self.update(id, new_row) {
                    Ok(old) => {
                        done.push(id);
                        olds.push(old);
                    }
                    Err(e) => {
                        for (id, old) in done.into_iter().zip(olds).rev() {
                            self.update(id, old)
                                .expect("compensating update restores prior value");
                        }
                        return Err(e);
                    }
                }
            }
            return Ok(olds);
        }
        let mut checked = Vec::with_capacity(updates.len());
        for (id, values) in updates {
            checked.push((id, self.schema.check_row(values, false)?));
        }
        let new_bytes: usize = checked.iter().map(|(_, r)| row_bytes(r)).sum();
        let olds = match &mut self.backing {
            Backing::Paged(p) => p.update_many(&checked)?,
            Backing::Memory { .. } => unreachable!("memory backing handled above"),
        };
        let old_bytes: usize = olds.iter().map(|r| row_bytes(r)).sum();
        self.data_bytes = self.data_bytes + new_bytes - old_bytes;
        Ok(olds)
    }

    /// Delete a row; returns its former values.
    pub fn delete(&mut self, id: RowId) -> DbResult<Vec<Value>> {
        let old = match &mut self.backing {
            Backing::Memory {
                rows,
                free,
                indexes,
            } => {
                let slot = id as usize;
                let old = rows
                    .get_mut(slot)
                    .and_then(Option::take)
                    .ok_or(DbError::NoSuchRow(id))?;
                for ix in indexes.iter_mut() {
                    ix.remove(&old, id);
                }
                free.push(slot);
                old
            }
            Backing::Paged(p) => p.delete(id)?,
        };
        self.data_bytes -= row_bytes(&old);
        self.live -= 1;
        Ok(old)
    }

    /// Iterate live rows in slot order.
    pub fn scan(&self) -> Box<dyn Iterator<Item = (RowId, Cow<'_, [Value]>)> + '_> {
        match &self.backing {
            Backing::Memory { rows, .. } => Box::new(
                rows.iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.as_deref().map(|row| (i as RowId, Cow::Borrowed(row)))),
            ),
            Backing::Paged(p) => {
                let rows = p.scan_rows().unwrap_or_default();
                Box::new(rows.into_iter().map(|(id, r)| (id, Cow::Owned(r))))
            }
        }
    }

    /// Live row ids in slot order (cheaper than [`Table::scan`] for the
    /// planner's full-scan candidate list: no row decoding on the paged
    /// backing).
    pub fn scan_ids(&self) -> Vec<RowId> {
        match &self.backing {
            Backing::Memory { rows, .. } => rows
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.as_ref().map(|_| i as RowId))
                .collect(),
            Backing::Paged(p) => p.scan_ids(),
        }
    }
}

/// A backing-agnostic read view of one index.
pub struct IndexRef<'t>(IndexRefInner<'t>);

enum IndexRefInner<'t> {
    Memory(&'t Index),
    Paged { table: &'t PagedTable, pos: usize },
}

impl IndexRef<'_> {
    /// Index name (unique per database).
    pub fn name(&self) -> &str {
        match &self.0 {
            IndexRefInner::Memory(ix) => &ix.name,
            IndexRefInner::Paged { table, pos } => &table.indexes[*pos].name,
        }
    }

    /// Positions of the indexed columns, in key order.
    pub fn columns(&self) -> &[usize] {
        match &self.0 {
            IndexRefInner::Memory(ix) => &ix.columns,
            IndexRefInner::Paged { table, pos } => &table.indexes[*pos].columns,
        }
    }

    /// Whether duplicate keys are rejected.
    pub fn unique(&self) -> bool {
        match &self.0 {
            IndexRefInner::Memory(ix) => ix.unique,
            IndexRefInner::Paged { table, pos } => table.indexes[*pos].unique,
        }
    }

    /// Number of (key, rowid) entries.
    pub fn len(&self) -> usize {
        match &self.0 {
            IndexRefInner::Memory(ix) => ix.len(),
            IndexRefInner::Paged { table, pos } => table.indexes[*pos].len(),
        }
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact-key lookup.
    pub fn get(&self, key: &[Value]) -> Vec<RowId> {
        match &self.0 {
            IndexRefInner::Memory(ix) => ix.get(key).to_vec(),
            IndexRefInner::Paged { table, pos } => table.index_get(*pos, key),
        }
    }

    /// Range scan: equality prefix plus bounds on the next key column.
    /// See [`Index::range`] for the exact contract.
    pub fn range(
        &self,
        eq_prefix: &[Value],
        low: Bound<&Value>,
        high: Bound<&Value>,
    ) -> Vec<RowId> {
        match &self.0 {
            IndexRefInner::Memory(ix) => ix.range(eq_prefix, low, high),
            IndexRefInner::Paged { table, pos } => table.index_range(*pos, eq_prefix, low, high),
        }
    }
}

fn row_bytes(row: &[Value]) -> usize {
    row.iter().map(Value::size_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;
    use hedc_store::StoreOptions;

    fn schema() -> Schema {
        Schema::new(
            "hle",
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("time_start", DataType::Timestamp).not_null(),
                ColumnDef::new("label", DataType::Text),
            ],
        )
        .primary_key(&["id"])
    }

    /// Both backings, so every test below covers memory and paged. The
    /// paged store uses tiny pages to force real B-tree splits.
    fn tables() -> Vec<Table> {
        let store = Arc::new(
            Store::open(StoreOptions {
                path: None,
                page_size: 512,
                cache_pages: 32,
            })
            .unwrap(),
        );
        vec![
            Table::new(schema()),
            Table::new_paged(schema(), store).unwrap(),
        ]
    }

    fn row(id: i64, t: i64, label: &str) -> Vec<Value> {
        vec![Value::Int(id), Value::Int(t), Value::Text(label.into())]
    }

    #[test]
    fn pk_index_created_automatically() {
        for t in tables() {
            assert_eq!(t.indexes().len(), 1);
            assert_eq!(t.indexes()[0].name(), "hle_pk");
            assert!(t.indexes()[0].unique());
        }
    }

    #[test]
    fn insert_get_scan() {
        for mut t in tables() {
            let a = t.insert(row(1, 100, "flare")).unwrap();
            let b = t.insert(row(2, 200, "grb")).unwrap();
            assert_ne!(a, b);
            assert_eq!(t.len(), 2);
            assert_eq!(t.get(a).unwrap()[2], Value::Text("flare".into()));
            assert_eq!(t.scan().count(), 2);
        }
    }

    #[test]
    fn pk_uniqueness_enforced() {
        for mut t in tables() {
            t.insert(row(1, 100, "a")).unwrap();
            let err = t.insert(row(1, 200, "b")).unwrap_err();
            assert!(matches!(err, DbError::UniqueViolation { .. }));
        }
    }

    #[test]
    fn delete_recycles_slots() {
        for mut t in tables() {
            let a = t.insert(row(1, 100, "a")).unwrap();
            t.delete(a).unwrap();
            assert_eq!(t.len(), 0);
            assert!(t.get(a).is_err());
            let b = t.insert(row(2, 200, "b")).unwrap();
            // Slot reuse is an implementation detail, but the free list
            // must behave identically on both backings so WAL replay
            // assigns the same ids.
            assert_eq!(b, a);
            // Index no longer returns the deleted row's key.
            assert!(t.indexes()[0].get(&[Value::Int(1)]).is_empty());
        }
    }

    #[test]
    fn update_maintains_indexes_and_uniqueness() {
        for mut t in tables() {
            let a = t.insert(row(1, 100, "a")).unwrap();
            t.insert(row(2, 200, "b")).unwrap();
            // Updating to a conflicting pk fails.
            let err = t.update(a, row(2, 100, "a")).unwrap_err();
            assert!(matches!(err, DbError::UniqueViolation { .. }));
            // Updating in place with the same pk succeeds.
            t.update(a, row(1, 150, "a2")).unwrap();
            assert_eq!(t.get(a).unwrap()[1], Value::Timestamp(150));
            assert_eq!(t.indexes()[0].get(&[Value::Int(1)]), &[a]);
        }
    }

    #[test]
    fn secondary_index_backfill_and_range() {
        for mut t in tables() {
            for i in 0..20 {
                t.insert(row(i, i * 10, "e")).unwrap();
            }
            t.create_index("hle_time", &["time_start"], false).unwrap();
            let ix = t.index("hle_time").unwrap();
            let ids = ix.range(
                &[],
                std::ops::Bound::Included(&Value::Int(50)),
                std::ops::Bound::Included(&Value::Int(90)),
            );
            assert_eq!(ids.len(), 5);
        }
    }

    #[test]
    fn unique_secondary_index_backfill_detects_duplicates() {
        for mut t in tables() {
            t.insert(row(1, 100, "x")).unwrap();
            t.insert(row(2, 100, "y")).unwrap();
            let err = t.create_index("u_time", &["time_start"], true).unwrap_err();
            assert!(matches!(err, DbError::UniqueViolation { .. }));
            // Failed creation leaves no residue.
            assert!(t.index("u_time").is_none());
        }
    }

    #[test]
    fn data_bytes_tracked() {
        for mut t in tables() {
            assert_eq!(t.data_bytes(), 0);
            let a = t.insert(row(1, 100, "abcd")).unwrap();
            let sz = t.data_bytes();
            assert!(sz > 0);
            t.delete(a).unwrap();
            assert_eq!(t.data_bytes(), 0);
        }
    }

    #[test]
    fn index_on_prefers_unique() {
        for mut t in tables() {
            t.create_index("id_dup", &["id"], false).unwrap();
            let ix = t.index_on(0).unwrap();
            assert_eq!(ix.name(), "hle_pk");
        }
    }

    #[test]
    fn insert_at_extends_heap_identically_on_both_backings() {
        let mut results = Vec::new();
        for mut t in tables() {
            // Replay-style insert into slot 5 leaves 0..5 free (LIFO), so
            // subsequent inserts drain 4, 3, 2, ...
            t.insert_at(5, row(50, 500, "at5")).unwrap();
            let a = t.insert(row(1, 100, "a")).unwrap();
            let b = t.insert(row(2, 200, "b")).unwrap();
            // Occupied slot is rejected.
            assert!(t.insert_at(5, row(9, 900, "dup")).is_err());
            results.push((a, b, t.scan_ids()));
        }
        assert_eq!(results[0], results[1], "backings diverged on slot policy");
    }

    #[test]
    fn paged_snapshot_isolated_from_later_writes() {
        let mut t = tables().remove(1);
        t.insert(row(1, 100, "before")).unwrap();
        let snap = t.freeze().expect("paged tables freeze");
        t.insert(row(2, 200, "after")).unwrap();
        t.update(0, row(1, 150, "changed")).unwrap();
        // The frozen view still sees exactly one unmodified row.
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.scan_ids(), vec![0]);
        assert_eq!(snap.get(0).unwrap()[2], Value::Text("before".into()));
        assert!(snap.get(1).is_none());
        // The live table sees both.
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0).unwrap()[2], Value::Text("changed".into()));
    }
}
