//! Heap tables: slotted row storage plus attached indexes.

use crate::error::{DbError, DbResult};
use crate::index::{Index, RowId};
use crate::schema::Schema;
use crate::value::Value;

/// A heap table. Rows live in stable slots; deleted slots are recycled via a
/// free list. All constraint checking (types, NOT NULL, uniqueness) happens
/// here so that every caller — SQL, DM query objects, recovery replay — gets
/// identical semantics.
#[derive(Debug)]
pub struct Table {
    schema: Schema,
    rows: Vec<Option<Vec<Value>>>,
    free: Vec<usize>,
    live: usize,
    indexes: Vec<Index>,
    data_bytes: usize,
}

impl Table {
    /// Create an empty table. If the schema declares a primary key, a unique
    /// index named `<table>_pk` is created automatically.
    pub fn new(schema: Schema) -> Self {
        let mut t = Table {
            indexes: Vec::new(),
            rows: Vec::new(),
            free: Vec::new(),
            live: 0,
            data_bytes: 0,
            schema,
        };
        if !t.schema.primary_key.is_empty() {
            let cols = t.schema.primary_key.clone();
            let name = format!("{}_pk", t.schema.table);
            t.indexes.push(Index::new(name, cols, true));
        }
        t
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Approximate bytes of live row data (drives the pool's volume stats).
    pub fn data_bytes(&self) -> usize {
        self.data_bytes
    }

    /// Attached indexes.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Create a secondary index over the named columns, backfilling from
    /// existing rows. `unique` enforces key uniqueness (including backfill).
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        columns: &[&str],
        unique: bool,
    ) -> DbResult<()> {
        let name = name.into();
        if self.indexes.iter().any(|ix| ix.name == name) {
            return Err(DbError::IndexExists(name));
        }
        let cols = columns
            .iter()
            .map(|c| self.schema.require_column(c))
            .collect::<DbResult<Vec<_>>>()?;
        let mut ix = Index::new(name, cols, unique);
        for (slot, row) in self.rows.iter().enumerate() {
            if let Some(row) = row {
                ix.check_unique(row)?;
                ix.insert(row, slot as RowId);
            }
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// Drop an index by name. The implicit primary-key index cannot be
    /// dropped.
    pub fn drop_index(&mut self, name: &str) -> DbResult<()> {
        let pk_name = format!("{}_pk", self.schema.table);
        if name == pk_name {
            return Err(DbError::Unsupported("cannot drop primary key index".into()));
        }
        let pos = self
            .indexes
            .iter()
            .position(|ix| ix.name == name)
            .ok_or_else(|| DbError::NoSuchIndex(name.to_string()))?;
        self.indexes.remove(pos);
        Ok(())
    }

    /// Find an index by name.
    pub fn index(&self, name: &str) -> Option<&Index> {
        self.indexes.iter().find(|ix| ix.name == name)
    }

    /// Find the best index whose first key column is `col` (prefers unique).
    pub fn index_on(&self, col: usize) -> Option<&Index> {
        let mut best: Option<&Index> = None;
        for ix in &self.indexes {
            if ix.columns.first() == Some(&col) {
                match best {
                    Some(b) if b.unique && !ix.unique => {}
                    _ => best = Some(ix),
                }
            }
        }
        best
    }

    /// Validate and insert a row; returns its id.
    pub fn insert(&mut self, values: Vec<Value>) -> DbResult<RowId> {
        let row = self.schema.check_row(values, true)?;
        for ix in &self.indexes {
            ix.check_unique(&row)?;
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.rows.push(None);
                self.rows.len() - 1
            }
        };
        let id = slot as RowId;
        self.data_bytes += row_bytes(&row);
        for ix in &mut self.indexes {
            ix.insert(&row, id);
        }
        self.rows[slot] = Some(row);
        self.live += 1;
        Ok(id)
    }

    /// Insert a row into a *specific* slot. Used by recovery replay (slot
    /// assignments must match the original run) and by rollback of deletes.
    pub(crate) fn insert_at(&mut self, id: RowId, values: Vec<Value>) -> DbResult<()> {
        let row = self.schema.check_row(values, false)?;
        for ix in &self.indexes {
            ix.check_unique(&row)?;
        }
        let slot = id as usize;
        if slot >= self.rows.len() {
            // Extend the heap; intermediate slots become free.
            for i in self.rows.len()..slot {
                self.free.push(i);
            }
            self.rows.resize_with(slot + 1, || None);
        } else {
            if self.rows[slot].is_some() {
                return Err(DbError::Txn(format!("slot {id} already occupied")));
            }
            if let Some(pos) = self.free.iter().position(|&f| f == slot) {
                self.free.swap_remove(pos);
            }
        }
        self.data_bytes += row_bytes(&row);
        for ix in &mut self.indexes {
            ix.insert(&row, id);
        }
        self.rows[slot] = Some(row);
        self.live += 1;
        Ok(())
    }

    /// Fetch a row by id.
    pub fn get(&self, id: RowId) -> DbResult<&[Value]> {
        self.rows
            .get(id as usize)
            .and_then(|r| r.as_deref())
            .ok_or(DbError::NoSuchRow(id))
    }

    /// Replace a full row; returns the previous values.
    pub fn update(&mut self, id: RowId, values: Vec<Value>) -> DbResult<Vec<Value>> {
        let new_row = self.schema.check_row(values, false)?;
        let slot = id as usize;
        let old = self
            .rows
            .get(slot)
            .and_then(|r| r.as_ref())
            .cloned()
            .ok_or(DbError::NoSuchRow(id))?;
        // Unique checks must ignore this row's own current key.
        for ix in &self.indexes {
            if ix.unique {
                let old_key = ix.key_of(&old);
                let new_key = ix.key_of(&new_row);
                if old_key != new_key {
                    ix.check_unique(&new_row)?;
                }
            }
        }
        for ix in &mut self.indexes {
            ix.remove(&old, id);
            ix.insert(&new_row, id);
        }
        self.data_bytes = self.data_bytes + row_bytes(&new_row) - row_bytes(&old);
        self.rows[slot] = Some(new_row);
        Ok(old)
    }

    /// Delete a row; returns its former values.
    pub fn delete(&mut self, id: RowId) -> DbResult<Vec<Value>> {
        let slot = id as usize;
        let old = self
            .rows
            .get_mut(slot)
            .and_then(Option::take)
            .ok_or(DbError::NoSuchRow(id))?;
        for ix in &mut self.indexes {
            ix.remove(&old, id);
        }
        self.data_bytes -= row_bytes(&old);
        self.free.push(slot);
        self.live -= 1;
        Ok(old)
    }

    /// Iterate live rows in slot order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &[Value])> + '_ {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_deref().map(|row| (i as RowId, row)))
    }
}

fn row_bytes(row: &[Value]) -> usize {
    row.iter().map(Value::size_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn table() -> Table {
        Table::new(
            Schema::new(
                "hle",
                vec![
                    ColumnDef::new("id", DataType::Int).not_null(),
                    ColumnDef::new("time_start", DataType::Timestamp).not_null(),
                    ColumnDef::new("label", DataType::Text),
                ],
            )
            .primary_key(&["id"]),
        )
    }

    fn row(id: i64, t: i64, label: &str) -> Vec<Value> {
        vec![Value::Int(id), Value::Int(t), Value::Text(label.into())]
    }

    #[test]
    fn pk_index_created_automatically() {
        let t = table();
        assert_eq!(t.indexes().len(), 1);
        assert_eq!(t.indexes()[0].name, "hle_pk");
        assert!(t.indexes()[0].unique);
    }

    #[test]
    fn insert_get_scan() {
        let mut t = table();
        let a = t.insert(row(1, 100, "flare")).unwrap();
        let b = t.insert(row(2, 200, "grb")).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).unwrap()[2], Value::Text("flare".into()));
        assert_eq!(t.scan().count(), 2);
    }

    #[test]
    fn pk_uniqueness_enforced() {
        let mut t = table();
        t.insert(row(1, 100, "a")).unwrap();
        let err = t.insert(row(1, 200, "b")).unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
    }

    #[test]
    fn delete_recycles_slots() {
        let mut t = table();
        let a = t.insert(row(1, 100, "a")).unwrap();
        t.delete(a).unwrap();
        assert_eq!(t.len(), 0);
        assert!(t.get(a).is_err());
        let b = t.insert(row(2, 200, "b")).unwrap();
        // Slot reuse is an implementation detail, but the free list should
        // keep the heap compact for this pattern.
        assert_eq!(b, a);
        // Index no longer returns the deleted row's key.
        assert!(t.indexes()[0].get(&[Value::Int(1)]).is_empty());
    }

    #[test]
    fn update_maintains_indexes_and_uniqueness() {
        let mut t = table();
        let a = t.insert(row(1, 100, "a")).unwrap();
        t.insert(row(2, 200, "b")).unwrap();
        // Updating to a conflicting pk fails.
        let err = t.update(a, row(2, 100, "a")).unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        // Updating in place with the same pk succeeds.
        t.update(a, row(1, 150, "a2")).unwrap();
        assert_eq!(t.get(a).unwrap()[1], Value::Timestamp(150));
        assert_eq!(t.indexes()[0].get(&[Value::Int(1)]), &[a]);
    }

    #[test]
    fn secondary_index_backfill_and_range() {
        let mut t = table();
        for i in 0..20 {
            t.insert(row(i, i * 10, "e")).unwrap();
        }
        t.create_index("hle_time", &["time_start"], false).unwrap();
        let ix = t.index("hle_time").unwrap();
        let ids = ix.range(
            &[],
            std::ops::Bound::Included(&Value::Int(50)),
            std::ops::Bound::Included(&Value::Int(90)),
        );
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn unique_secondary_index_backfill_detects_duplicates() {
        let mut t = table();
        t.insert(row(1, 100, "x")).unwrap();
        t.insert(row(2, 100, "y")).unwrap();
        let err = t.create_index("u_time", &["time_start"], true).unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        // Failed creation leaves no residue.
        assert!(t.index("u_time").is_none());
    }

    #[test]
    fn data_bytes_tracked() {
        let mut t = table();
        assert_eq!(t.data_bytes(), 0);
        let a = t.insert(row(1, 100, "abcd")).unwrap();
        let sz = t.data_bytes();
        assert!(sz > 0);
        t.delete(a).unwrap();
        assert_eq!(t.data_bytes(), 0);
    }

    #[test]
    fn index_on_prefers_unique() {
        let mut t = table();
        t.create_index("id_dup", &["id"], false).unwrap();
        let ix = t.index_on(0).unwrap();
        assert_eq!(ix.name, "hle_pk");
    }
}
