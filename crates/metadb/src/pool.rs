//! Connection pooling.
//!
//! "Creating database connections and user sessions are the two most
//! expensive parts of request processing" (§5.3). HEDC therefore pools
//! connections, and splits the pool into separate pools for query
//! processing, updates, and user authentication, releasing connections
//! "immediately ... after the result set has been copied".
//!
//! Real connection setup cost (network round-trips, authentication against
//! the DBMS) does not exist for an embedded engine, so the pool models it
//! explicitly with a configurable `creation_cost`; the pooling ablation
//! bench (A4) measures throughput with the pool on and off under that cost.

use crate::db::{Connection, Database};
use crate::error::{DbError, DbResult};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which of the three split pools a caller wants (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Read-only query processing.
    Query,
    /// DML / updates.
    Update,
    /// User authentication checks.
    Auth,
}

/// Pool usage statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Connections handed out from the idle list (cheap path).
    pub reused: u64,
    /// Connections created on demand (pays `creation_cost`).
    pub created: u64,
    /// Acquisitions that had to block waiting for a free slot.
    pub waited: u64,
}

struct PoolState {
    idle: Vec<Connection>,
    outstanding: usize,
}

/// A bounded pool of [`Connection`]s to one database.
pub struct ConnectionPool {
    db: Arc<Database>,
    capacity: usize,
    creation_cost: Duration,
    state: Mutex<PoolState>,
    available: Condvar,
    reused: AtomicU64,
    created: AtomicU64,
    waited: AtomicU64,
    /// Saturation gauge: checked-out connections across all pools in the
    /// process (`db.pool.in_use`), sampled by the saturation ring.
    in_use_gauge: Arc<hedc_obs::Gauge>,
}

impl ConnectionPool {
    /// Create a pool with `capacity` slots. `creation_cost` is charged (by
    /// sleeping) each time a connection must be created rather than reused,
    /// modeling the expensive setup the paper pools away.
    pub fn new(db: Arc<Database>, capacity: usize, creation_cost: Duration) -> Arc<Self> {
        assert!(capacity > 0, "pool capacity must be positive");
        Arc::new(ConnectionPool {
            db,
            capacity,
            creation_cost,
            state: Mutex::new(PoolState {
                idle: Vec::new(),
                outstanding: 0,
            }),
            available: Condvar::new(),
            reused: AtomicU64::new(0),
            created: AtomicU64::new(0),
            waited: AtomicU64::new(0),
            in_use_gauge: hedc_obs::global().gauge("db.pool.in_use"),
        })
    }

    /// Pool capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The pooled database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Usage statistics snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            reused: self.reused.load(Ordering::Relaxed),
            created: self.created.load(Ordering::Relaxed),
            waited: self.waited.load(Ordering::Relaxed),
        }
    }

    /// Currently checked-out connections.
    pub fn in_use(&self) -> usize {
        self.state.lock().outstanding
    }

    /// Acquire a connection, blocking until one is free. Wait time feeds the
    /// `db.pool.acquire` latency histogram; acquisitions that had to block
    /// are additionally logged as `pool_stall` events with the wait and the
    /// pool's database, under the ambient trace.
    pub fn acquire(self: &Arc<Self>) -> PooledConnection {
        let started = std::time::Instant::now();
        let mut state = self.state.lock();
        let mut waited = false;
        while state.idle.is_empty() && state.outstanding >= self.capacity {
            waited = true;
            self.available.wait(&mut state);
        }
        if waited {
            self.waited.fetch_add(1, Ordering::Relaxed);
        }
        let wait = started.elapsed();
        hedc_obs::global().histogram("db.pool.acquire").record(wait);
        // Inside a traced request the wait also becomes a span, so the
        // critical-path analyzer can attribute it (no-op outside traces).
        hedc_obs::record_interval("db.pool.acquire", started);
        if waited {
            hedc_obs::emit(
                hedc_obs::events::kind::POOL_STALL,
                format!("db={} waited_us={}", self.db.name(), wait.as_micros()),
            );
        }
        self.take_locked(state)
    }

    /// Acquire without blocking; [`DbError::PoolExhausted`] when full.
    pub fn try_acquire(self: &Arc<Self>) -> DbResult<PooledConnection> {
        let state = self.state.lock();
        if state.idle.is_empty() && state.outstanding >= self.capacity {
            return Err(DbError::PoolExhausted);
        }
        Ok(self.take_locked(state))
    }

    fn take_locked(
        self: &Arc<Self>,
        mut state: parking_lot::MutexGuard<'_, PoolState>,
    ) -> PooledConnection {
        state.outstanding += 1;
        self.in_use_gauge.add(1);
        let conn = match state.idle.pop() {
            Some(c) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                drop(state);
                c
            }
            None => {
                drop(state);
                self.created.fetch_add(1, Ordering::Relaxed);
                if !self.creation_cost.is_zero() {
                    std::thread::sleep(self.creation_cost);
                }
                self.db.connect()
            }
        };
        PooledConnection {
            pool: Arc::clone(self),
            conn: Some(conn),
        }
    }

    fn release(&self, mut conn: Connection) {
        // A connection returned mid-transaction is rolled back before reuse,
        // mirroring what real pools do to avoid leaking transaction state.
        if conn.in_txn() {
            let _ = conn.rollback();
        }
        let mut state = self.state.lock();
        state.outstanding -= 1;
        self.in_use_gauge.add(-1);
        state.idle.push(conn);
        drop(state);
        self.available.notify_one();
    }
}

/// A checked-out connection; returns itself to the pool on drop.
pub struct PooledConnection {
    pool: Arc<ConnectionPool>,
    conn: Option<Connection>,
}

impl std::ops::Deref for PooledConnection {
    type Target = Connection;
    fn deref(&self) -> &Connection {
        self.conn.as_ref().expect("connection present until drop")
    }
}

impl std::ops::DerefMut for PooledConnection {
    fn deref_mut(&mut self) -> &mut Connection {
        self.conn.as_mut().expect("connection present until drop")
    }
}

impl Drop for PooledConnection {
    fn drop(&mut self) {
        if let Some(conn) = self.conn.take() {
            self.pool.release(conn);
        }
    }
}

/// The paper's split pool: query / update / auth (§5.3).
pub struct PoolSet {
    query: Arc<ConnectionPool>,
    update: Arc<ConnectionPool>,
    auth: Arc<ConnectionPool>,
}

impl PoolSet {
    /// Build the three pools against one database.
    pub fn new(
        db: &Arc<Database>,
        query_cap: usize,
        update_cap: usize,
        auth_cap: usize,
        creation_cost: Duration,
    ) -> Self {
        PoolSet {
            query: ConnectionPool::new(Arc::clone(db), query_cap, creation_cost),
            update: ConnectionPool::new(Arc::clone(db), update_cap, creation_cost),
            auth: ConnectionPool::new(Arc::clone(db), auth_cap, creation_cost),
        }
    }

    /// Get the pool for a given use.
    pub fn pool(&self, kind: PoolKind) -> &Arc<ConnectionPool> {
        match kind {
            PoolKind::Query => &self.query,
            PoolKind::Update => &self.update,
            PoolKind::Auth => &self.auth,
        }
    }

    /// Acquire from the pool matching `kind`.
    pub fn acquire(&self, kind: PoolKind) -> PooledConnection {
        self.pool(kind).acquire()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::{DataType, Value};

    fn db() -> Arc<Database> {
        let db = Database::in_memory("pool-test");
        let mut conn = db.connect();
        conn.create_table(Schema::new("t", vec![ColumnDef::new("a", DataType::Int)]))
            .unwrap();
        db
    }

    #[test]
    fn reuse_after_release() {
        let pool = ConnectionPool::new(db(), 2, Duration::ZERO);
        {
            let _a = pool.acquire();
            let _b = pool.acquire();
            assert_eq!(pool.in_use(), 2);
        }
        assert_eq!(pool.in_use(), 0);
        let _c = pool.acquire();
        let s = pool.stats();
        assert_eq!(s.created, 2);
        assert_eq!(s.reused, 1);
    }

    #[test]
    fn try_acquire_when_exhausted() {
        let pool = ConnectionPool::new(db(), 1, Duration::ZERO);
        let held = pool.acquire();
        assert!(matches!(pool.try_acquire(), Err(DbError::PoolExhausted)));
        drop(held);
        assert!(pool.try_acquire().is_ok());
    }

    #[test]
    fn blocking_acquire_wakes_on_release() {
        let pool = ConnectionPool::new(db(), 1, Duration::ZERO);
        let held = pool.acquire();
        let p2 = Arc::clone(&pool);
        let handle = std::thread::spawn(move || {
            let c = p2.acquire();
            drop(c);
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        handle.join().unwrap();
        assert_eq!(pool.stats().waited, 1);
    }

    #[test]
    fn open_transaction_rolled_back_on_return() {
        let pool = ConnectionPool::new(db(), 1, Duration::ZERO);
        {
            let mut c = pool.acquire();
            c.begin().unwrap();
            c.insert("t", vec![Value::Int(1)]).unwrap();
            // dropped without commit
        }
        let c = pool.acquire();
        let r = c.query(&crate::query::Query::table("t")).unwrap();
        assert!(r.rows.is_empty(), "uncommitted insert must not leak");
        assert!(!c.in_txn());
    }

    #[test]
    fn pool_set_routes_by_kind() {
        let db = db();
        let set = PoolSet::new(&db, 2, 1, 1, Duration::ZERO);
        let _q = set.acquire(PoolKind::Query);
        let _u = set.acquire(PoolKind::Update);
        let _a = set.acquire(PoolKind::Auth);
        assert_eq!(set.pool(PoolKind::Query).in_use(), 1);
        assert_eq!(set.pool(PoolKind::Update).in_use(), 1);
        assert_eq!(set.pool(PoolKind::Auth).in_use(), 1);
    }

    #[test]
    fn concurrent_workers_share_pool() {
        let pool = ConnectionPool::new(db(), 4, Duration::ZERO);
        let mut handles = Vec::new();
        for w in 0..8 {
            let p = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    let mut c = p.acquire();
                    c.insert("t", vec![Value::Int(w * 100 + i)]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.database().row_count("t").unwrap(), 200);
        let s = pool.stats();
        assert!(s.created <= 4);
        assert!(s.reused >= 196);
    }
}
