//! Property-based tests for the metadata engine's core invariants.

use hedc_metadb::{
    like_match, parse, query_to_sql, AggFunc, CmpOp, ColumnDef, DataType, Database, Expr, OrderDir,
    Query, Schema, Statement, Value,
};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Timestamp),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
    ]
}

proptest! {
    /// `Value`'s ordering must be a total order: antisymmetric and
    /// transitive. The B-tree index silently corrupts otherwise.
    #[test]
    fn value_order_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }

    /// Equal values must hash equal (Int(5) == Float(5.0) == Timestamp(5)).
    #[test]
    fn value_eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = std::collections::hash_map::DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    /// LIKE against a reference implementation (naive recursion).
    #[test]
    fn like_matches_reference(pattern in "[ab%_]{0,8}", text in "[ab]{0,8}") {
        fn reference(p: &[char], t: &[char]) -> bool {
            match (p.first(), t.first()) {
                (None, None) => true,
                (Some('%'), _) => {
                    reference(&p[1..], t) || (!t.is_empty() && reference(p, &t[1..]))
                }
                (Some('_'), Some(_)) => reference(&p[1..], &t[1..]),
                (Some(pc), Some(tc)) if pc == tc => reference(&p[1..], &t[1..]),
                _ => false,
            }
        }
        let p: Vec<char> = pattern.chars().collect();
        let t: Vec<char> = text.chars().collect();
        prop_assert_eq!(like_match(&pattern, &text), reference(&p, &t));
    }

    /// Inserting then range-querying returns exactly the rows whose key
    /// falls in the range, regardless of insertion order.
    #[test]
    fn range_query_matches_filter(keys in proptest::collection::vec(-100i64..100, 1..60),
                                  lo in -100i64..100, hi in -100i64..100) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let db = Database::in_memory("prop");
        let mut conn = db.connect();
        conn.create_table(Schema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("k", DataType::Int).not_null(),
            ],
        ).primary_key(&["id"])).unwrap();
        conn.create_index("t", "t_k", &["k"], false).unwrap();
        for (i, k) in keys.iter().enumerate() {
            conn.insert("t", vec![Value::Int(i as i64), Value::Int(*k)]).unwrap();
        }
        let r = conn.query(&Query::table("t").filter(Expr::between("k", lo, hi))).unwrap();
        let expected = keys.iter().filter(|&&k| k >= lo && k <= hi).count();
        prop_assert_eq!(r.rows.len(), expected);
    }

    /// A query object rendered to SQL and parsed back must execute to the
    /// same result set (the DM's object->SQL path, §5.4).
    #[test]
    fn query_to_sql_roundtrip(n in 1usize..40, lo in 0i64..50, hi in 0i64..50,
                              limit in 1usize..20, desc in any::<bool>()) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let db = Database::in_memory("prop2");
        let mut conn = db.connect();
        let schema = Schema::new(
            "ana",
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("v", DataType::Int),
            ],
        ).primary_key(&["id"]);
        conn.create_table(schema.clone()).unwrap();
        for i in 0..n as i64 {
            conn.insert("ana", vec![Value::Int(i), Value::Int(i % 13)]).unwrap();
        }
        let q = Query::table("ana")
            .filter(Expr::between("v", lo, hi))
            .order_by("id", if desc { OrderDir::Desc } else { OrderDir::Asc })
            .limit(limit);
        let sql = query_to_sql(&q, &schema);
        let reparsed = match parse(&sql).unwrap() {
            Statement::Select(q2) => q2,
            other => panic!("expected SELECT, got {other:?}"),
        };
        let direct = conn.query(&q).unwrap();
        let via_sql = conn.query(&reparsed).unwrap();
        prop_assert_eq!(direct.rows, via_sql.rows);
    }

    /// Rollback restores the exact prior row multiset.
    #[test]
    fn rollback_is_identity(ops in proptest::collection::vec((0i64..20, any::<bool>()), 1..30)) {
        let db = Database::in_memory("prop3");
        let mut conn = db.connect();
        conn.create_table(Schema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("v", DataType::Int),
            ],
        ).primary_key(&["id"])).unwrap();
        for i in 0..10i64 {
            conn.insert("t", vec![Value::Int(i), Value::Int(0)]).unwrap();
        }
        let before = conn.query(&Query::table("t").order_by("id", OrderDir::Asc)).unwrap();
        conn.begin().unwrap();
        for (key, is_delete) in ops {
            if is_delete {
                let _ = conn.delete_where("t", Some(Expr::eq("id", key)));
            } else {
                // Insert may collide with a surviving pk; ignore errors, the
                // invariant is about what rollback restores.
                let _ = conn.insert("t", vec![Value::Int(key + 100), Value::Int(1)]);
            }
        }
        conn.rollback().unwrap();
        let after = conn.query(&Query::table("t").order_by("id", OrderDir::Asc)).unwrap();
        prop_assert_eq!(before.rows, after.rows);
    }
}

// ---- canonical fingerprints (the result cache's key function) ----------

/// A small pool of column names so random predicates collide and And
/// chains actually flatten.
const FP_COLS: [&str; 4] = ["a", "b", "c", "d"];

/// One random predicate over the first `ncols` names of [`FP_COLS`].
fn arb_predicate(ncols: usize) -> impl Strategy<Value = Expr> {
    (0..ncols, -8i64..8, 0u8..4).prop_map(|(c, v, kind)| match kind {
        0 => Expr::eq(FP_COLS[c], v),
        1 => Expr::Cmp(
            CmpOp::Gt,
            Box::new(Expr::Name(FP_COLS[c].into())),
            Box::new(Expr::Literal(v.into())),
        ),
        2 => Expr::IsNull {
            expr: Box::new(Expr::Name(FP_COLS[c].into())),
            negated: v % 2 == 0,
        },
        _ => Expr::InList {
            expr: Box::new(Expr::Name(FP_COLS[c].into())),
            list: vec![Expr::Literal(v.into()), Expr::Literal((v + 1).into())],
        },
    })
}

/// A predicate list plus a shuffled copy of itself.
fn arb_permuted_predicates(ncols: usize) -> impl Strategy<Value = (Vec<Expr>, Vec<Expr>)> {
    proptest::collection::vec(arb_predicate(ncols), 1..6)
        .prop_flat_map(|v| (Just(v.clone()), Just(v).prop_shuffle()))
}

fn filtered(table: &str, preds: &[Expr]) -> Query {
    let mut q = Query::table(table);
    for p in preds {
        q = q.filter(p.clone());
    }
    q
}

proptest! {
    /// Conjunct order never affects the fingerprint: And is commutative
    /// and associative under Kleene semantics, and the canonical form
    /// flattens and sorts the chain.
    #[test]
    fn permuted_conjuncts_fingerprint_identically(
        (preds, shuffled) in arb_permuted_predicates(FP_COLS.len())
    ) {
        prop_assert_eq!(
            filtered("hle", &preds).fingerprint(),
            filtered("hle", &shuffled).fingerprint()
        );
    }

    /// Select-list order never affects a plain query's fingerprint — the
    /// cache re-projects a hit into the requested column order.
    #[test]
    fn permuted_select_fingerprints_identically(
        (cols, shuffled) in proptest::collection::vec("[a-e]{1,3}", 1..5)
            .prop_flat_map(|v| (Just(v.clone()), Just(v).prop_shuffle()))
    ) {
        let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let shuffled_refs: Vec<&str> = shuffled.iter().map(String::as_str).collect();
        prop_assert_eq!(
            Query::table("hle").select(&refs).fingerprint(),
            Query::table("hle").select(&shuffled_refs).fingerprint()
        );
    }

    /// Flipping a comparison around its operands is invisible to the
    /// cache key: `x > v` and `v < x` are the same predicate.
    #[test]
    fn flipped_comparisons_fingerprint_identically(
        c in 0..FP_COLS.len(), v in any::<i64>(), ge in any::<bool>()
    ) {
        let (fwd, rev) = if ge { (CmpOp::Ge, CmpOp::Le) } else { (CmpOp::Gt, CmpOp::Lt) };
        let a = Query::table("hle").filter(Expr::Cmp(
            fwd,
            Box::new(Expr::Name(FP_COLS[c].into())),
            Box::new(Expr::Literal(v.into())),
        ));
        let b = Query::table("hle").filter(Expr::Cmp(
            rev,
            Box::new(Expr::Literal(v.into())),
            Box::new(Expr::Name(FP_COLS[c].into())),
        ));
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }

    /// Anything that changes the result set changes the fingerprint:
    /// limit, offset, the filtered value, and the table name. A cache that
    /// conflated any of these would serve wrong rows.
    #[test]
    fn result_changing_knobs_discriminate(
        c in 0..FP_COLS.len(), v in -8i64..8, limit in 1usize..50, offset in 1usize..50
    ) {
        let base = Query::table("hle").filter(Expr::eq(FP_COLS[c], v));
        let f = base.fingerprint();
        prop_assert_ne!(&f, &base.clone().limit(limit).fingerprint());
        prop_assert_ne!(&f, &base.clone().offset(offset).fingerprint());
        prop_assert_ne!(
            &f,
            &Query::table("hle2").filter(Expr::eq(FP_COLS[c], v)).fingerprint()
        );
        prop_assert_ne!(
            &f,
            &Query::table("hle").filter(Expr::eq(FP_COLS[c], v + 1)).fingerprint()
        );
        prop_assert_ne!(
            &base.clone().limit(limit).fingerprint(),
            &base.clone().limit(limit + 1).fingerprint()
        );
    }

    /// ORDER BY + OFFSET/LIMIT on an aggregate query is exactly a window
    /// over the fully ordered grouped output — whatever the direction mix,
    /// and regardless of whether the bounded-heap top-k path kicks in for
    /// the windowed run.
    #[test]
    fn aggregate_order_offset_limit_is_a_window(
        vals in proptest::collection::vec((0i64..6, -10i64..10), 0..60),
        offset in 0usize..8, limit in 1usize..8,
        count_desc in any::<bool>(), key_desc in any::<bool>()
    ) {
        let db = Database::in_memory("prop-agg");
        let mut conn = db.connect();
        conn.create_table(Schema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("g", DataType::Int).not_null(),
                ColumnDef::new("v", DataType::Int),
            ],
        ).primary_key(&["id"])).unwrap();
        for (i, (g, v)) in vals.iter().enumerate() {
            conn.insert("t", vec![Value::Int(i as i64), Value::Int(*g), Value::Int(*v)])
                .unwrap();
        }
        let dir = |d: bool| if d { OrderDir::Desc } else { OrderDir::Asc };
        // The unique group key as tiebreak makes the order total, so the
        // window is well-defined even when counts collide.
        let base = Query::table("t")
            .group_by("g")
            .aggregate(AggFunc::CountStar)
            .aggregate(AggFunc::Sum("v".into()))
            .order_by("COUNT(*)", dir(count_desc))
            .order_by("g", dir(key_desc));
        let full = conn.query(&base.clone()).unwrap();
        let windowed = conn.query(&base.offset(offset).limit(limit)).unwrap();
        let expected: Vec<Vec<Value>> =
            full.rows.iter().skip(offset).take(limit).cloned().collect();
        prop_assert_eq!(windowed.rows, expected);
    }

    /// `IN`-list fingerprints canonicalize: permuting or duplicating the
    /// probe list cannot change the cache key — `x IN (1,2)` and
    /// `x IN (2,1,1)` are the same predicate.
    #[test]
    fn permuted_in_list_fingerprints_identically(
        (vals, shuffled) in proptest::collection::vec(-50i64..50, 1..10)
            .prop_flat_map(|v| (Just(v.clone()), Just(v).prop_shuffle())),
        dup_pick in 0usize..10
    ) {
        let base = Query::table("hle").filter(Expr::in_list("a", vals.clone()));
        let perm = Query::table("hle").filter(Expr::in_list("a", shuffled.clone()));
        prop_assert_eq!(base.fingerprint(), perm.fingerprint());
        // Re-listing an existing probe is also invisible.
        let mut with_dup = shuffled.clone();
        with_dup.push(vals[dup_pick % vals.len()]);
        prop_assert_eq!(
            base.fingerprint(),
            Query::table("hle").filter(Expr::in_list("a", with_dup)).fingerprint()
        );
    }

    /// …while genuinely extending the list must change the key: a strict
    /// superset matches more rows, so conflating the two would serve wrong
    /// cached results.
    #[test]
    fn extended_in_list_fingerprint_differs(
        vals in proptest::collection::vec(-50i64..50, 1..10)
    ) {
        let base = Query::table("hle").filter(Expr::in_list("a", vals.clone()));
        let mut extended = vals.clone();
        extended.push(99); // outside the generated range: genuinely new
        prop_assert_ne!(
            base.fingerprint(),
            Query::table("hle").filter(Expr::in_list("a", extended)).fingerprint()
        );
    }

    /// The property the cache actually depends on: queries whose
    /// fingerprints coincide return identical rows when executed.
    #[test]
    fn equal_fingerprints_mean_equal_rows(
        rows in proptest::collection::vec((-8i64..8, -8i64..8), 0..30),
        (preds, shuffled) in arb_permuted_predicates(2)
    ) {
        let db = Database::in_memory("prop-fp");
        let mut conn = db.connect();
        conn.create_table(Schema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Int),
            ],
        ).primary_key(&["id"])).unwrap();
        for (i, (a, b)) in rows.iter().enumerate() {
            conn.insert("t", vec![Value::Int(i as i64), Value::Int(*a), Value::Int(*b)])
                .unwrap();
        }
        let q1 = filtered("t", &preds);
        let q2 = filtered("t", &shuffled);
        prop_assert_eq!(q1.fingerprint(), q2.fingerprint());
        prop_assert_eq!(conn.query(&q1).unwrap().rows, conn.query(&q2).unwrap().rows);
    }
}
