//! Property-based tests for the metadata engine's core invariants.

use hedc_metadb::{
    like_match, parse, query_to_sql, ColumnDef, Database, DataType, Expr, OrderDir, Query,
    Schema, Statement, Value,
};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Timestamp),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
    ]
}

proptest! {
    /// `Value`'s ordering must be a total order: antisymmetric and
    /// transitive. The B-tree index silently corrupts otherwise.
    #[test]
    fn value_order_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }

    /// Equal values must hash equal (Int(5) == Float(5.0) == Timestamp(5)).
    #[test]
    fn value_eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = std::collections::hash_map::DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    /// LIKE against a reference implementation (naive recursion).
    #[test]
    fn like_matches_reference(pattern in "[ab%_]{0,8}", text in "[ab]{0,8}") {
        fn reference(p: &[char], t: &[char]) -> bool {
            match (p.first(), t.first()) {
                (None, None) => true,
                (Some('%'), _) => {
                    reference(&p[1..], t) || (!t.is_empty() && reference(p, &t[1..]))
                }
                (Some('_'), Some(_)) => reference(&p[1..], &t[1..]),
                (Some(pc), Some(tc)) if pc == tc => reference(&p[1..], &t[1..]),
                _ => false,
            }
        }
        let p: Vec<char> = pattern.chars().collect();
        let t: Vec<char> = text.chars().collect();
        prop_assert_eq!(like_match(&pattern, &text), reference(&p, &t));
    }

    /// Inserting then range-querying returns exactly the rows whose key
    /// falls in the range, regardless of insertion order.
    #[test]
    fn range_query_matches_filter(keys in proptest::collection::vec(-100i64..100, 1..60),
                                  lo in -100i64..100, hi in -100i64..100) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let db = Database::in_memory("prop");
        let mut conn = db.connect();
        conn.create_table(Schema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("k", DataType::Int).not_null(),
            ],
        ).primary_key(&["id"])).unwrap();
        conn.create_index("t", "t_k", &["k"], false).unwrap();
        for (i, k) in keys.iter().enumerate() {
            conn.insert("t", vec![Value::Int(i as i64), Value::Int(*k)]).unwrap();
        }
        let r = conn.query(&Query::table("t").filter(Expr::between("k", lo, hi))).unwrap();
        let expected = keys.iter().filter(|&&k| k >= lo && k <= hi).count();
        prop_assert_eq!(r.rows.len(), expected);
    }

    /// A query object rendered to SQL and parsed back must execute to the
    /// same result set (the DM's object->SQL path, §5.4).
    #[test]
    fn query_to_sql_roundtrip(n in 1usize..40, lo in 0i64..50, hi in 0i64..50,
                              limit in 1usize..20, desc in any::<bool>()) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let db = Database::in_memory("prop2");
        let mut conn = db.connect();
        let schema = Schema::new(
            "ana",
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("v", DataType::Int),
            ],
        ).primary_key(&["id"]);
        conn.create_table(schema.clone()).unwrap();
        for i in 0..n as i64 {
            conn.insert("ana", vec![Value::Int(i), Value::Int(i % 13)]).unwrap();
        }
        let q = Query::table("ana")
            .filter(Expr::between("v", lo, hi))
            .order_by("id", if desc { OrderDir::Desc } else { OrderDir::Asc })
            .limit(limit);
        let sql = query_to_sql(&q, &schema);
        let reparsed = match parse(&sql).unwrap() {
            Statement::Select(q2) => q2,
            other => panic!("expected SELECT, got {other:?}"),
        };
        let direct = conn.query(&q).unwrap();
        let via_sql = conn.query(&reparsed).unwrap();
        prop_assert_eq!(direct.rows, via_sql.rows);
    }

    /// Rollback restores the exact prior row multiset.
    #[test]
    fn rollback_is_identity(ops in proptest::collection::vec((0i64..20, any::<bool>()), 1..30)) {
        let db = Database::in_memory("prop3");
        let mut conn = db.connect();
        conn.create_table(Schema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("v", DataType::Int),
            ],
        ).primary_key(&["id"])).unwrap();
        for i in 0..10i64 {
            conn.insert("t", vec![Value::Int(i), Value::Int(0)]).unwrap();
        }
        let before = conn.query(&Query::table("t").order_by("id", OrderDir::Asc)).unwrap();
        conn.begin().unwrap();
        for (key, is_delete) in ops {
            if is_delete {
                let _ = conn.delete_where("t", Some(Expr::eq("id", key)));
            } else {
                // Insert may collide with a surviving pk; ignore errors, the
                // invariant is about what rollback restores.
                let _ = conn.insert("t", vec![Value::Int(key + 100), Value::Int(1)]);
            }
        }
        conn.rollback().unwrap();
        let after = conn.query(&Query::table("t").order_by("id", OrderDir::Asc)).unwrap();
        prop_assert_eq!(before.rows, after.rows);
    }
}
