//! Crash-recovery tests: the redo log must restore exactly the committed
//! state across arbitrary operation histories and torn-tail crashes
//! (the paper stores its redo logs on the backed-up RAID for precisely
//! this, §2.3).

use hedc_metadb::{ColumnDef, DataType, Database, Expr, OrderDir, Query, Schema, Value};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp_wal(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "hedc-recovery-{tag}-{}-{}.wal",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&p);
    p
}

fn schema() -> Schema {
    Schema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("v", DataType::Int),
        ],
    )
    .primary_key(&["id"])
}

/// An abstract operation the generator draws.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
    /// Begin a transaction, apply the inner ops, then commit or roll back.
    Txn(Vec<(i64, i64)>, bool),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..40, any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v % 1000)),
        (0i64..40, any::<i64>()).prop_map(|(k, v)| Op::Update(k, v % 1000)),
        (0i64..40).prop_map(Op::Delete),
        (
            proptest::collection::vec((40i64..80, 0i64..1000), 1..5),
            any::<bool>()
        )
            .prop_map(|(ops, commit)| Op::Txn(ops, commit)),
    ]
}

fn dump(db: &std::sync::Arc<Database>) -> Vec<Vec<Value>> {
    db.connect()
        .query(&Query::table("t").order_by("id", OrderDir::Asc))
        .unwrap()
        .rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Recovery after a clean shutdown reproduces the exact table state,
    /// whatever mixture of autocommit DML and committed/rolled-back
    /// transactions ran.
    #[test]
    fn recovery_reproduces_committed_state(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let path = tmp_wal("state");
        let expected = {
            let db = Database::with_wal("d", &path).unwrap();
            let mut conn = db.connect();
            conn.create_table(schema()).unwrap();
            for op in &ops {
                match op {
                    Op::Insert(k, v) => {
                        let _ = conn.insert("t", vec![Value::Int(*k), Value::Int(*v)]);
                    }
                    Op::Update(k, v) => {
                        let _ = conn.update_where(
                            "t",
                            &[("v".to_string(), hedc_metadb::Expr::Literal(Value::Int(*v)))],
                            Some(Expr::eq("id", *k)),
                        );
                    }
                    Op::Delete(k) => {
                        let _ = conn.delete_where("t", Some(Expr::eq("id", *k)));
                    }
                    Op::Txn(inner, commit) => {
                        conn.begin().unwrap();
                        for (k, v) in inner {
                            let _ = conn.insert("t", vec![Value::Int(*k), Value::Int(*v)]);
                        }
                        if *commit {
                            conn.commit().unwrap();
                        } else {
                            conn.rollback().unwrap();
                        }
                    }
                }
            }
            dump(&db)
        };
        // Reopen from the log alone.
        let recovered = Database::with_wal("d", &path).unwrap();
        prop_assert_eq!(dump(&recovered), expected);
        std::fs::remove_file(&path).unwrap();
    }

    /// A crash that tears the log mid-batch loses only the torn batch:
    /// recovery yields the state as of the last complete commit marker.
    #[test]
    fn torn_tail_loses_only_the_tail(
        n_committed in 1usize..20,
        tail_bytes in 1usize..60,
    ) {
        let path = tmp_wal("torn");
        {
            let db = Database::with_wal("d", &path).unwrap();
            let mut conn = db.connect();
            conn.create_table(schema()).unwrap();
            for i in 0..n_committed {
                conn.insert("t", vec![Value::Int(i as i64), Value::Int(0)]).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        // Simulate a crash: truncate the file mid-way through the last
        // record (drop `tail_bytes` bytes, at most the final line).
        let last_line_start = full[..full.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|p| p + 1)
            .unwrap_or(0);
        // Remove at least the final newline plus one content byte: dropping
        // only the "\n" leaves the last record intact (lines() still parses
        // it), which is a clean shutdown, not a torn write.
        let cut = (full.len() - tail_bytes.max(2).min(full.len() - last_line_start - 1))
            .max(last_line_start + 1)
            .min(full.len() - 2);
        std::fs::write(&path, &full[..cut]).unwrap();

        let recovered = Database::with_wal("d", &path).unwrap();
        let rows = dump(&recovered);
        // The torn insert (the last one) is gone; everything prior holds.
        prop_assert_eq!(rows.len(), n_committed - 1);
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(&row[0], &Value::Int(i as i64));
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn recovery_is_idempotent() {
    let path = tmp_wal("idem");
    {
        let db = Database::with_wal("d", &path).unwrap();
        let mut conn = db.connect();
        conn.create_table(schema()).unwrap();
        for i in 0..10 {
            conn.insert("t", vec![Value::Int(i), Value::Int(i * 2)])
                .unwrap();
        }
    }
    // Open/close repeatedly without writing: state must be stable.
    let baseline = dump(&Database::with_wal("d", &path).unwrap());
    for _ in 0..3 {
        let db = Database::with_wal("d", &path).unwrap();
        assert_eq!(dump(&db), baseline);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn writes_after_recovery_continue_the_log() {
    let path = tmp_wal("continue");
    {
        let db = Database::with_wal("d", &path).unwrap();
        let mut conn = db.connect();
        conn.create_table(schema()).unwrap();
        conn.insert("t", vec![Value::Int(1), Value::Int(10)])
            .unwrap();
    }
    {
        let db = Database::with_wal("d", &path).unwrap();
        let mut conn = db.connect();
        conn.insert("t", vec![Value::Int(2), Value::Int(20)])
            .unwrap();
        conn.update_where(
            "t",
            &[("v".to_string(), hedc_metadb::Expr::Literal(Value::Int(11)))],
            Some(Expr::eq("id", 1)),
        )
        .unwrap();
    }
    let db = Database::with_wal("d", &path).unwrap();
    let rows = dump(&db);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][1], Value::Int(11));
    assert_eq!(rows[1][1], Value::Int(20));
    std::fs::remove_file(&path).unwrap();
}
