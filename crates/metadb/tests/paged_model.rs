//! Seeded model test: the paged B-tree backend must be observationally
//! identical to the memory backend.
//!
//! Two databases — one per backend — receive the same randomized statement
//! stream: inserts, expression updates, predicate deletes, transactions
//! that roll back, point/range/aggregate queries. After every statement the
//! results must agree exactly (affected counts, result rows, error kind),
//! and periodically the full table contents are compared row-for-row.
//!
//! The paged database runs with deliberately tiny pages (256 bytes) and a
//! page cache far smaller than the working set, so the workload crosses
//! leaf/branch split boundaries within the first few dozen inserts and the
//! delete phase drives merges and frees. Replayable: the seed prints on
//! entry and `scripts/check.sh --seed <seed>` (env `HEDC_TEST_SEED`)
//! reruns the identical stream.

use hedc_metadb::{
    ColumnDef, Connection, DataType, Database, DbOptions, Expr, OrderDir, Query, Schema,
    StorageBackend, StorageConfig, Value,
};
use std::sync::Arc;

fn split_mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn schema() -> Schema {
    Schema::new(
        "events",
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("t0", DataType::Timestamp),
            ColumnDef::new("score", DataType::Float),
            ColumnDef::new("label", DataType::Text),
        ],
    )
    .primary_key(&["id"])
}

fn open_pair() -> (Arc<Database>, Arc<Database>) {
    let mem = Database::in_memory("model-mem");
    let paged = Database::open(
        "model-paged",
        DbOptions {
            storage: StorageConfig {
                backend: StorageBackend::Paged,
                page_size: 256,
                cache_pages: 16,
                store_path: None,
            },
            ..DbOptions::default()
        },
    )
    .unwrap();
    for db in [&mem, &paged] {
        let mut conn = db.connect();
        conn.create_table(schema()).unwrap();
        conn.create_index("events", "events_t0", &["t0"], false)
            .unwrap();
        conn.create_index("events", "events_score", &["score"], false)
            .unwrap();
    }
    (mem, paged)
}

/// Full contents ordered by primary key — the canonical comparison form.
fn dump(conn: &Connection) -> Vec<Vec<Value>> {
    conn.query(&Query::table("events").order_by("id", OrderDir::Asc))
        .unwrap()
        .rows
}

fn random_value(rng: &mut u64, id: i64) -> Vec<Value> {
    let t0 = (split_mix(rng) % 10_000) as i64;
    let score = match split_mix(rng) % 4 {
        0 => Value::Null,
        // Integral floats exercise the cross-type keycode equality path.
        1 => Value::Float((split_mix(rng) % 100) as f64),
        _ => Value::Float((split_mix(rng) % 10_000) as f64 / 7.0),
    };
    let label = match split_mix(rng) % 3 {
        0 => Value::Null,
        _ => Value::Text(format!("l{}", split_mix(rng) % 50)),
    };
    vec![Value::Int(id), Value::Int(t0), score, label]
}

#[test]
fn randomized_statements_agree_across_backends() {
    let seed = hedc_metadb::test_seed();
    println!("paged_model seed={seed:#x}");
    let mut rng = seed;
    let (mem_db, paged_db) = open_pair();
    let mut mem = mem_db.connect();
    let mut paged = paged_db.connect();
    let mut next_id: i64 = 0;

    for step in 0..600u32 {
        match split_mix(&mut rng) % 100 {
            // Insert a fresh row (sometimes a duplicate pk, which must fail
            // identically on both backends).
            0..=49 => {
                let dup = next_id > 0 && split_mix(&mut rng) % 10 == 0;
                let id = if dup {
                    (split_mix(&mut rng) % next_id as u64) as i64
                } else {
                    next_id += 1;
                    next_id - 1
                };
                let row = random_value(&mut rng, id);
                let a = mem.insert("events", row.clone());
                let b = paged.insert("events", row);
                match (a, b) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y, "step {step}: row ids diverge"),
                    (Err(x), Err(y)) => assert_eq!(
                        std::mem::discriminant(&x),
                        std::mem::discriminant(&y),
                        "step {step}: error kinds diverge: {x:?} vs {y:?}"
                    ),
                    (a, b) => panic!("step {step}: outcome diverges: {a:?} vs {b:?}"),
                }
            }
            // Update a band of rows through an expression.
            50..=64 => {
                let lo = (split_mix(&mut rng) % 10_000) as i64;
                let filter = Expr::between("t0", lo, lo + 1_500);
                let sets = [(
                    "score".to_string(),
                    Expr::Literal(Value::Float(step as f64 + 0.5)),
                )];
                let a = mem.update_where("events", &sets, Some(filter.clone()));
                let b = paged.update_where("events", &sets, Some(filter));
                assert_eq!(a.unwrap(), b.unwrap(), "step {step}: update count");
            }
            // Delete a band of rows (drives page merges at 256-byte pages).
            65..=79 => {
                let lo = (split_mix(&mut rng) % 10_000) as i64;
                let filter = Expr::between("t0", lo, lo + 900);
                let a = mem.delete_where("events", Some(filter.clone()));
                let b = paged.delete_where("events", Some(filter));
                assert_eq!(a.unwrap(), b.unwrap(), "step {step}: delete count");
            }
            // A transaction that rolls back must leave both unchanged.
            80..=84 => {
                for conn in [&mut mem, &mut paged] {
                    conn.begin().unwrap();
                    let _ = conn.insert(
                        "events",
                        vec![
                            Value::Int(1_000_000 + step as i64),
                            Value::Int(1),
                            Value::Null,
                            Value::Null,
                        ],
                    );
                    conn.rollback().unwrap();
                }
            }
            // Indexed range query over the float column.
            85..=92 => {
                let lo = (split_mix(&mut rng) % 1_000) as i64;
                let q = Query::table("events")
                    .filter(Expr::between("score", lo, lo + 200))
                    .order_by("id", OrderDir::Asc);
                let a = mem.query(&q).unwrap();
                let b = paged.query(&q).unwrap();
                assert_eq!(a.rows, b.rows, "step {step}: range rows");
                assert_eq!(
                    format!("{:?}", a.stats.access),
                    format!("{:?}", b.stats.access),
                    "step {step}: access paths diverge"
                );
            }
            // Aggregate with grouping.
            _ => {
                let q = Query::table("events")
                    .group_by("label")
                    .aggregate(hedc_metadb::AggFunc::CountStar)
                    .aggregate(hedc_metadb::AggFunc::Max("t0".into()));
                let sorted = |r: hedc_metadb::QueryResult| {
                    let mut rows: Vec<String> =
                        r.rows.iter().map(|row| format!("{row:?}")).collect();
                    rows.sort();
                    rows
                };
                let a = sorted(mem.query(&q).unwrap());
                let b = sorted(paged.query(&q).unwrap());
                assert_eq!(a, b, "step {step}: group-by rows");
            }
        }
        if step % 50 == 49 {
            assert_eq!(dump(&mem), dump(&paged), "step {step}: full dump diverges");
            assert_eq!(
                mem_db.row_count("events").unwrap(),
                paged_db.row_count("events").unwrap()
            );
        }
    }
    assert_eq!(dump(&mem), dump(&paged), "final dump diverges");
    assert!(
        mem_db.row_count("events").unwrap() > 50,
        "workload too small to exercise splits"
    );
}

/// Fill far past one leaf, then empty the table back down: split and merge
/// boundaries on 256-byte pages, with the memory backend as the oracle at
/// every quarter of both phases.
#[test]
fn split_and_merge_boundaries_stay_consistent() {
    let seed = hedc_metadb::test_seed() ^ 0x5EED;
    println!("paged_model split/merge seed={seed:#x}");
    let mut rng = seed;
    let (mem_db, paged_db) = open_pair();
    let mut mem = mem_db.connect();
    let mut paged = paged_db.connect();

    // Shuffled insertion order so splits happen at interior positions, not
    // just the rightmost leaf.
    let n = 400i64;
    let mut ids: Vec<i64> = (0..n).collect();
    for i in (1..ids.len()).rev() {
        ids.swap(i, (split_mix(&mut rng) % (i as u64 + 1)) as usize);
    }
    for (k, id) in ids.iter().enumerate() {
        let row = random_value(&mut rng, *id);
        mem.insert("events", row.clone()).unwrap();
        paged.insert("events", row).unwrap();
        if k % 100 == 99 {
            assert_eq!(dump(&mem), dump(&paged), "insert phase at {k}");
        }
    }
    assert_eq!(mem_db.row_count("events").unwrap(), n as usize);

    // Drain in a different shuffled order.
    for i in (1..ids.len()).rev() {
        ids.swap(i, (split_mix(&mut rng) % (i as u64 + 1)) as usize);
    }
    for (k, id) in ids.iter().enumerate() {
        let f = Expr::eq("id", *id);
        assert_eq!(
            mem.delete_where("events", Some(f.clone())).unwrap(),
            paged.delete_where("events", Some(f)).unwrap(),
            "delete {id}"
        );
        if k % 100 == 99 {
            assert_eq!(dump(&mem), dump(&paged), "delete phase at {k}");
        }
    }
    assert_eq!(paged_db.row_count("events").unwrap(), 0);
    assert!(dump(&paged).is_empty());
}

/// A table far larger than the page-cache budget scans correctly: the
/// cache evicts under pressure (visible in the `store.page_cache.*`
/// counters) while full scans, point reads, and indexed ranges stay exact.
#[test]
fn table_larger_than_page_cache_scans_correctly() {
    let db = Database::open(
        "model-big",
        DbOptions {
            storage: StorageConfig {
                backend: StorageBackend::Paged,
                page_size: 512,
                cache_pages: 8, // the store's minimum: a 4 KiB budget
                store_path: None,
            },
            ..DbOptions::default()
        },
    )
    .unwrap();
    let mut conn = db.connect();
    conn.create_table(schema()).unwrap();
    conn.create_index("events", "events_t0", &["t0"], false)
        .unwrap();

    // ~250-byte rows × 1500 ≫ the 4 KiB cache: residency is a tiny
    // fraction of the table and every scan cycles the cache.
    let n = 1_500i64;
    let payload = "x".repeat(200);
    let evicted_before = hedc_obs::global().counter_value("store.page_cache.evict");
    for i in 0..n {
        conn.insert(
            "events",
            vec![
                Value::Int(i),
                Value::Int(i * 3),
                Value::Float(i as f64),
                Value::Text(format!("{payload}-{i}")),
            ],
        )
        .unwrap();
    }

    let all = conn.query(&Query::table("events")).unwrap();
    assert_eq!(all.rows.len(), n as usize);
    let mut seen: Vec<i64> = all.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..n).collect::<Vec<_>>(), "full scan must be exact");

    let r = conn
        .query(&Query::table("events").filter(Expr::between("t0", 3_000, 3_030)))
        .unwrap();
    assert_eq!(r.rows.len(), 11); // t0 = 3000, 3003, ..., 3030
    for row in &r.rows {
        let id = row[0].as_int().unwrap();
        assert_eq!(row[3], Value::Text(format!("{payload}-{id}")));
    }

    let evicted = hedc_obs::global().counter_value("store.page_cache.evict") - evicted_before;
    assert!(
        evicted > 100,
        "a scan over a table ≫ cache must evict (saw {evicted})"
    );
}
