//! # hedc-core — the assembled RHESSI Experimental Data Center
//!
//! A Rust reproduction of HEDC, the scientific data warehouse of
//! *"Scientific Data Repositories: Designing for a Moving Target"*
//! (Stolte, von Praun, Alonso, Gross — SIGMOD 2003). This crate wires the
//! three tiers together:
//!
//! * **Resource management** — `hedc-metadb` (the metadata DBMS) and
//!   `hedc-filestore` (tiered immutable file archives), plus the
//!   `hedc-analysis` interpreter servers.
//! * **Application logic** — `hedc-dm` (Data Management: name mapping,
//!   sessions, access control, ingest/relocation/recalibration workflows)
//!   and `hedc-pl` (Processing Logic: 4-phase requests, priority
//!   scheduling, fault-tolerant server management).
//! * **Presentation** — `hedc-web` (thin web client, StreamCorder fat
//!   client, synoptic search, density/extent visualization).
//!
//! ```
//! use hedc_core::{Hedc, HedcConfig};
//! use hedc_events::GenConfig;
//!
//! // Boot a repository and load half an hour of synthetic telemetry.
//! let hedc = Hedc::start(HedcConfig::default()).unwrap();
//! let loaded = hedc.load_telemetry(&GenConfig {
//!     duration_ms: 30 * 60 * 1000,
//!     ..GenConfig::default()
//! }, 500_000).unwrap();
//! assert!(loaded.events > 0);
//!
//! // Browse it the way a scientist's browser would.
//! let page = hedc.web().handle(&hedc_web::HttpRequest::get("/hedc/catalogs", "10.0.0.1"));
//! assert_eq!(page.status, 200);
//! hedc.shutdown();
//! ```

#![warn(missing_docs)]

mod config;

pub use config::{ArchiveConfig, HedcConfig, TierConfig};

use hedc_analysis::AlgorithmRegistry;
use hedc_dm::{
    pipeline, Dm, DmConfig, DmResult, IngestConfig, IngestOptions, IoConfig, Partitioning,
};
use hedc_events::{generate, package, GenConfig, Telemetry};
use hedc_filestore::{Archive, DirBackend, FileStore};
use hedc_pl::{PlConfig, ProcessingLogic};
use hedc_web::WebServer;
use std::sync::Arc;

/// Summary of a telemetry load.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Telemetry units ingested (fresh, resumed, or already complete).
    pub units: usize,
    /// Photons loaded.
    pub photons: usize,
    /// HLEs created by detection.
    pub events: usize,
    /// Bytes stored across archives.
    pub bytes_stored: u64,
    /// Units skipped because a journal trail already marked them done.
    pub skipped: usize,
    /// Units that failed; the load no longer aborts on the first failure, so
    /// partial loads still account for every submitted unit.
    pub failed: usize,
}

/// A fully assembled HEDC node.
pub struct Hedc {
    config: HedcConfig,
    dm: Arc<Dm>,
    pl: Arc<ProcessingLogic>,
    web: WebServer,
    registry: Arc<AlgorithmRegistry>,
    /// Background saturation sampler; stopped (and joined) at shutdown.
    sampler: std::sync::Mutex<Option<hedc_obs::Sampler>>,
}

impl Hedc {
    /// Boot a repository from a configuration: mount archives, bootstrap
    /// the DM (schemas, system users, catalogs), start the PL and its
    /// analysis servers, and expose the web frontend.
    pub fn start(config: HedcConfig) -> DmResult<Arc<Hedc>> {
        hedc_metadb::tuning::set_parallel_scan_threshold(config.parallel_scan_rows);
        // Tail-latency plumbing: slow traces pin in the flight recorder, and
        // the saturation sampler snapshots every gauge (queue depths,
        // in-flight counts, pool occupancy) into the ring.
        hedc_obs::recorder().set_pin_threshold_us(config.slow_trace_ms.saturating_mul(1_000));
        let sampler = hedc_obs::start_sampler(std::time::Duration::from_millis(200));
        let files = Arc::new(FileStore::new());
        for a in &config.archives {
            let archive = match &a.directory {
                Some(dir) => Archive::new(
                    a.id,
                    a.name.clone(),
                    a.tier.to_tier(),
                    a.capacity,
                    Box::new(DirBackend::new(dir).map_err(hedc_dm::DmError::Fs)?),
                ),
                None => Archive::in_memory(a.id, a.name.clone(), a.tier.to_tier(), a.capacity),
            };
            files.register(archive);
        }
        let dm = Dm::bootstrap(
            files,
            DmConfig {
                databases: config.databases,
                partitioning: Partitioning::single(),
                io: IoConfig {
                    slow_query: config.slow_query(),
                    ..IoConfig::default()
                },
                start_ms: config.start_ms,
                storage: config.storage.clone(),
            },
        )?;
        let registry = Arc::new(AlgorithmRegistry::with_builtins());
        let pl = ProcessingLogic::start(
            Arc::clone(&dm),
            Arc::clone(&registry),
            PlConfig {
                servers: config.analysis_servers,
                dispatchers: config.dispatchers,
                job_timeout: config.job_timeout(),
                max_retries: 2,
                derived_archive: config.derived_archive(),
                ..PlConfig::default()
            },
        );
        let web = WebServer::new(Arc::clone(&dm), Some(Arc::clone(&pl)));
        Ok(Arc::new(Hedc {
            config,
            dm,
            pl,
            web,
            registry,
            sampler: std::sync::Mutex::new(Some(sampler)),
        }))
    }

    /// The Data Management component.
    pub fn dm(&self) -> &Arc<Dm> {
        &self.dm
    }

    /// The Processing Logic component.
    pub fn pl(&self) -> &Arc<ProcessingLogic> {
        &self.pl
    }

    /// The web frontend.
    pub fn web(&self) -> &WebServer {
        &self.web
    }

    /// The analysis-algorithm registry (register user routines here, §3.3).
    pub fn registry(&self) -> &Arc<AlgorithmRegistry> {
        &self.registry
    }

    /// The active configuration.
    pub fn config(&self) -> &HedcConfig {
        &self.config
    }

    /// Generate synthetic telemetry and run the full ingest pipeline over
    /// it (§2.2): package into units, store FITS files, detect events,
    /// build catalogs and load-time wavelet views.
    pub fn load_telemetry(&self, gen: &GenConfig, photons_per_unit: usize) -> DmResult<LoadReport> {
        let telemetry = generate(gen);
        self.load_generated(&telemetry, photons_per_unit)
    }

    /// Ingest already-generated telemetry (lets callers keep the ground
    /// truth for evaluation).
    pub fn load_generated(
        &self,
        telemetry: &Telemetry,
        photons_per_unit: usize,
    ) -> DmResult<LoadReport> {
        let units = package(telemetry, photons_per_unit, 1);
        let session = self.dm.import_session();
        let ingest_cfg = IngestConfig {
            raw_archive: self.config.raw_archive(),
            derived_archive: self.config.derived_archive(),
            extended_catalog: self.dm.extended_catalog,
            detect: self.config.detect.clone(),
            view_bin_ms: self.config.view_bin_ms,
            view_partition: 1024,
            view_quant: self.config.view_quant,
        };
        // The journaled pipeline accounts for every submitted unit instead of
        // aborting on the first failure (losing the accounting of everything
        // already ingested). Serial keeps load_generated deterministic.
        let run = pipeline::ingest(
            &self.dm.io,
            &session,
            &units,
            &ingest_cfg,
            &IngestOptions::serial(),
        )?;
        let mut report = LoadReport {
            units: run.ingested + run.resumed + run.skipped,
            photons: 0,
            events: run.hle_count,
            bytes_stored: run.bytes_stored,
            skipped: run.skipped,
            failed: run.failed,
        };
        for u in &run.units {
            if !matches!(u.status, hedc_dm::UnitStatus::Failed) {
                if let Some(unit) = units.iter().find(|t| t.seq == u.seq) {
                    report.photons += unit.photons.len();
                }
            }
        }
        // Load-time refresh pass: materialized views + archive status.
        self.dm.after_load_maintenance()?;
        Ok(report)
    }

    /// Stop the processing logic (analysis servers and dispatchers) and the
    /// saturation sampler.
    pub fn shutdown(&self) {
        if let Some(sampler) = self.sampler.lock().unwrap().take() {
            sampler.stop();
        }
        self.pl.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hedc_analysis::AnalysisParams;
    use hedc_dm::{Rights, SessionKind};
    use hedc_pl::RequestSpec;
    use hedc_web::HttpRequest;

    fn small_gen() -> GenConfig {
        GenConfig {
            duration_ms: 15 * 60 * 1000,
            flares_per_hour: 8.0,
            background_rate: 15.0,
            seed: 777,
            ..GenConfig::default()
        }
    }

    #[test]
    fn boot_load_browse_analyze() {
        let hedc = Hedc::start(HedcConfig::default()).unwrap();
        let report = hedc.load_telemetry(&small_gen(), 300_000).unwrap();
        assert!(report.events > 0);
        assert!(report.photons > 0);

        // Browse.
        let page = hedc
            .web()
            .handle(&HttpRequest::get("/hedc/catalogs", "1.2.3.4"));
        assert_eq!(page.status, 200);

        // Analyze through the PL.
        hedc.dm()
            .create_user("u", "pw", "sci", Rights::SCIENTIST)
            .unwrap();
        let cookie = hedc.dm().login("u", "pw", "ip").unwrap();
        let session = hedc
            .dm()
            .session("ip", cookie, SessionKind::Analysis)
            .unwrap();
        let hle = hedc
            .dm()
            .services()
            .query(&session, hedc_metadb::Query::table("hle").limit(1))
            .unwrap()
            .rows[0][0]
            .as_int()
            .unwrap();
        let outcome = hedc
            .pl()
            .submit_sync(
                session,
                RequestSpec::new("lightcurve", AnalysisParams::window(0, 300_000), hle),
            )
            .unwrap();
        assert!(outcome.ana_id() > 0);
        hedc.shutdown();
    }

    #[test]
    fn directory_backed_archives() {
        let dir = std::env::temp_dir().join(format!("hedc-core-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = HedcConfig::default();
        config.archives[0].directory = Some(dir.to_string_lossy().to_string());
        let hedc = Hedc::start(config).unwrap();
        hedc.load_telemetry(&small_gen(), usize::MAX).unwrap();
        // Raw FITS files are real files on disk.
        let entries: Vec<_> = std::fs::read_dir(dir.join("raw")).unwrap().collect();
        assert!(!entries.is_empty());
        hedc.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_failure_still_accounts_for_every_unit() {
        // Phase 1: a full load on an unconstrained node measures how many
        // raw-archive bytes the workload needs.
        let telemetry = generate(&small_gen());
        let probe = Hedc::start(HedcConfig::default()).unwrap();
        let full = probe.load_generated(&telemetry, 2000).unwrap();
        assert!(full.units > 1, "need multiple units to observe partiality");
        assert_eq!(full.failed, 0);
        let raw = probe.config().raw_archive();
        let raw_used = probe
            .dm()
            .io
            .files
            .statuses()
            .into_iter()
            .find(|s| s.id == raw)
            .unwrap()
            .used;
        probe.shutdown();

        // Phase 2: the same load against a raw archive one byte too small.
        // The trailing unit's FITS store hits the capacity wall; the loader
        // used to abort with that error and lose the whole tally. Now every
        // unit is accounted for and the successful prefix is preserved.
        let mut cfg = HedcConfig::default();
        cfg.archives
            .iter_mut()
            .find(|a| a.id == raw)
            .unwrap()
            .capacity = raw_used - 1;
        let hedc = Hedc::start(cfg).unwrap();
        let report = hedc.load_generated(&telemetry, 2000).unwrap();
        assert!(report.failed >= 1);
        assert!(report.units >= 1);
        assert_eq!(report.units + report.failed, full.units);
        assert!(report.photons < full.photons);
        hedc.shutdown();
    }

    #[test]
    fn config_snapshot_is_stable() {
        let hedc = Hedc::start(HedcConfig::default()).unwrap();
        let json = hedc.config().to_json();
        assert!(json.contains("bulk-disk"));
        hedc.shutdown();
    }
}
