//! # hedc-core — the assembled RHESSI Experimental Data Center
//!
//! A Rust reproduction of HEDC, the scientific data warehouse of
//! *"Scientific Data Repositories: Designing for a Moving Target"*
//! (Stolte, von Praun, Alonso, Gross — SIGMOD 2003). This crate wires the
//! three tiers together:
//!
//! * **Resource management** — `hedc-metadb` (the metadata DBMS) and
//!   `hedc-filestore` (tiered immutable file archives), plus the
//!   `hedc-analysis` interpreter servers.
//! * **Application logic** — `hedc-dm` (Data Management: name mapping,
//!   sessions, access control, ingest/relocation/recalibration workflows)
//!   and `hedc-pl` (Processing Logic: 4-phase requests, priority
//!   scheduling, fault-tolerant server management).
//! * **Presentation** — `hedc-web` (thin web client, StreamCorder fat
//!   client, synoptic search, density/extent visualization).
//!
//! ```
//! use hedc_core::{Hedc, HedcConfig};
//! use hedc_events::GenConfig;
//!
//! // Boot a repository and load half an hour of synthetic telemetry.
//! let hedc = Hedc::start(HedcConfig::default()).unwrap();
//! let loaded = hedc.load_telemetry(&GenConfig {
//!     duration_ms: 30 * 60 * 1000,
//!     ..GenConfig::default()
//! }, 500_000).unwrap();
//! assert!(loaded.events > 0);
//!
//! // Browse it the way a scientist's browser would.
//! let page = hedc.web().handle(&hedc_web::HttpRequest::get("/hedc/catalogs", "10.0.0.1"));
//! assert_eq!(page.status, 200);
//! hedc.shutdown();
//! ```

#![warn(missing_docs)]

mod config;

pub use config::{ArchiveConfig, HedcConfig, TierConfig};

use hedc_analysis::AlgorithmRegistry;
use hedc_dm::{Dm, DmConfig, DmResult, IngestConfig, IoConfig, Partitioning};
use hedc_events::{generate, package, GenConfig, Telemetry};
use hedc_filestore::{Archive, DirBackend, FileStore};
use hedc_pl::{PlConfig, ProcessingLogic};
use hedc_web::WebServer;
use std::sync::Arc;

/// Summary of a telemetry load.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Telemetry units ingested.
    pub units: usize,
    /// Photons loaded.
    pub photons: usize,
    /// HLEs created by detection.
    pub events: usize,
    /// Bytes stored across archives.
    pub bytes_stored: u64,
}

/// A fully assembled HEDC node.
pub struct Hedc {
    config: HedcConfig,
    dm: Arc<Dm>,
    pl: Arc<ProcessingLogic>,
    web: WebServer,
    registry: Arc<AlgorithmRegistry>,
}

impl Hedc {
    /// Boot a repository from a configuration: mount archives, bootstrap
    /// the DM (schemas, system users, catalogs), start the PL and its
    /// analysis servers, and expose the web frontend.
    pub fn start(config: HedcConfig) -> DmResult<Arc<Hedc>> {
        hedc_metadb::tuning::set_parallel_scan_threshold(config.parallel_scan_rows);
        let files = Arc::new(FileStore::new());
        for a in &config.archives {
            let archive = match &a.directory {
                Some(dir) => Archive::new(
                    a.id,
                    a.name.clone(),
                    a.tier.to_tier(),
                    a.capacity,
                    Box::new(DirBackend::new(dir).map_err(hedc_dm::DmError::Fs)?),
                ),
                None => Archive::in_memory(a.id, a.name.clone(), a.tier.to_tier(), a.capacity),
            };
            files.register(archive);
        }
        let dm = Dm::bootstrap(
            files,
            DmConfig {
                databases: config.databases,
                partitioning: Partitioning::single(),
                io: IoConfig {
                    slow_query: config.slow_query(),
                    ..IoConfig::default()
                },
                start_ms: config.start_ms,
            },
        )?;
        let registry = Arc::new(AlgorithmRegistry::with_builtins());
        let pl = ProcessingLogic::start(
            Arc::clone(&dm),
            Arc::clone(&registry),
            PlConfig {
                servers: config.analysis_servers,
                dispatchers: config.dispatchers,
                job_timeout: config.job_timeout(),
                max_retries: 2,
                derived_archive: config.derived_archive(),
            },
        );
        let web = WebServer::new(Arc::clone(&dm), Some(Arc::clone(&pl)));
        Ok(Arc::new(Hedc {
            config,
            dm,
            pl,
            web,
            registry,
        }))
    }

    /// The Data Management component.
    pub fn dm(&self) -> &Arc<Dm> {
        &self.dm
    }

    /// The Processing Logic component.
    pub fn pl(&self) -> &Arc<ProcessingLogic> {
        &self.pl
    }

    /// The web frontend.
    pub fn web(&self) -> &WebServer {
        &self.web
    }

    /// The analysis-algorithm registry (register user routines here, §3.3).
    pub fn registry(&self) -> &Arc<AlgorithmRegistry> {
        &self.registry
    }

    /// The active configuration.
    pub fn config(&self) -> &HedcConfig {
        &self.config
    }

    /// Generate synthetic telemetry and run the full ingest pipeline over
    /// it (§2.2): package into units, store FITS files, detect events,
    /// build catalogs and load-time wavelet views.
    pub fn load_telemetry(&self, gen: &GenConfig, photons_per_unit: usize) -> DmResult<LoadReport> {
        let telemetry = generate(gen);
        self.load_generated(&telemetry, photons_per_unit)
    }

    /// Ingest already-generated telemetry (lets callers keep the ground
    /// truth for evaluation).
    pub fn load_generated(
        &self,
        telemetry: &Telemetry,
        photons_per_unit: usize,
    ) -> DmResult<LoadReport> {
        let units = package(telemetry, photons_per_unit, 1);
        let session = self.dm.import_session();
        let ingest_cfg = IngestConfig {
            raw_archive: self.config.raw_archive(),
            derived_archive: self.config.derived_archive(),
            extended_catalog: self.dm.extended_catalog,
            detect: self.config.detect.clone(),
            view_bin_ms: self.config.view_bin_ms,
            view_partition: 1024,
            view_quant: self.config.view_quant,
        };
        let mut report = LoadReport {
            units: 0,
            photons: 0,
            events: 0,
            bytes_stored: 0,
        };
        let procs = self.dm.processes();
        for unit in &units {
            let r = procs.ingest_unit(&session, unit, &ingest_cfg)?;
            report.units += 1;
            report.photons += unit.photons.len();
            report.events += r.hle_ids.len();
            report.bytes_stored += r.bytes_stored;
        }
        // Load-time refresh pass: materialized views + archive status.
        self.dm.after_load_maintenance()?;
        Ok(report)
    }

    /// Stop the processing logic (analysis servers and dispatchers).
    pub fn shutdown(&self) {
        self.pl.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hedc_analysis::AnalysisParams;
    use hedc_dm::{Rights, SessionKind};
    use hedc_pl::RequestSpec;
    use hedc_web::HttpRequest;

    fn small_gen() -> GenConfig {
        GenConfig {
            duration_ms: 15 * 60 * 1000,
            flares_per_hour: 8.0,
            background_rate: 15.0,
            seed: 777,
            ..GenConfig::default()
        }
    }

    #[test]
    fn boot_load_browse_analyze() {
        let hedc = Hedc::start(HedcConfig::default()).unwrap();
        let report = hedc.load_telemetry(&small_gen(), 300_000).unwrap();
        assert!(report.events > 0);
        assert!(report.photons > 0);

        // Browse.
        let page = hedc
            .web()
            .handle(&HttpRequest::get("/hedc/catalogs", "1.2.3.4"));
        assert_eq!(page.status, 200);

        // Analyze through the PL.
        hedc.dm()
            .create_user("u", "pw", "sci", Rights::SCIENTIST)
            .unwrap();
        let cookie = hedc.dm().login("u", "pw", "ip").unwrap();
        let session = hedc
            .dm()
            .session("ip", cookie, SessionKind::Analysis)
            .unwrap();
        let hle = hedc
            .dm()
            .services()
            .query(&session, hedc_metadb::Query::table("hle").limit(1))
            .unwrap()
            .rows[0][0]
            .as_int()
            .unwrap();
        let outcome = hedc
            .pl()
            .submit_sync(
                session,
                RequestSpec::new("lightcurve", AnalysisParams::window(0, 300_000), hle),
            )
            .unwrap();
        assert!(outcome.ana_id() > 0);
        hedc.shutdown();
    }

    #[test]
    fn directory_backed_archives() {
        let dir = std::env::temp_dir().join(format!("hedc-core-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = HedcConfig::default();
        config.archives[0].directory = Some(dir.to_string_lossy().to_string());
        let hedc = Hedc::start(config).unwrap();
        hedc.load_telemetry(&small_gen(), usize::MAX).unwrap();
        // Raw FITS files are real files on disk.
        let entries: Vec<_> = std::fs::read_dir(dir.join("raw")).unwrap().collect();
        assert!(!entries.is_empty());
        hedc.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_snapshot_is_stable() {
        let hedc = Hedc::start(HedcConfig::default()).unwrap();
        let json = hedc.config().to_json();
        assert!(json.contains("bulk-disk"));
        hedc.shutdown();
    }
}
