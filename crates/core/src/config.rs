//! Repository configuration.
//!
//! One JSON-serializable description of a HEDC deployment: which archives
//! to mount, how to size the middle tier, how to detect events at ingest.
//! §3.1 drives the design: everything that changed during HEDC's life —
//! archives, detection thresholds, analysis servers, partitioning — is a
//! config value here, not a code change.

use hedc_events::DetectConfig;
use std::time::Duration;

/// Storage tier of a configured archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TierConfig {
    /// Backed-up RAID (critical data).
    OnlineRaid,
    /// Bulk disk.
    OnlineDisk,
    /// NFS-linked remote archive.
    RemoteNfs,
    /// Tape vault.
    TapeVault,
}

impl TierConfig {
    /// Map to the file-store tier.
    pub fn to_tier(self) -> hedc_filestore::ArchiveTier {
        match self {
            TierConfig::OnlineRaid => hedc_filestore::ArchiveTier::OnlineRaid,
            TierConfig::OnlineDisk => hedc_filestore::ArchiveTier::OnlineDisk,
            TierConfig::RemoteNfs => hedc_filestore::ArchiveTier::RemoteNfs,
            TierConfig::TapeVault => hedc_filestore::ArchiveTier::TapeVault,
        }
    }
}

/// One archive to mount.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArchiveConfig {
    /// Archive id (unique).
    pub id: u32,
    /// Human name.
    pub name: String,
    /// Tier.
    pub tier: TierConfig,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Directory to back the archive with (in-memory when None).
    pub directory: Option<String>,
}

/// Full deployment configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct HedcConfig {
    /// Archives to mount. The first `OnlineDisk` archive receives raw data;
    /// the first `OnlineRaid` archive receives derived data.
    pub archives: Vec<ArchiveConfig>,
    /// Metadata database instances.
    pub databases: usize,
    /// Analysis servers to manage.
    pub analysis_servers: usize,
    /// PL dispatcher threads.
    pub dispatchers: usize,
    /// Per-job execution timeout, seconds.
    pub job_timeout_s: u64,
    /// Event-detection tuning applied at ingest.
    pub detect: DetectConfig,
    /// Wavelet view bin width at ingest, ms.
    pub view_bin_ms: u64,
    /// Wavelet view quantization step.
    pub view_quant: f64,
    /// Mission clock start, ms.
    pub start_ms: u64,
    /// Metadata queries slower than this are captured in the observability
    /// event log with their SQL and trace ID. Defaults so configs written
    /// before this field existed still parse.
    #[serde(default = "default_slow_query_ms")]
    pub slow_query_ms: u64,
    /// Candidate-row count above which the metadata executor partitions a
    /// filtered scan across worker threads (`0` disables parallel scans).
    /// Applied to [`hedc_metadb::tuning`] at stack startup; defaults so
    /// configs written before this field existed still parse.
    #[serde(default = "default_parallel_scan_rows")]
    pub parallel_scan_rows: usize,
    /// Traces whose root latency exceeds this are pinned in the flight
    /// recorder until drained; defaults so configs written before this
    /// field existed still parse.
    #[serde(default = "default_slow_trace_ms")]
    pub slow_trace_ms: u64,
    /// Metadata storage engine: in-process heap (the default) or the paged
    /// B-tree store with MVCC snapshot reads. Defaults so configs written
    /// before this field existed still parse.
    #[serde(default)]
    pub storage: hedc_metadb::StorageConfig,
    /// Network-tier admission control: open-connection cap for a `DmServer`
    /// exposing this deployment. Defaults so configs written before this
    /// field existed still parse.
    #[serde(default = "default_net_max_connections")]
    pub net_max_connections: usize,
    /// Network-tier worker threads executing requests (`0` = one per
    /// available core). Defaults so older configs still parse.
    #[serde(default)]
    pub net_workers: usize,
    /// Network-tier per-worker run-queue depth; frames beyond it are shed
    /// with a typed `Overloaded` response. Defaults so older configs still
    /// parse.
    #[serde(default = "default_net_queue_depth")]
    pub net_queue_depth: usize,
    /// Network-tier queue deadline, ms: a request that waited longer is
    /// shed without execution. Defaults so older configs still parse.
    #[serde(default = "default_net_queue_deadline_ms")]
    pub net_queue_deadline_ms: u64,
    /// Network-tier read deadline, ms: a peer that starts a frame and
    /// stalls longer than this is disconnected (slow-loris guard).
    /// Defaults so older configs still parse.
    #[serde(default = "default_net_read_deadline_ms")]
    pub net_read_deadline_ms: u64,
}

fn default_slow_query_ms() -> u64 {
    100
}

fn default_slow_trace_ms() -> u64 {
    1_000
}

fn default_parallel_scan_rows() -> usize {
    hedc_metadb::tuning::DEFAULT_PARALLEL_SCAN_ROWS
}

fn default_net_max_connections() -> usize {
    1024
}

fn default_net_queue_depth() -> usize {
    256
}

fn default_net_queue_deadline_ms() -> u64 {
    1_000
}

fn default_net_read_deadline_ms() -> u64 {
    2_000
}

impl Default for HedcConfig {
    fn default() -> Self {
        HedcConfig {
            archives: vec![
                ArchiveConfig {
                    id: 1,
                    name: "bulk-disk".to_string(),
                    tier: TierConfig::OnlineDisk,
                    capacity: 8 << 30,
                    directory: None,
                },
                ArchiveConfig {
                    id: 2,
                    name: "raid-a1000".to_string(),
                    tier: TierConfig::OnlineRaid,
                    capacity: 4 << 30,
                    directory: None,
                },
                ArchiveConfig {
                    id: 3,
                    name: "tape-vault".to_string(),
                    tier: TierConfig::TapeVault,
                    capacity: 64 << 30,
                    directory: None,
                },
            ],
            databases: 1,
            analysis_servers: 2,
            dispatchers: 2,
            job_timeout_s: 300,
            detect: DetectConfig::default(),
            view_bin_ms: 1000,
            view_quant: 0.5,
            start_ms: 0,
            slow_query_ms: default_slow_query_ms(),
            parallel_scan_rows: default_parallel_scan_rows(),
            slow_trace_ms: default_slow_trace_ms(),
            storage: hedc_metadb::StorageConfig::default(),
            net_max_connections: default_net_max_connections(),
            net_workers: 0,
            net_queue_depth: default_net_queue_depth(),
            net_queue_deadline_ms: default_net_queue_deadline_ms(),
            net_read_deadline_ms: default_net_read_deadline_ms(),
        }
    }
}

impl HedcConfig {
    /// The archive that receives raw telemetry.
    pub fn raw_archive(&self) -> u32 {
        self.archives
            .iter()
            .find(|a| a.tier == TierConfig::OnlineDisk)
            .map(|a| a.id)
            .unwrap_or_else(|| self.archives.first().map(|a| a.id).unwrap_or(1))
    }

    /// The archive that receives derived products.
    pub fn derived_archive(&self) -> u32 {
        self.archives
            .iter()
            .find(|a| a.tier == TierConfig::OnlineRaid)
            .map(|a| a.id)
            .unwrap_or_else(|| self.raw_archive())
    }

    /// Job timeout as a duration.
    pub fn job_timeout(&self) -> Duration {
        Duration::from_secs(self.job_timeout_s)
    }

    /// Slow-query threshold as a duration.
    pub fn slow_query(&self) -> Duration {
        Duration::from_millis(self.slow_query_ms)
    }

    /// Flight-recorder pin threshold as a duration.
    pub fn slow_trace(&self) -> Duration {
        Duration::from_millis(self.slow_trace_ms)
    }

    /// Network-tier queue deadline as a duration.
    pub fn net_queue_deadline(&self) -> Duration {
        Duration::from_millis(self.net_queue_deadline_ms)
    }

    /// Network-tier read deadline (slow-loris guard) as a duration.
    pub fn net_read_deadline(&self) -> Duration {
        Duration::from_millis(self.net_read_deadline_ms)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_routes_archives_by_tier() {
        let c = HedcConfig::default();
        assert_eq!(c.raw_archive(), 1);
        assert_eq!(c.derived_archive(), 2);
    }

    #[test]
    fn json_roundtrip() {
        let c = HedcConfig::default();
        let json = c.to_json();
        let back = HedcConfig::from_json(&json).unwrap();
        assert_eq!(back.archives, c.archives);
        assert_eq!(back.databases, c.databases);
        assert_eq!(back.view_bin_ms, c.view_bin_ms);
    }

    #[test]
    fn slow_query_defaults_when_absent() {
        // Configs serialized before the field existed must still parse.
        let mut json: serde_json::Value =
            serde_json::from_str(&HedcConfig::default().to_json()).unwrap();
        json.as_object_mut().unwrap().remove("slow_query_ms");
        let c = HedcConfig::from_json(&json.to_string()).unwrap();
        assert_eq!(c.slow_query_ms, 100);
        assert_eq!(c.slow_query(), Duration::from_millis(100));
    }

    #[test]
    fn slow_trace_defaults_when_absent() {
        // Same compatibility rule as `slow_query_ms`: older configs parse.
        let mut json: serde_json::Value =
            serde_json::from_str(&HedcConfig::default().to_json()).unwrap();
        json.as_object_mut().unwrap().remove("slow_trace_ms");
        let c = HedcConfig::from_json(&json.to_string()).unwrap();
        assert_eq!(c.slow_trace_ms, 1_000);
        assert_eq!(c.slow_trace(), Duration::from_secs(1));
    }

    #[test]
    fn parallel_scan_rows_defaults_when_absent() {
        // Same compatibility rule as `slow_query_ms`: older configs parse.
        let mut json: serde_json::Value =
            serde_json::from_str(&HedcConfig::default().to_json()).unwrap();
        json.as_object_mut().unwrap().remove("parallel_scan_rows");
        let c = HedcConfig::from_json(&json.to_string()).unwrap();
        assert_eq!(
            c.parallel_scan_rows,
            hedc_metadb::tuning::DEFAULT_PARALLEL_SCAN_ROWS
        );
    }

    #[test]
    fn storage_defaults_when_absent() {
        // Same compatibility rule as `slow_query_ms`: older configs parse
        // and land on the memory backend.
        let mut json: serde_json::Value =
            serde_json::from_str(&HedcConfig::default().to_json()).unwrap();
        json.as_object_mut().unwrap().remove("storage");
        let c = HedcConfig::from_json(&json.to_string()).unwrap();
        assert_eq!(c.storage.backend, hedc_metadb::StorageBackend::Memory);
        // And the paged variant round-trips.
        let c = HedcConfig {
            storage: hedc_metadb::StorageConfig::paged(),
            ..HedcConfig::default()
        };
        let back = HedcConfig::from_json(&c.to_json()).unwrap();
        assert_eq!(back.storage.backend, hedc_metadb::StorageBackend::Paged);
    }

    #[test]
    fn net_admission_fields_default_when_absent() {
        // Same compatibility rule as `slow_query_ms`: configs written
        // before the network-tier admission fields existed still parse.
        let mut json: serde_json::Value =
            serde_json::from_str(&HedcConfig::default().to_json()).unwrap();
        for key in [
            "net_max_connections",
            "net_workers",
            "net_queue_depth",
            "net_queue_deadline_ms",
            "net_read_deadline_ms",
        ] {
            json.as_object_mut().unwrap().remove(key);
        }
        let c = HedcConfig::from_json(&json.to_string()).unwrap();
        assert_eq!(c.net_max_connections, 1024);
        assert_eq!(c.net_workers, 0);
        assert_eq!(c.net_queue_depth, 256);
        assert_eq!(c.net_queue_deadline(), Duration::from_millis(1_000));
        assert_eq!(c.net_read_deadline(), Duration::from_millis(2_000));
    }

    #[test]
    fn missing_tiers_fall_back() {
        let c = HedcConfig {
            archives: vec![ArchiveConfig {
                id: 9,
                name: "only".into(),
                tier: TierConfig::TapeVault,
                capacity: 1,
                directory: None,
            }],
            ..HedcConfig::default()
        };
        assert_eq!(c.raw_archive(), 9);
        assert_eq!(c.derived_archive(), 9);
    }
}
