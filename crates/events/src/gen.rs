//! Synthetic telemetry generation.
//!
//! The substitution for the real RHESSI downlink (we do not have the
//! spacecraft): a seeded generator that lays out a ground-truth timeline of
//! flares, gamma-ray bursts, quiet stretches, SAA transits and spacecraft
//! night, then draws the photon stream those events imply — Poisson
//! background plus event-shaped excess, power-law energies, per-detector
//! assignment. Everything downstream (detection, cataloging, imaging,
//! spectroscopy, the evaluation workloads) runs on this stream exactly as it
//! would on the real one.

use crate::model::{EventKind, FlareClass, TruthEvent, DETECTORS, ENERGY_MIN_KEV};
use hedc_filestore::PhotonList;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration. Defaults give a busy observing day scaled so
/// tests run in milliseconds; the benchmarks scale it up.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct GenConfig {
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
    /// Timeline start, mission-epoch ms.
    pub start_ms: u64,
    /// Timeline length, ms.
    pub duration_ms: u64,
    /// Background photon rate per detector, photons/second.
    pub background_rate: f64,
    /// Mean flares per hour.
    pub flares_per_hour: f64,
    /// Mean gamma-ray bursts per day.
    pub grbs_per_day: f64,
    /// Orbital period (ms) used for night/SAA scheduling.
    pub orbit_ms: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0x1EDC,
            start_ms: 0,
            duration_ms: 2 * 3600 * 1000, // two hours
            background_rate: 40.0,
            flares_per_hour: 2.0,
            grbs_per_day: 3.0,
            // RHESSI's ~96-minute low-Earth orbit.
            orbit_ms: 96 * 60 * 1000,
        }
    }
}

/// Generated telemetry: the photon stream plus the ground truth behind it.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Photon impact list, time-ordered.
    pub photons: PhotonList,
    /// Ground-truth events, time-ordered, non-overlapping for flares/GRBs.
    pub truth: Vec<TruthEvent>,
    /// The config that produced this telemetry.
    pub config: GenConfig,
}

/// Draw an energy from a power-law spectrum `E^-gamma` in `[lo, hi]` keV.
fn power_law_energy(rng: &mut StdRng, gamma: f64, lo: f64, hi: f64) -> f64 {
    // Inverse-CDF sampling for p(E) ∝ E^-gamma.
    let u: f64 = rng.gen();
    if (gamma - 1.0).abs() < 1e-9 {
        lo * (hi / lo).powf(u)
    } else {
        let a = lo.powf(1.0 - gamma);
        let b = hi.powf(1.0 - gamma);
        (a + u * (b - a)).powf(1.0 / (1.0 - gamma))
    }
}

/// Flare time profile: instant rise at 10% of duration, exponential decay.
fn flare_profile(t: f64, duration: f64) -> f64 {
    let rise_end = 0.1 * duration;
    if t < 0.0 || t >= duration {
        0.0
    } else if t < rise_end {
        t / rise_end
    } else {
        (-(t - rise_end) / (0.3 * duration)).exp()
    }
}

/// Generate the full telemetry for a config.
pub fn generate(config: &GenConfig) -> Telemetry {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let end_ms = config.start_ms + config.duration_ms;

    // ---- 1. Ground-truth timeline -----------------------------------------
    let mut truth: Vec<TruthEvent> = Vec::new();

    // Orbit structure: each orbit is [day 55% | SAA 5% | day 10% | night 30%].
    let mut t = config.start_ms;
    while t < end_ms {
        let orbit_end = (t + config.orbit_ms).min(end_ms);
        let saa_start = t + (config.orbit_ms as f64 * 0.55) as u64;
        let saa_end = saa_start + (config.orbit_ms as f64 * 0.05) as u64;
        let night_start = t + (config.orbit_ms as f64 * 0.70) as u64;
        if saa_start < orbit_end {
            truth.push(TruthEvent {
                kind: EventKind::SaaTransit,
                start_ms: saa_start,
                end_ms: saa_end.min(orbit_end),
                peak_rate: 0.0,
            });
        }
        if night_start < orbit_end {
            truth.push(TruthEvent {
                kind: EventKind::NightTime,
                start_ms: night_start,
                end_ms: orbit_end,
                peak_rate: 0.0,
            });
        }
        t = orbit_end;
    }

    // Flares: Poisson arrivals during daylight.
    let expected_flares = config.flares_per_hour * config.duration_ms as f64 / 3_600_000.0;
    let n_flares = sample_poisson(&mut rng, expected_flares);
    for _ in 0..n_flares {
        let start = config.start_ms + rng.gen_range(0..config.duration_ms.max(1));
        let class = match rng.gen_range(0..100) {
            0..=39 => FlareClass::B,
            40..=74 => FlareClass::C,
            75..=94 => FlareClass::M,
            _ => FlareClass::X,
        };
        let duration = rng.gen_range(120_000..900_000).min(end_ms - start); // 2–15 min
        if duration < 30_000 {
            continue;
        }
        truth.push(TruthEvent {
            kind: EventKind::Flare(class),
            start_ms: start,
            end_ms: start + duration,
            peak_rate: config.background_rate * class.rate_multiplier(),
        });
    }

    // Gamma-ray bursts: rare, short, can happen any time (non-solar).
    let expected_grbs = config.grbs_per_day * config.duration_ms as f64 / 86_400_000.0;
    let n_grbs = sample_poisson(&mut rng, expected_grbs);
    for _ in 0..n_grbs {
        let start = config.start_ms + rng.gen_range(0..config.duration_ms.max(1));
        let duration = rng.gen_range(2_000..30_000).min(end_ms - start); // 2–30 s
        if duration < 1_000 {
            continue;
        }
        truth.push(TruthEvent {
            kind: EventKind::GammaRayBurst,
            start_ms: start,
            end_ms: start + duration,
            peak_rate: config.background_rate * 80.0,
        });
    }

    truth.sort_by_key(|e| e.start_ms);

    // Quiet periods: gaps between excess events during daylight, recorded as
    // explicit truth so "quiet sun" catalogs can be evaluated too.
    let mut quiet = Vec::new();
    let mut cursor = config.start_ms;
    let excess: Vec<&TruthEvent> = truth
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::Flare(_)
                    | EventKind::GammaRayBurst
                    | EventKind::SaaTransit
                    | EventKind::NightTime
            )
        })
        .collect();
    for e in &excess {
        if e.start_ms > cursor && e.start_ms - cursor >= 300_000 {
            quiet.push(TruthEvent {
                kind: EventKind::QuietPeriod,
                start_ms: cursor,
                end_ms: e.start_ms,
                peak_rate: 0.0,
            });
        }
        cursor = cursor.max(e.end_ms);
    }
    if end_ms > cursor && end_ms - cursor >= 300_000 {
        quiet.push(TruthEvent {
            kind: EventKind::QuietPeriod,
            start_ms: cursor,
            end_ms,
            peak_rate: 0.0,
        });
    }
    truth.extend(quiet);
    truth.sort_by_key(|e| e.start_ms);

    // ---- 2. Photon stream ---------------------------------------------------
    // Walk the timeline in 1-second steps; per step compute the instantaneous
    // rate (background modulated by night/SAA, plus event excess), draw a
    // Poisson count, then scatter photons uniformly within the second.
    let mut photons = PhotonList::default();
    let steps = config.duration_ms.div_ceil(1000);
    for s in 0..steps {
        let t0 = config.start_ms + s * 1000;
        let mut rate = config.background_rate * DETECTORS as f64;
        let mut hard_fraction: f64 = 0.02; // quiet sun: almost all soft
        for e in &truth {
            if !e.contains(t0) {
                continue;
            }
            match e.kind {
                EventKind::NightTime => rate *= 0.15, // only non-solar background
                EventKind::SaaTransit => rate *= 0.05, // detectors gated off
                EventKind::Flare(_) => {
                    let dt = (t0 - e.start_ms) as f64;
                    let excess =
                        e.peak_rate * DETECTORS as f64 * flare_profile(dt, e.duration_ms() as f64);
                    rate += excess;
                    hard_fraction = 0.10;
                }
                EventKind::GammaRayBurst => {
                    rate += e.peak_rate * DETECTORS as f64;
                    hard_fraction = 0.65; // GRBs are spectrally hard
                }
                EventKind::QuietPeriod => {}
            }
        }
        let count = sample_poisson(&mut rng, rate.max(0.0));
        for _ in 0..count {
            let t = t0 + rng.gen_range(0..1000);
            let hard = rng.gen::<f64>() < hard_fraction;
            let energy = if hard {
                power_law_energy(&mut rng, 2.2, 25.0, 8000.0)
            } else {
                power_law_energy(&mut rng, 3.5, ENERGY_MIN_KEV, 25.0)
            };
            photons.times_ms.push(t);
            photons.energies_kev.push(energy as f32);
            photons.detectors.push(rng.gen_range(0..DETECTORS) as u8);
        }
    }
    // The per-second scattering leaves times unsorted within seconds.
    let mut order: Vec<usize> = (0..photons.len()).collect();
    order.sort_by_key(|&i| photons.times_ms[i]);
    let photons = PhotonList {
        times_ms: order.iter().map(|&i| photons.times_ms[i]).collect(),
        energies_kev: order.iter().map(|&i| photons.energies_kev[i]).collect(),
        detectors: order.iter().map(|&i| photons.detectors[i]).collect(),
    };

    Telemetry {
        photons,
        truth,
        config: config.clone(),
    }
}

/// Knuth's Poisson sampler for small means; normal approximation above 64.
fn sample_poisson(rng: &mut StdRng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 64.0 {
        // Normal approximation, clamped at zero.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        return (mean + z * mean.sqrt()).max(0.0).round() as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> GenConfig {
        GenConfig {
            duration_ms: 30 * 60 * 1000, // 30 minutes
            background_rate: 10.0,
            flares_per_hour: 4.0,
            ..GenConfig::default()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = small_config();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.photons, b.photons);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small_config();
        let a = generate(&cfg);
        cfg.seed += 1;
        let b = generate(&cfg);
        assert_ne!(a.photons.times_ms, b.photons.times_ms);
    }

    #[test]
    fn photons_sorted_and_in_range() {
        let cfg = small_config();
        let t = generate(&cfg);
        assert!(!t.photons.is_empty());
        let times = &t.photons.times_ms;
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(*times.first().unwrap() >= cfg.start_ms);
        assert!(*times.last().unwrap() < cfg.start_ms + cfg.duration_ms + 1000);
        for &e in &t.photons.energies_kev {
            assert!(e >= ENERGY_MIN_KEV as f32 && e <= 20_000.0);
        }
        for &d in &t.photons.detectors {
            assert!((d as usize) < DETECTORS);
        }
    }

    #[test]
    fn flares_visibly_raise_rate() {
        let mut cfg = small_config();
        cfg.flares_per_hour = 60.0; // force flares into a short window
        let t = generate(&cfg);
        let flare = t
            .truth
            .iter()
            .find(|e| matches!(e.kind, EventKind::Flare(_)))
            .expect("at least one flare at this rate");
        // Count rate inside the flare's first third vs a pre-flare window.
        let mid = flare.start_ms + flare.duration_ms() / 6;
        let in_rate = t
            .photons
            .times_ms
            .iter()
            .filter(|&&p| p >= flare.start_ms && p < mid)
            .count() as f64
            / ((mid - flare.start_ms) as f64 / 1000.0);
        let before = flare.start_ms.saturating_sub(60_000);
        let pre_rate = t
            .photons
            .times_ms
            .iter()
            .filter(|&&p| p >= before && p < flare.start_ms)
            .count() as f64
            / 60.0;
        assert!(
            in_rate > pre_rate * 1.5,
            "flare rate {in_rate}/s vs pre {pre_rate}/s"
        );
    }

    #[test]
    fn night_time_suppresses_rate() {
        let cfg = GenConfig {
            duration_ms: 2 * 96 * 60 * 1000, // two orbits
            flares_per_hour: 0.0,
            grbs_per_day: 0.0,
            ..GenConfig::default()
        };
        let t = generate(&cfg);
        let night = t
            .truth
            .iter()
            .find(|e| e.kind == EventKind::NightTime)
            .expect("night in every orbit");
        let night_count = t
            .photons
            .times_ms
            .iter()
            .filter(|&&p| night.contains(p))
            .count() as f64
            / (night.duration_ms() as f64 / 1000.0);
        let day_rate = cfg.background_rate * DETECTORS as f64;
        assert!(
            night_count < day_rate * 0.4,
            "night {night_count}/s vs day {day_rate}/s"
        );
    }

    #[test]
    fn grbs_are_hard_spectrum() {
        let cfg = GenConfig {
            duration_ms: 3600 * 1000,
            grbs_per_day: 200.0, // force some GRBs
            flares_per_hour: 0.0,
            ..GenConfig::default()
        };
        let t = generate(&cfg);
        let grb = t
            .truth
            .iter()
            .find(|e| e.kind == EventKind::GammaRayBurst)
            .expect("a GRB at this rate");
        let mut hard = 0usize;
        let mut total = 0usize;
        for (i, &p) in t.photons.times_ms.iter().enumerate() {
            if grb.contains(p) {
                total += 1;
                if t.photons.energies_kev[i] > 25.0 {
                    hard += 1;
                }
            }
        }
        assert!(total > 100, "GRB should be photon-rich");
        assert!(
            hard as f64 / total as f64 > 0.4,
            "GRB hardness {}/{total}",
            hard
        );
    }

    #[test]
    fn truth_timeline_sorted_with_quiet_gaps() {
        let t = generate(&small_config());
        assert!(t.truth.windows(2).all(|w| w[0].start_ms <= w[1].start_ms));
        // The 30-minute window has at least one classified segment.
        assert!(!t.truth.is_empty());
    }

    #[test]
    fn poisson_sampler_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        for &mean in &[0.5f64, 4.0, 30.0, 200.0] {
            let n = 3000;
            let sum: u64 = (0..n).map(|_| sample_poisson(&mut rng, mean)).sum();
            let est = sum as f64 / n as f64;
            assert!(
                (est - mean).abs() < mean * 0.15 + 0.2,
                "mean {mean}: got {est}"
            );
        }
    }
}
