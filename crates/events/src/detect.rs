//! Event detection over photon streams.
//!
//! When raw data reaches HEDC it is "once more searched for interesting
//! events, using programs that detect a wider range of events such as solar
//! flares, gamma ray bursts, or quiet periods" (§2.2). This is that search:
//! bin the stream, estimate the background robustly, find threshold
//! excursions, and classify each excursion by duration and spectral
//! hardness. The output seeds the extended catalog's HLE tuples.

use crate::model::{EventKind, FlareClass, TruthEvent};
use hedc_filestore::PhotonList;

/// Detection tuning.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DetectConfig {
    /// Bin width for the count series, ms.
    pub bin_ms: u64,
    /// Detection threshold in multiples of the background level.
    pub threshold: f64,
    /// Events closer together than this are merged, ms.
    pub merge_gap_ms: u64,
    /// Minimum event duration to report, ms.
    pub min_duration_ms: u64,
    /// Energy boundary between "soft" and "hard" photons, keV.
    pub hard_kev: f32,
}

impl Default for DetectConfig {
    fn default() -> Self {
        DetectConfig {
            bin_ms: 1000,
            threshold: 2.5,
            merge_gap_ms: 10_000,
            min_duration_ms: 2_000,
            hard_kev: 25.0,
        }
    }
}

/// A detected event, before cataloging.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DetectedEvent {
    /// Classified kind (magnitude for flares estimated from peak rate).
    pub kind: EventKind,
    /// Start, mission-epoch ms (bin-aligned).
    pub start_ms: u64,
    /// End, mission-epoch ms (bin-aligned, exclusive).
    pub end_ms: u64,
    /// Peak rate during the event, photons/second.
    pub peak_rate: f64,
    /// Fraction of photons above the hard-energy boundary.
    pub hardness: f64,
    /// Total photons attributed to the event.
    pub photon_count: u64,
}

/// Bin a photon stream into counts per `bin_ms` over `[start_ms, end_ms)`.
pub fn bin_counts(photons: &PhotonList, start_ms: u64, end_ms: u64, bin_ms: u64) -> Vec<u64> {
    assert!(bin_ms > 0);
    let nbins = ((end_ms.saturating_sub(start_ms)).div_ceil(bin_ms)) as usize;
    let mut counts = vec![0u64; nbins];
    for &t in &photons.times_ms {
        if t >= start_ms && t < end_ms {
            counts[((t - start_ms) / bin_ms) as usize] += 1;
        }
    }
    counts
}

/// Robust background estimate: the median of the count series. The median
/// ignores flare bins as long as flares occupy less than half the window,
/// which is what makes threshold detection stable across active days.
pub fn background_level(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) as f64 / 2.0
    } else {
        sorted[mid] as f64
    }
}

/// Run detection over a photon stream covering `[start_ms, end_ms)`.
pub fn detect(
    photons: &PhotonList,
    start_ms: u64,
    end_ms: u64,
    config: &DetectConfig,
) -> Vec<DetectedEvent> {
    let counts = bin_counts(photons, start_ms, end_ms, config.bin_ms);
    if counts.is_empty() {
        return Vec::new();
    }
    let bg = background_level(&counts).max(1.0);
    let cut = bg * config.threshold;

    // 1. Threshold excursions -> candidate intervals (bin indexes).
    let mut intervals: Vec<(usize, usize)> = Vec::new(); // [lo, hi)
    let mut open: Option<usize> = None;
    for (i, &c) in counts.iter().enumerate() {
        if c as f64 > cut {
            if open.is_none() {
                open = Some(i);
            }
        } else if let Some(lo) = open.take() {
            intervals.push((lo, i));
        }
    }
    if let Some(lo) = open {
        intervals.push((lo, counts.len()));
    }

    // 2. Merge close intervals.
    let gap_bins = (config.merge_gap_ms / config.bin_ms).max(1) as usize;
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for (lo, hi) in intervals {
        match merged.last_mut() {
            Some((_, phi)) if lo <= *phi + gap_bins => *phi = hi.max(*phi),
            _ => merged.push((lo, hi)),
        }
    }

    // 3. Classify each merged interval.
    let mut out = Vec::with_capacity(merged.len());
    for (lo, hi) in merged {
        let ev_start = start_ms + lo as u64 * config.bin_ms;
        let ev_end = start_ms + hi as u64 * config.bin_ms;
        if ev_end - ev_start < config.min_duration_ms {
            continue;
        }
        let peak_bin = counts[lo..hi].iter().copied().max().unwrap_or(0);
        let peak_rate = peak_bin as f64 * 1000.0 / config.bin_ms as f64;
        let (mut hard, mut total) = (0u64, 0u64);
        for (i, &t) in photons.times_ms.iter().enumerate() {
            if t >= ev_start && t < ev_end {
                total += 1;
                if photons.energies_kev[i] > config.hard_kev {
                    hard += 1;
                }
            }
        }
        let hardness = if total == 0 {
            0.0
        } else {
            hard as f64 / total as f64
        };
        // GRBs: short and hard. Flares: longer, soft-dominated.
        let duration = ev_end - ev_start;
        let kind = if hardness > 0.35 && duration <= 60_000 {
            EventKind::GammaRayBurst
        } else {
            let excess = (peak_bin as f64 - bg).max(0.0) / bg;
            let class = if excess > 400.0 {
                FlareClass::X
            } else if excess > 80.0 {
                FlareClass::M
            } else if excess > 15.0 {
                FlareClass::C
            } else if excess > 5.0 {
                FlareClass::B
            } else {
                FlareClass::A
            };
            EventKind::Flare(class)
        };
        out.push(DetectedEvent {
            kind,
            start_ms: ev_start,
            end_ms: ev_end,
            peak_rate,
            hardness,
            photon_count: total,
        });
    }
    out
}

/// Find quiet periods: maximal stretches of at least `min_ms` where counts
/// stay below `threshold × background`. These become the quiet-sun catalog.
pub fn find_quiet_periods(
    photons: &PhotonList,
    start_ms: u64,
    end_ms: u64,
    bin_ms: u64,
    min_ms: u64,
) -> Vec<(u64, u64)> {
    let counts = bin_counts(photons, start_ms, end_ms, bin_ms);
    let bg = background_level(&counts).max(1.0);
    let cut = bg * 1.8;
    let mut out = Vec::new();
    let mut open: Option<usize> = None;
    for (i, &c) in counts.iter().enumerate() {
        if (c as f64) <= cut {
            if open.is_none() {
                open = Some(i);
            }
        } else if let Some(lo) = open.take() {
            let (a, b) = (start_ms + lo as u64 * bin_ms, start_ms + i as u64 * bin_ms);
            if b - a >= min_ms {
                out.push((a, b));
            }
        }
    }
    if let Some(lo) = open {
        let (a, b) = (start_ms + lo as u64 * bin_ms, end_ms);
        if b - a >= min_ms {
            out.push((a, b));
        }
    }
    out
}

/// Detection-quality score against ground truth: fraction of truth events of
/// the given kinds matched by a detection with ≥ 50% overlap.
pub fn recall(truth: &[TruthEvent], detected: &[DetectedEvent], kinds: &[&str]) -> f64 {
    let relevant: Vec<&TruthEvent> = truth
        .iter()
        .filter(|t| kinds.contains(&t.kind.type_name()))
        .collect();
    if relevant.is_empty() {
        return 1.0;
    }
    let hit = relevant
        .iter()
        .filter(|t| {
            detected
                .iter()
                .any(|d| t.overlap(d.start_ms, d.end_ms) >= 0.5)
        })
        .count();
    hit as f64 / relevant.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    fn active_day() -> crate::gen::Telemetry {
        generate(&GenConfig {
            duration_ms: 3600 * 1000,
            flares_per_hour: 3.0,
            background_rate: 20.0,
            seed: 99,
            ..GenConfig::default()
        })
    }

    #[test]
    fn binning_counts_everything_in_range() {
        let t = active_day();
        let cfg = &t.config;
        let counts = bin_counts(
            &t.photons,
            cfg.start_ms,
            cfg.start_ms + cfg.duration_ms,
            1000,
        );
        let binned: u64 = counts.iter().sum();
        let in_range = t
            .photons
            .times_ms
            .iter()
            .filter(|&&p| p < cfg.start_ms + cfg.duration_ms)
            .count() as u64;
        assert_eq!(binned, in_range);
    }

    #[test]
    fn background_median_robust_to_spikes() {
        let mut counts = vec![10u64; 100];
        for c in counts.iter_mut().take(20) {
            *c = 10_000; // a fifth of the window is flaring
        }
        let bg = background_level(&counts);
        assert_eq!(bg, 10.0);
        assert_eq!(background_level(&[]), 0.0);
        assert_eq!(background_level(&[4, 8]), 6.0);
    }

    #[test]
    fn detects_injected_flares() {
        let t = active_day();
        let cfg = &t.config;
        let detected = detect(
            &t.photons,
            cfg.start_ms,
            cfg.start_ms + cfg.duration_ms,
            &DetectConfig::default(),
        );
        let r = recall(&t.truth, &detected, &["flare"]);
        assert!(
            r >= 0.7,
            "flare recall {r} with {} detections",
            detected.len()
        );
    }

    #[test]
    fn detects_grbs_as_hard_events() {
        let t = generate(&GenConfig {
            duration_ms: 3600 * 1000,
            grbs_per_day: 150.0,
            flares_per_hour: 0.0,
            background_rate: 20.0,
            seed: 5,
            ..GenConfig::default()
        });
        let cfg = &t.config;
        let detected = detect(
            &t.photons,
            cfg.start_ms,
            cfg.start_ms + cfg.duration_ms,
            &DetectConfig::default(),
        );
        let grb_detections: Vec<_> = detected
            .iter()
            .filter(|d| d.kind == EventKind::GammaRayBurst)
            .collect();
        assert!(
            !grb_detections.is_empty(),
            "should classify at least one GRB; got {detected:?}"
        );
        let r = recall(&t.truth, &detected, &["grb"]);
        assert!(r >= 0.6, "grb recall {r}");
    }

    #[test]
    fn quiet_stream_yields_no_events() {
        let t = generate(&GenConfig {
            duration_ms: 1800 * 1000,
            flares_per_hour: 0.0,
            grbs_per_day: 0.0,
            background_rate: 20.0,
            orbit_ms: 10 * 3600 * 1000, // no night/saa inside the window
            ..GenConfig::default()
        });
        let cfg = &t.config;
        let detected = detect(
            &t.photons,
            cfg.start_ms,
            cfg.start_ms + cfg.duration_ms,
            &DetectConfig::default(),
        );
        assert!(detected.is_empty(), "{detected:?}");
        let quiet = find_quiet_periods(
            &t.photons,
            cfg.start_ms,
            cfg.start_ms + cfg.duration_ms,
            1000,
            300_000,
        );
        assert!(!quiet.is_empty());
        let total_quiet: u64 = quiet.iter().map(|(a, b)| b - a).sum();
        assert!(total_quiet as f64 > cfg.duration_ms as f64 * 0.9);
    }

    #[test]
    fn empty_photon_list() {
        let p = PhotonList::default();
        assert!(detect(&p, 0, 10_000, &DetectConfig::default()).is_empty());
        assert!(bin_counts(&p, 0, 10_000, 1000).iter().all(|&c| c == 0));
    }

    #[test]
    fn merge_gap_joins_nearby_excursions() {
        // Two bursts 5 s apart with default 10 s merge gap -> one event.
        let mut p = PhotonList::default();
        for burst_start in [10_000u64, 17_000] {
            for i in 0..3000 {
                p.times_ms.push(burst_start + (i % 2000) as u64);
                p.energies_kev.push(10.0);
                p.detectors.push(0);
            }
        }
        // Sprinkle background so the median is small but non-zero.
        for s in 0..60 {
            p.times_ms.push(s * 1000);
            p.energies_kev.push(5.0);
            p.detectors.push(1);
        }
        let mut order: Vec<usize> = (0..p.times_ms.len()).collect();
        order.sort_by_key(|&i| p.times_ms[i]);
        let p = PhotonList {
            times_ms: order.iter().map(|&i| p.times_ms[i]).collect(),
            energies_kev: order.iter().map(|&i| p.energies_kev[i]).collect(),
            detectors: order.iter().map(|&i| p.detectors[i]).collect(),
        };
        let detected = detect(&p, 0, 60_000, &DetectConfig::default());
        assert_eq!(detected.len(), 1, "{detected:?}");
        assert!(detected[0].start_ms <= 10_000);
        assert!(detected[0].end_ms >= 19_000);
    }
}
