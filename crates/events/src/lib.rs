//! # hedc-events — synthetic RHESSI telemetry, detection, calibration
//!
//! The substitution for the real spacecraft downlink (see DESIGN.md): a
//! deterministic generator produces photon-impact streams with embedded
//! ground truth — solar flares, gamma-ray bursts, quiet sun, SAA transits,
//! spacecraft night (§2.1/§3.2 of the paper) — and the pipeline pieces that
//! act on them:
//!
//! * [`generate`] — seeded telemetry synthesis with a [`TruthEvent`] record
//!   of everything injected.
//! * [`package`] — segmentation of the stream into distribution units
//!   (the "roughly 40 MB" FITS units of §2.1, size-configurable).
//! * [`detect()`] — the event search HEDC runs at ingest (§2.2), recovering
//!   flares/GRBs/quiet periods from counts alone; quality is measurable
//!   against the ground truth via [`recall`].
//! * [`Calibration`] / [`recalibrate`] — versioned energy calibration and
//!   the archive-wide recalibration sweep the paper plans for (§3.1).
//!
//! ```
//! use hedc_events::{generate, detect, recall, GenConfig, DetectConfig};
//!
//! let telemetry = generate(&GenConfig { duration_ms: 600_000, ..GenConfig::default() });
//! let cfg = &telemetry.config;
//! let events = detect(&telemetry.photons, cfg.start_ms,
//!                     cfg.start_ms + cfg.duration_ms, &DetectConfig::default());
//! // `events` seeds the extended catalog; quality is measurable:
//! let _r = recall(&telemetry.truth, &events, &["flare"]);
//! ```

#![warn(missing_docs)]

pub mod calib;
pub mod detect;
pub mod gen;
pub mod model;
pub mod phoenix;
pub mod telemetry;

pub use calib::{recalibrate, CalError, Calibration, DetectorCal};
pub use detect::{
    background_level, bin_counts, detect, find_quiet_periods, recall, DetectConfig, DetectedEvent,
};
pub use gen::{generate, GenConfig, Telemetry};
pub use model::{EventKind, FlareClass, TruthEvent, DETECTORS, ENERGY_MAX_KEV, ENERGY_MIN_KEV};
pub use phoenix::{
    detect_radio_bursts, generate_phoenix, PhoenixConfig, PhoenixScan, RadioBurstType,
};
pub use telemetry::{package, TelemetryUnit};
