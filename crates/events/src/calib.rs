//! Energy calibration and recalibration.
//!
//! "It is to be expected that the raw data will be recalibrated several
//! times. Accordingly, the raw data and all the derived data based on it
//! must be versioned" (§3.1). Detector energies are an affine function of
//! the raw channel value; a calibration version fixes that function per
//! detector. Recalibration maps stored energies from one version's model to
//! another's, and every derived product records the version it was computed
//! under so stale analyses can be found and recomputed.

use crate::model::DETECTORS;
use hedc_filestore::PhotonList;
use std::fmt;

/// One detector's affine energy model: `keV = gain × channel + offset`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DetectorCal {
    /// keV per channel.
    pub gain: f64,
    /// keV at channel zero.
    pub offset: f64,
}

/// A full calibration version: per-detector models plus an id.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Calibration {
    /// Monotonically increasing version number (1 = launch calibration).
    pub version: u32,
    /// Per-detector models.
    pub detectors: Vec<DetectorCal>,
}

/// Errors from calibration operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CalError {
    /// Photon list references a detector the calibration lacks.
    UnknownDetector(u8),
    /// A gain of zero cannot be inverted.
    DegenerateGain(usize),
}

impl fmt::Display for CalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalError::UnknownDetector(d) => write!(f, "no calibration for detector {d}"),
            CalError::DegenerateGain(d) => write!(f, "zero gain for detector {d}"),
        }
    }
}

impl std::error::Error for CalError {}

impl Calibration {
    /// The launch calibration: version 1, nominal 1 keV/channel gain with
    /// small per-detector offsets (germanium detectors are individually
    /// characterized).
    pub fn launch() -> Self {
        Calibration {
            version: 1,
            detectors: (0..DETECTORS)
                .map(|d| DetectorCal {
                    gain: 1.0 + d as f64 * 0.002,
                    offset: 0.1 * d as f64,
                })
                .collect(),
        }
    }

    /// Produce the next calibration version with adjusted models — the
    /// "recalibration" the paper plans for. `gain_drift` and `offset_shift`
    /// are applied uniformly (a refined characterization).
    pub fn recalibrated(&self, gain_drift: f64, offset_shift: f64) -> Self {
        Calibration {
            version: self.version + 1,
            detectors: self
                .detectors
                .iter()
                .map(|c| DetectorCal {
                    gain: c.gain * (1.0 + gain_drift),
                    offset: c.offset + offset_shift,
                })
                .collect(),
        }
    }

    fn model(&self, detector: u8) -> Result<DetectorCal, CalError> {
        self.detectors
            .get(detector as usize)
            .copied()
            .ok_or(CalError::UnknownDetector(detector))
    }

    /// Energy in keV for a raw channel value on a detector.
    pub fn energy_kev(&self, detector: u8, channel: f64) -> Result<f64, CalError> {
        let m = self.model(detector)?;
        Ok(m.gain * channel + m.offset)
    }

    /// Invert: channel for an energy.
    pub fn channel(&self, detector: u8, kev: f64) -> Result<f64, CalError> {
        let m = self.model(detector)?;
        if m.gain == 0.0 {
            return Err(CalError::DegenerateGain(detector as usize));
        }
        Ok((kev - m.offset) / m.gain)
    }
}

/// Map a photon list calibrated under `from` onto calibration `to`:
/// energy → channel (under `from`) → energy (under `to`). Times and
/// detectors are untouched. This is what runs over the archive when a new
/// calibration version lands.
pub fn recalibrate(
    photons: &PhotonList,
    from: &Calibration,
    to: &Calibration,
) -> Result<PhotonList, CalError> {
    let mut out = photons.clone();
    for (i, e) in out.energies_kev.iter_mut().enumerate() {
        let det = photons.detectors[i];
        let channel = from.channel(det, f64::from(*e))?;
        *e = to.energy_kev(det, channel)? as f32;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PhotonList {
        PhotonList {
            times_ms: vec![1, 2, 3, 4],
            energies_kev: vec![10.0, 100.0, 1000.0, 25.0],
            detectors: vec![0, 3, 8, 5],
        }
    }

    #[test]
    fn launch_calibration_roundtrips_channels() {
        let cal = Calibration::launch();
        for d in 0..DETECTORS as u8 {
            let ch = cal.channel(d, 50.0).unwrap();
            let kev = cal.energy_kev(d, ch).unwrap();
            assert!((kev - 50.0).abs() < 1e-9);
        }
    }

    #[test]
    fn recalibration_changes_version_and_energies() {
        let v1 = Calibration::launch();
        let v2 = v1.recalibrated(0.05, -0.2);
        assert_eq!(v2.version, 2);
        let p = sample();
        let q = recalibrate(&p, &v1, &v2).unwrap();
        assert_eq!(q.times_ms, p.times_ms);
        assert_eq!(q.detectors, p.detectors);
        // Energies shift by roughly the gain drift.
        for (a, b) in p.energies_kev.iter().zip(&q.energies_kev) {
            assert!(b > a || *a < 1.0, "recal should raise energies: {a} -> {b}");
        }
    }

    #[test]
    fn recalibration_is_invertible() {
        let v1 = Calibration::launch();
        let v2 = v1.recalibrated(0.03, 0.5);
        let p = sample();
        let q = recalibrate(&p, &v1, &v2).unwrap();
        let back = recalibrate(&q, &v2, &v1).unwrap();
        for (a, b) in p.energies_kev.iter().zip(&back.energies_kev) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn identity_recalibration_is_noop() {
        let v1 = Calibration::launch();
        let p = sample();
        let q = recalibrate(&p, &v1, &v1).unwrap();
        for (a, b) in p.energies_kev.iter().zip(&q.energies_kev) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn unknown_detector_rejected() {
        let cal = Calibration::launch();
        assert_eq!(
            cal.energy_kev(9, 1.0).unwrap_err(),
            CalError::UnknownDetector(9)
        );
        let mut p = sample();
        p.detectors[0] = 200;
        assert!(recalibrate(&p, &cal, &cal).is_err());
    }

    #[test]
    fn zero_gain_rejected() {
        let mut cal = Calibration::launch();
        cal.detectors[2].gain = 0.0;
        assert_eq!(
            cal.channel(2, 5.0).unwrap_err(),
            CalError::DegenerateGain(2)
        );
    }
}
