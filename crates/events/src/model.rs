//! The physical model: what the synthetic spacecraft observes.
//!
//! RHESSI (paper §2.1) images the Sun with 9 rotating modulation collimators,
//! each backed by a germanium detector covering 3 keV–20 MeV. The data is
//! "a list of photon impacts on the detectors, with an energy and a time tag
//! attached to each record" (§3.4). This module defines the ground-truth
//! event types the generator injects and the detection pipeline must
//! recover — including the non-solar ones (gamma-ray bursts) whose loss the
//! paper warns a "solar flare only" system would cause (§3.2).

/// Number of germanium detectors / collimators on the spacecraft.
pub const DETECTORS: usize = 9;

/// Lowest detectable photon energy (soft X-ray), keV.
pub const ENERGY_MIN_KEV: f64 = 3.0;

/// Highest detectable photon energy (gamma), keV (20 MeV).
pub const ENERGY_MAX_KEV: f64 = 20_000.0;

/// GOES-like flare magnitude class, ordered by peak flux.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum FlareClass {
    /// Smallest detectable events.
    A,
    /// Small.
    B,
    /// Common.
    C,
    /// Medium.
    M,
    /// Largest.
    X,
}

impl FlareClass {
    /// Peak photon rate multiplier over background for this class.
    pub fn rate_multiplier(self) -> f64 {
        match self {
            FlareClass::A => 3.0,
            FlareClass::B => 8.0,
            FlareClass::C => 25.0,
            FlareClass::M => 120.0,
            FlareClass::X => 600.0,
        }
    }

    /// Catalog label.
    pub fn label(self) -> &'static str {
        match self {
            FlareClass::A => "A",
            FlareClass::B => "B",
            FlareClass::C => "C",
            FlareClass::M => "M",
            FlareClass::X => "X",
        }
    }
}

/// Kind of ground-truth event injected into the photon stream.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum EventKind {
    /// Solar flare: minutes-long, soft-dominated spectrum, exponential decay.
    Flare(FlareClass),
    /// Gamma-ray burst: seconds-long, hard spectrum — the non-solar science
    /// the open design must not preclude (§3.2).
    GammaRayBurst,
    /// Quiet sun: background only (still data! §3.2 argues against dropping it).
    QuietPeriod,
    /// South Atlantic Anomaly transit: detectors effectively blind,
    /// elevated noise floor, no science signal.
    SaaTransit,
    /// Spacecraft night: Earth occults the Sun; only non-solar photons.
    NightTime,
}

impl EventKind {
    /// Catalog type string, as stored in HLE tuples.
    pub fn type_name(self) -> &'static str {
        match self {
            EventKind::Flare(_) => "flare",
            EventKind::GammaRayBurst => "grb",
            EventKind::QuietPeriod => "quiet",
            EventKind::SaaTransit => "saa",
            EventKind::NightTime => "night",
        }
    }
}

/// One ground-truth event: the generator's record of what it injected,
/// against which detection quality is measured.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TruthEvent {
    /// Kind and magnitude.
    pub kind: EventKind,
    /// Start, mission-epoch milliseconds.
    pub start_ms: u64,
    /// End, mission-epoch milliseconds.
    pub end_ms: u64,
    /// Peak excess rate in photons/second above background (0 for quiet).
    pub peak_rate: f64,
}

impl TruthEvent {
    /// Duration in milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.end_ms - self.start_ms
    }

    /// Whether `t` falls inside the event.
    pub fn contains(&self, t_ms: u64) -> bool {
        t_ms >= self.start_ms && t_ms < self.end_ms
    }

    /// Fractional overlap of `[a,b)` with this event relative to the
    /// shorter of the two intervals (symmetric match score for detection
    /// evaluation).
    pub fn overlap(&self, a_ms: u64, b_ms: u64) -> f64 {
        let lo = self.start_ms.max(a_ms);
        let hi = self.end_ms.min(b_ms);
        if hi <= lo {
            return 0.0;
        }
        let inter = (hi - lo) as f64;
        let shorter = (self.duration_ms().min(b_ms.saturating_sub(a_ms))) as f64;
        if shorter == 0.0 {
            0.0
        } else {
            inter / shorter
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ordering_matches_physics() {
        assert!(FlareClass::X.rate_multiplier() > FlareClass::M.rate_multiplier());
        assert!(FlareClass::A < FlareClass::X);
        assert_eq!(FlareClass::M.label(), "M");
    }

    #[test]
    fn truth_event_overlap() {
        let e = TruthEvent {
            kind: EventKind::Flare(FlareClass::C),
            start_ms: 1000,
            end_ms: 2000,
            peak_rate: 100.0,
        };
        assert_eq!(e.duration_ms(), 1000);
        assert!(e.contains(1500));
        assert!(!e.contains(2000));
        assert_eq!(e.overlap(1000, 2000), 1.0);
        assert_eq!(e.overlap(0, 500), 0.0);
        assert!((e.overlap(1500, 2500) - 0.5).abs() < 1e-9);
        // Detection window fully inside the event scores 1.0.
        assert_eq!(e.overlap(1200, 1400), 1.0);
    }

    #[test]
    fn kind_names_are_catalog_types() {
        assert_eq!(EventKind::Flare(FlareClass::B).type_name(), "flare");
        assert_eq!(EventKind::GammaRayBurst.type_name(), "grb");
        assert_eq!(EventKind::SaaTransit.type_name(), "saa");
    }
}
