//! Phoenix-2 ground-based radio spectrometer data.
//!
//! HEDC hosts a second instrument besides RHESSI: "around 25 GB of
//! measurements taken by the Phoenix-2 Broadband Spectrometer in Bleien,
//! Switzerland ... The Phoenix catalog contains spectrograms for around
//! 3000 identified solar events" (§2.2). Phoenix is the paper's proof that
//! the generic/domain schema split absorbs *new data sources* (§3.1):
//! different physics (radio flux vs photon counts), a different product
//! (spectrogram grids), a different cadence — same repository.

use hedc_filestore::{CardValue, FitsFile, Header, ImageData};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Solar radio burst types Phoenix-2 classifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RadioBurstType {
    /// Type II: slow-drifting shock signature.
    TypeII,
    /// Type III: fast-drifting electron beams (flare-associated).
    TypeIII,
    /// Type IV: broadband continuum.
    TypeIV,
}

impl RadioBurstType {
    /// Catalog label.
    pub fn label(self) -> &'static str {
        match self {
            RadioBurstType::TypeII => "radio-II",
            RadioBurstType::TypeIII => "radio-III",
            RadioBurstType::TypeIV => "radio-IV",
        }
    }
}

/// One Phoenix-2 scan: a frequency × time spectrogram with burst truth.
#[derive(Debug, Clone, PartialEq)]
pub struct PhoenixScan {
    /// Scan sequence number.
    pub seq: u32,
    /// Scan start, mission ms.
    pub t_start: u64,
    /// Scan end, mission ms.
    pub t_end: u64,
    /// Lower frequency bound, MHz.
    pub freq_lo: f64,
    /// Upper frequency bound, MHz.
    pub freq_hi: f64,
    /// The spectrogram (time columns × frequency rows).
    pub spectrogram: ImageData,
    /// Bursts injected into the scan: (type, start ms, end ms).
    pub bursts: Vec<(RadioBurstType, u64, u64)>,
}

impl PhoenixScan {
    /// Package as a FITS file with Phoenix metadata.
    pub fn to_fits(&self) -> FitsFile {
        let mut h = Header::new();
        h.set("INSTRUME", CardValue::Text("PHOENIX2".into()));
        h.set("SCANSEQ", CardValue::Int(i64::from(self.seq)));
        h.set("TSTART", CardValue::Int(self.t_start as i64));
        h.set("TEND", CardValue::Int(self.t_end as i64));
        h.set("FREQLO", CardValue::Float(self.freq_lo));
        h.set("FREQHI", CardValue::Float(self.freq_hi));
        self.spectrogram.to_fits(h)
    }

    /// Parse a packaged scan (bursts are catalog data, not in the file).
    pub fn from_fits(file: &FitsFile) -> hedc_filestore::FsResult<PhoenixScan> {
        let instrument = file.header.require_text("INSTRUME")?;
        if instrument != "PHOENIX2" {
            return Err(hedc_filestore::FsError::BadFormat(format!(
                "expected PHOENIX2 data, got {instrument}"
            )));
        }
        Ok(PhoenixScan {
            seq: file.header.require_int("SCANSEQ")? as u32,
            t_start: file.header.require_int("TSTART")? as u64,
            t_end: file.header.require_int("TEND")? as u64,
            freq_lo: file
                .header
                .get("FREQLO")
                .and_then(CardValue::as_float)
                .unwrap_or(100.0),
            freq_hi: file
                .header
                .get("FREQHI")
                .and_then(CardValue::as_float)
                .unwrap_or(4000.0),
            spectrogram: ImageData::from_fits(file)?,
            bursts: Vec::new(),
        })
    }

    /// Canonical archive path.
    pub fn archive_path(&self) -> String {
        format!("phoenix/scan{:06}_t{}.fits", self.seq, self.t_start)
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct PhoenixConfig {
    /// RNG seed.
    pub seed: u64,
    /// Timeline start, mission ms.
    pub start_ms: u64,
    /// Total observation span, ms.
    pub duration_ms: u64,
    /// Scan length, ms (scans tile the span).
    pub scan_ms: u64,
    /// Time resolution, ms per spectrogram column.
    pub time_res_ms: u64,
    /// Frequency channels.
    pub channels: u32,
    /// Mean bursts per hour.
    pub bursts_per_hour: f64,
}

impl Default for PhoenixConfig {
    fn default() -> Self {
        PhoenixConfig {
            seed: 0x0F0E,
            start_ms: 0,
            duration_ms: 3600 * 1000,
            scan_ms: 15 * 60 * 1000,
            time_res_ms: 1000,
            channels: 64,
            bursts_per_hour: 4.0,
        }
    }
}

/// Generate Phoenix-2 scans tiling the configured span.
pub fn generate_phoenix(config: &PhoenixConfig) -> Vec<PhoenixScan> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut scans = Vec::new();
    let mut seq = 0u32;
    let mut t = config.start_ms;
    let end = config.start_ms + config.duration_ms;
    while t < end {
        let scan_end = (t + config.scan_ms).min(end);
        let cols = ((scan_end - t) / config.time_res_ms) as u32;
        let mut spec = ImageData::zeroed(cols.max(1), config.channels);
        // Quiet-sun radio background: smooth per-channel level + noise.
        for y in 0..config.channels {
            let base = 20.0 + 10.0 * (y as f32 / config.channels as f32);
            for x in 0..cols {
                let noise: f32 = rng.gen_range(-2.0..2.0);
                spec.set(x, y, base + noise);
            }
        }
        // Inject bursts.
        let expected = config.bursts_per_hour * (scan_end - t) as f64 / 3_600_000.0;
        let n_bursts = expected.floor() as u64 + u64::from(rng.gen::<f64>() < expected.fract());
        let mut bursts = Vec::new();
        for _ in 0..n_bursts {
            let kind = match rng.gen_range(0..10) {
                0..=1 => RadioBurstType::TypeII,
                2..=7 => RadioBurstType::TypeIII,
                _ => RadioBurstType::TypeIV,
            };
            let b_start = t + rng.gen_range(0..(scan_end - t).max(1));
            let (dur_ms, drift) = match kind {
                // Type III: seconds, fast drift across all channels.
                RadioBurstType::TypeIII => (rng.gen_range(3_000..15_000), 8.0),
                // Type II: minutes, slow drift.
                RadioBurstType::TypeII => (rng.gen_range(120_000..400_000), 0.5),
                // Type IV: broadband, long.
                RadioBurstType::TypeIV => (rng.gen_range(300_000..600_000), 0.0),
            };
            let b_end = (b_start + dur_ms).min(scan_end);
            let x0 = ((b_start - t) / config.time_res_ms) as i64;
            let x1 = ((b_end - t) / config.time_res_ms) as i64;
            for x in x0..x1.min(cols as i64) {
                for y in 0..config.channels {
                    let intensity = if drift > 0.0 {
                        // Drifting lane: bright where channel tracks time.
                        let lane = ((x - x0) as f64 * drift) as i64 % i64::from(config.channels);
                        if (i64::from(y) - lane).abs() <= 3 {
                            400.0
                        } else {
                            0.0
                        }
                    } else {
                        150.0 // broadband continuum
                    };
                    if intensity > 0.0 && x >= 0 {
                        let cur = spec.get(x as u32, y);
                        spec.set(x as u32, y, cur + intensity as f32);
                    }
                }
            }
            bursts.push((kind, b_start, b_end));
        }
        bursts.sort_by_key(|b| b.1);
        scans.push(PhoenixScan {
            seq,
            t_start: t,
            t_end: scan_end,
            freq_lo: 100.0,
            freq_hi: 4000.0,
            spectrogram: spec,
            bursts,
        });
        seq += 1;
        t = scan_end;
    }
    scans
}

/// Detect radio bursts in a spectrogram: columns whose total flux exceeds
/// the scan's median by `threshold`×, merged into intervals.
pub fn detect_radio_bursts(
    scan: &PhoenixScan,
    threshold: f64,
    time_res_ms: u64,
) -> Vec<(u64, u64)> {
    let cols = scan.spectrogram.width as usize;
    let mut flux: Vec<f64> = Vec::with_capacity(cols);
    for x in 0..cols {
        let mut sum = 0.0f64;
        for y in 0..scan.spectrogram.height {
            sum += f64::from(scan.spectrogram.get(x as u32, y));
        }
        flux.push(sum);
    }
    let mut sorted = flux.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted.get(cols / 2).copied().unwrap_or(0.0).max(1.0);
    let cut = median * threshold;
    let mut out: Vec<(u64, u64)> = Vec::new();
    let mut open: Option<usize> = None;
    for (x, &f) in flux.iter().enumerate() {
        if f > cut {
            if open.is_none() {
                open = Some(x);
            }
        } else if let Some(x0) = open.take() {
            out.push((
                scan.t_start + x0 as u64 * time_res_ms,
                scan.t_start + x as u64 * time_res_ms,
            ));
        }
    }
    if let Some(x0) = open {
        out.push((scan.t_start + x0 as u64 * time_res_ms, scan.t_end));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_tile_the_span() {
        let cfg = PhoenixConfig::default();
        let scans = generate_phoenix(&cfg);
        assert_eq!(scans.len(), 4); // 1 h in 15-minute scans
        assert_eq!(scans[0].t_start, 0);
        for w in scans.windows(2) {
            assert_eq!(w[0].t_end, w[1].t_start);
        }
        assert_eq!(scans.last().unwrap().t_end, cfg.duration_ms);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = PhoenixConfig::default();
        let a = generate_phoenix(&cfg);
        let b = generate_phoenix(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn fits_roundtrip() {
        let scans = generate_phoenix(&PhoenixConfig {
            duration_ms: 15 * 60 * 1000,
            ..PhoenixConfig::default()
        });
        let fits = scans[0].to_fits();
        let bytes = fits.to_bytes();
        let parsed = PhoenixScan::from_fits(&FitsFile::from_bytes(&bytes).unwrap()).unwrap();
        assert_eq!(parsed.seq, scans[0].seq);
        assert_eq!(parsed.spectrogram, scans[0].spectrogram);
        assert_eq!(parsed.freq_hi, 4000.0);
    }

    #[test]
    fn wrong_instrument_rejected() {
        let img = ImageData::zeroed(4, 4);
        let fits = img.to_fits(Header::new());
        assert!(PhoenixScan::from_fits(&fits).is_err());
    }

    #[test]
    fn bursts_are_detectable() {
        let cfg = PhoenixConfig {
            bursts_per_hour: 20.0,
            seed: 9,
            ..PhoenixConfig::default()
        };
        let scans = generate_phoenix(&cfg);
        let total_truth: usize = scans.iter().map(|s| s.bursts.len()).sum();
        assert!(total_truth > 0, "need bursts at this rate");
        let mut hits = 0usize;
        for scan in &scans {
            let detected = detect_radio_bursts(scan, 1.5, cfg.time_res_ms);
            for (_, b_start, b_end) in &scan.bursts {
                if detected.iter().any(|(d0, d1)| d0 < b_end && b_start < d1) {
                    hits += 1;
                }
            }
        }
        assert!(
            hits as f64 >= total_truth as f64 * 0.6,
            "detected {hits}/{total_truth}"
        );
    }

    #[test]
    fn quiet_scan_no_detections() {
        let cfg = PhoenixConfig {
            bursts_per_hour: 0.0,
            duration_ms: 15 * 60 * 1000,
            ..PhoenixConfig::default()
        };
        let scans = generate_phoenix(&cfg);
        for scan in &scans {
            assert!(scan.bursts.is_empty());
            let detected = detect_radio_bursts(scan, 1.5, cfg.time_res_ms);
            assert!(detected.is_empty(), "{detected:?}");
        }
    }
}
