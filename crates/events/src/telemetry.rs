//! Telemetry packaging: photon streams → distribution units.
//!
//! The downlink "is analyzed for possibly relevant events, segmented along
//! the time axis, packaged into units of roughly 40 MB, formatted as FITS
//! files and compressed" (§2.1). This module performs the segmentation and
//! packaging; the FITS formatting and compression come from
//! `hedc-filestore`.

use crate::gen::Telemetry;
use hedc_filestore::{CardValue, FitsFile, Header, PhotonList};

/// One distribution unit: a time slice of the photon stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryUnit {
    /// Sequence number within the batch.
    pub seq: u32,
    /// Start of the covered interval, mission-epoch ms.
    pub start_ms: u64,
    /// End of the covered interval (exclusive).
    pub end_ms: u64,
    /// The photons in the interval.
    pub photons: PhotonList,
    /// Calibration version the energies were computed under.
    pub calib_version: u32,
}

impl TelemetryUnit {
    /// Package as a FITS file with the unit metadata the catalog needs.
    pub fn to_fits(&self) -> FitsFile {
        let mut h = Header::new();
        h.set("UNITSEQ", CardValue::Int(i64::from(self.seq)));
        h.set("TSTART", CardValue::Int(self.start_ms as i64));
        h.set("TEND", CardValue::Int(self.end_ms as i64));
        h.set("CALVER", CardValue::Int(i64::from(self.calib_version)));
        self.photons.to_fits(h)
    }

    /// Parse a packaged unit back.
    pub fn from_fits(file: &FitsFile) -> hedc_filestore::FsResult<TelemetryUnit> {
        let photons = PhotonList::from_fits(file)?;
        Ok(TelemetryUnit {
            seq: file.header.require_int("UNITSEQ")? as u32,
            start_ms: file.header.require_int("TSTART")? as u64,
            end_ms: file.header.require_int("TEND")? as u64,
            photons,
            calib_version: file.header.require_int("CALVER")? as u32,
        })
    }

    /// Canonical archive path for this unit.
    pub fn archive_path(&self) -> String {
        format!("raw/unit{:06}_t{}.fits", self.seq, self.start_ms)
    }
}

/// Segment telemetry into units of at most `photons_per_unit` photons,
/// cutting on whole-second boundaries (a unit must not split a second,
/// because downstream binning assumes second-aligned edges).
pub fn package(
    telemetry: &Telemetry,
    photons_per_unit: usize,
    calib_version: u32,
) -> Vec<TelemetryUnit> {
    assert!(photons_per_unit > 0);
    let p = &telemetry.photons;
    let t_end = telemetry.config.start_ms + telemetry.config.duration_ms;
    let mut units = Vec::new();
    let mut seq = 0u32;
    let mut i = 0usize;
    let mut unit_start = telemetry.config.start_ms;
    while i < p.len() {
        // Tentative cut after photons_per_unit photons...
        let mut j = (i + photons_per_unit).min(p.len());
        if j < p.len() {
            // ...moved forward to the next whole-second boundary.
            let cut_sec = p.times_ms[j] / 1000;
            while j < p.len() && p.times_ms[j] / 1000 == cut_sec {
                j += 1;
            }
        }
        let end_ms = if j >= p.len() {
            t_end
        } else {
            (p.times_ms[j] / 1000) * 1000
        };
        units.push(TelemetryUnit {
            seq,
            start_ms: unit_start,
            end_ms,
            photons: PhotonList {
                times_ms: p.times_ms[i..j].to_vec(),
                energies_kev: p.energies_kev[i..j].to_vec(),
                detectors: p.detectors[i..j].to_vec(),
            },
            calib_version,
        });
        seq += 1;
        unit_start = end_ms;
        i = j;
    }
    if units.is_empty() {
        // An empty stream still produces one (empty) unit covering the span.
        units.push(TelemetryUnit {
            seq: 0,
            start_ms: telemetry.config.start_ms,
            end_ms: t_end,
            photons: PhotonList::default(),
            calib_version,
        });
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    fn telemetry() -> Telemetry {
        generate(&GenConfig {
            duration_ms: 20 * 60 * 1000,
            background_rate: 30.0,
            seed: 11,
            ..GenConfig::default()
        })
    }

    #[test]
    fn units_partition_the_stream() {
        let t = telemetry();
        let units = package(&t, 50_000, 1);
        assert!(units.len() > 1, "should split: {} photons", t.photons.len());
        let total: usize = units.iter().map(|u| u.photons.len()).sum();
        assert_eq!(total, t.photons.len());
        // Contiguous, ordered, covering the whole span.
        assert_eq!(units[0].start_ms, t.config.start_ms);
        for w in units.windows(2) {
            assert_eq!(w[0].end_ms, w[1].start_ms);
        }
        assert_eq!(
            units.last().unwrap().end_ms,
            t.config.start_ms + t.config.duration_ms
        );
        // Every photon lands in its unit's interval.
        for u in &units {
            for &pt in &u.photons.times_ms {
                assert!(pt >= u.start_ms && pt < u.end_ms.max(u.start_ms + 1));
            }
        }
    }

    #[test]
    fn cuts_on_second_boundaries() {
        let t = telemetry();
        let units = package(&t, 10_000, 1);
        for u in &units[..units.len() - 1] {
            assert_eq!(
                u.end_ms % 1000,
                0,
                "unit end {} not second-aligned",
                u.end_ms
            );
        }
    }

    #[test]
    fn fits_roundtrip_per_unit() {
        let t = telemetry();
        let units = package(&t, 100_000, 3);
        let u = &units[0];
        let fits = u.to_fits();
        let bytes = fits.to_bytes();
        let parsed = hedc_filestore::FitsFile::from_bytes(&bytes).unwrap();
        let back = TelemetryUnit::from_fits(&parsed).unwrap();
        assert_eq!(&back, u);
        assert_eq!(back.calib_version, 3);
        assert!(u.archive_path().starts_with("raw/unit000000"));
    }

    #[test]
    fn empty_stream_single_empty_unit() {
        let t = generate(&GenConfig {
            duration_ms: 60_000,
            background_rate: 0.0,
            flares_per_hour: 0.0,
            grbs_per_day: 0.0,
            ..GenConfig::default()
        });
        let units = package(&t, 1000, 1);
        assert_eq!(units.len(), 1);
        assert!(units[0].photons.is_empty());
        assert_eq!(units[0].end_ms - units[0].start_ms, 60_000);
    }
}
