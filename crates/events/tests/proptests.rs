//! Property-based tests for telemetry packaging: the unit codec the ingest
//! pipeline trusts. For any generated stream and any unit size, packaging
//! must conserve photons, keep time order, name every unit uniquely, and
//! survive the FITS round trip bit-for-bit.

use hedc_events::{generate, package, GenConfig, TelemetryUnit};
use hedc_filestore::FitsFile;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `package` → `to_fits` → `from_fits` is the identity on every unit,
    /// and the batch as a whole conserves the stream.
    #[test]
    fn package_fits_roundtrip(
        seed in any::<u64>(),
        duration_s in 30u64..240,
        background in 1u32..20,
        flares in 0u32..30,
        photons_per_unit in 1usize..4_000,
    ) {
        let t = generate(&GenConfig {
            seed,
            start_ms: 0,
            duration_ms: duration_s * 1000,
            background_rate: f64::from(background),
            flares_per_hour: f64::from(flares),
            grbs_per_day: 1.0,
            ..GenConfig::default()
        });
        let units = package(&t, photons_per_unit, 2);

        // Conservation: every photon lands in exactly one unit.
        let total: usize = units.iter().map(|u| u.photons.len()).sum();
        prop_assert_eq!(total, t.photons.len());

        // Units tile the span in order, and archive paths never collide.
        for w in units.windows(2) {
            prop_assert_eq!(w[0].end_ms, w[1].start_ms);
        }
        let paths: HashSet<String> = units.iter().map(|u| u.archive_path()).collect();
        prop_assert_eq!(paths.len(), units.len());

        for u in &units {
            // Time order within the unit (what downstream binning assumes).
            prop_assert!(
                u.photons.times_ms.windows(2).all(|w| w[0] <= w[1]),
                "unit {} out of time order", u.seq
            );
            // FITS round trip: bit-for-bit identity, counts and order intact.
            let bytes = u.to_fits().to_bytes();
            let parsed = TelemetryUnit::from_fits(&FitsFile::from_bytes(&bytes).unwrap()).unwrap();
            prop_assert_eq!(&parsed, u);
            prop_assert_eq!(parsed.photons.len(), u.photons.len());
            prop_assert!(parsed.photons.times_ms.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(parsed.archive_path(), u.archive_path());
        }
    }

    /// Unit sizing: no unit exceeds the requested photon budget by more
    /// than one second's worth of photons (the second-alignment slack),
    /// and only the final unit may run under it.
    #[test]
    fn package_respects_unit_budget(
        seed in any::<u64>(),
        duration_s in 30u64..180,
        background in 1u32..15,
        photons_per_unit in 10usize..2_000,
    ) {
        let t = generate(&GenConfig {
            seed,
            start_ms: 0,
            duration_ms: duration_s * 1000,
            background_rate: f64::from(background),
            flares_per_hour: 0.0,
            grbs_per_day: 0.0,
            ..GenConfig::default()
        });
        let units = package(&t, photons_per_unit, 1);
        for (i, u) in units.iter().enumerate() {
            if i + 1 < units.len() {
                prop_assert!(
                    u.photons.len() >= photons_per_unit,
                    "non-final unit {} under budget: {} < {}",
                    u.seq, u.photons.len(), photons_per_unit
                );
            }
            // The cut moves forward only to the end of the current second.
            let last_second = u.photons.times_ms.last().map_or(0, |l| l / 1000);
            let same_second_slack = u
                .photons
                .times_ms
                .iter()
                .rev()
                .take_while(|&&tm| tm / 1000 == last_second)
                .count();
            prop_assert!(
                u.photons.len() <= photons_per_unit + same_second_slack,
                "unit {} overshot: {} photons for budget {}",
                u.seq, u.photons.len(), photons_per_unit
            );
        }
    }
}
