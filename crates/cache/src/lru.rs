//! A slab-backed, byte-budgeted LRU core.
//!
//! One [`LruCore`] is one lock stripe of the sharded cache. Entries live in
//! a slab (`Vec<Option<Node>>` plus a free list) threaded into an intrusive
//! doubly-linked recency list, so promotion on hit and eviction at the tail
//! are O(1) with zero per-operation allocation. The core is deliberately
//! policy-free: callers attach whatever validity metadata they need to the
//! stored value and pass an explicit byte weight per insert.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

struct Node<V> {
    key: String,
    value: V,
    weight: usize,
    prev: usize,
    next: usize,
}

/// One LRU stripe: string keys, explicit byte weights, a fixed byte budget.
pub struct LruCore<V> {
    index: HashMap<String, usize>,
    slab: Vec<Option<Node<V>>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    weight: usize,
    budget: usize,
}

impl<V> LruCore<V> {
    /// An empty core that evicts past `budget` bytes.
    pub fn new(budget: usize) -> Self {
        LruCore {
            index: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            weight: 0,
            budget,
        }
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Current total weight in bytes.
    pub fn weight(&self) -> usize {
        self.weight
    }

    /// Look up without promoting (validity checks peek first so that a
    /// dead entry is not promoted before being removed).
    pub fn peek(&self, key: &str) -> Option<&V> {
        let &slot = self.index.get(key)?;
        Some(&self.slab[slot].as_ref().expect("indexed slot").value)
    }

    /// Look up and promote to most-recently-used.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        let &slot = self.index.get(key)?;
        self.unlink(slot);
        self.push_front(slot);
        Some(&self.slab[slot].as_ref().expect("indexed slot").value)
    }

    /// Remove an entry, returning its value and recorded weight.
    pub fn remove(&mut self, key: &str) -> Option<(V, usize)> {
        let slot = self.index.remove(key)?;
        self.unlink(slot);
        let node = self.slab[slot].take().expect("indexed slot");
        self.free.push(slot);
        self.weight -= node.weight;
        Some((node.value, node.weight))
    }

    /// Insert (or replace) an entry, then evict from the tail until the
    /// budget holds. Returns the evicted `(value, weight)` pairs,
    /// replacement excluded. An entry heavier than the whole budget is
    /// refused outright — caching it would just flush everything else
    /// for a single-use value.
    pub fn insert(&mut self, key: &str, value: V, weight: usize) -> Vec<(V, usize)> {
        if let Some(&slot) = self.index.get(key) {
            self.unlink(slot);
            let node = self.slab[slot].take().expect("indexed slot");
            self.free.push(slot);
            self.weight -= node.weight;
            self.index.remove(key);
        }
        if weight > self.budget {
            return Vec::new();
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slab.push(None);
                self.slab.len() - 1
            }
        };
        self.slab[slot] = Some(Node {
            key: key.to_string(),
            value,
            weight,
            prev: NIL,
            next: NIL,
        });
        self.index.insert(key.to_string(), slot);
        self.push_front(slot);
        self.weight += weight;

        let mut evicted = Vec::new();
        while self.weight > self.budget && self.tail != slot && self.tail != NIL {
            let victim = self.tail;
            self.unlink(victim);
            let node = self.slab[victim].take().expect("tail slot");
            self.free.push(victim);
            self.weight -= node.weight;
            self.index.remove(&node.key);
            evicted.push((node.value, node.weight));
        }
        evicted
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.index.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.weight = 0;
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = {
            let n = self.slab[slot].as_ref().expect("linked slot");
            (n.prev, n.next)
        };
        match prev {
            NIL => {
                if self.head == slot {
                    self.head = next;
                }
            }
            p => self.slab[p].as_mut().expect("prev slot").next = next,
        }
        match next {
            NIL => {
                if self.tail == slot {
                    self.tail = prev;
                }
            }
            x => self.slab[x].as_mut().expect("next slot").prev = prev,
        }
        let n = self.slab[slot].as_mut().expect("linked slot");
        n.prev = NIL;
        n.next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        let old_head = self.head;
        {
            let n = self.slab[slot].as_mut().expect("new head");
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.slab[old_head].as_mut().expect("old head").prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut lru = LruCore::new(1000);
        assert!(lru.insert("a", 1u32, 10).is_empty());
        assert!(lru.insert("b", 2, 10).is_empty());
        assert_eq!(lru.get("a"), Some(&1));
        assert_eq!(lru.peek("b"), Some(&2));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.weight(), 20);
        assert_eq!(lru.remove("a"), Some((1, 10)));
        assert_eq!(lru.get("a"), None);
        assert_eq!(lru.weight(), 10);
    }

    #[test]
    fn eviction_is_lru_order_and_respects_promotion() {
        let mut lru = LruCore::new(30);
        lru.insert("a", 'a', 10);
        lru.insert("b", 'b', 10);
        lru.insert("c", 'c', 10);
        // Touch "a" so "b" is now least recently used.
        lru.get("a");
        let evicted = lru.insert("d", 'd', 10);
        assert_eq!(evicted, vec![('b', 10)]);
        assert_eq!(lru.len(), 3);
        assert!(lru.peek("a").is_some() && lru.peek("c").is_some());
    }

    #[test]
    fn oversized_entry_is_refused() {
        let mut lru = LruCore::new(30);
        lru.insert("a", 'a', 10);
        let evicted = lru.insert("huge", 'h', 31);
        assert!(evicted.is_empty());
        assert_eq!(lru.peek("huge"), None);
        assert_eq!(lru.peek("a"), Some(&'a'));
    }

    #[test]
    fn replacement_updates_weight() {
        let mut lru = LruCore::new(100);
        lru.insert("a", 1u32, 10);
        lru.insert("a", 2, 40);
        assert_eq!(lru.weight(), 40);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.peek("a"), Some(&2));
    }

    #[test]
    fn multi_eviction_frees_enough_room() {
        let mut lru = LruCore::new(40);
        lru.insert("a", 'a', 10);
        lru.insert("b", 'b', 10);
        lru.insert("c", 'c', 10);
        lru.insert("d", 'd', 10);
        let evicted = lru.insert("big", 'x', 35);
        // a, b, c, d all have to go to make room for 35 of 40.
        assert_eq!(evicted, vec![('a', 10), ('b', 10), ('c', 10), ('d', 10)]);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.weight(), 35);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut lru = LruCore::new(1_000_000);
        for round in 0..10 {
            for i in 0..100 {
                lru.insert(&format!("k{i}"), round * 100 + i, 1);
            }
        }
        // 100 live keys, repeatedly replaced in place: the slab must not
        // grow past the live set.
        assert_eq!(lru.len(), 100);
        assert!(lru.slab.len() <= 100, "slab grew to {}", lru.slab.len());
    }
}
