#![warn(missing_docs)]
//! `hedc-cache`: a sharded, size-bounded, lock-striped LRU result cache
//! for the HEDC middle tier.
//!
//! The paper's DM re-derives every browse page from metadata queries
//! (§7.2: seven queries per HLE page) and pays two extra indexed queries
//! per dynamic name mapping (§4.3). Both workloads are read-dominated, so
//! a result cache in front of the metadata DBMS converts repeat browsing
//! into hash lookups — the lever the SDSS and astroparticle-warehouse
//! migrations credit for interactive latency.
//!
//! # Invalidation model
//!
//! Correctness is anchored on **generation counters**, one per table
//! ([`GenerationMap`]). Every cached entry records, at fill time, the
//! generation of each table it depends on; every mutating statement bumps
//! the written table's counter. A [`ShardedCache::get`] revalidates the
//! recorded generations against the live counters and treats any mismatch
//! as a miss (the entry stays behind, reachable only through
//! [`ShardedCache::get_stale`]) — write-through invalidation at O(1)
//! per write, no key scans. Fill-time dependency snapshots must be taken
//! **before** the underlying read executes ([`GenerationMap::snapshot`]),
//! so a write racing with the read leaves the entry born-stale rather
//! than wrongly fresh.
//!
//! Tiers that cannot observe writes (a network client caching remote
//! results) additionally bound staleness with a TTL
//! ([`CacheConfig::ttl`]), and may serve expired entries *explicitly* via
//! [`ShardedCache::get_stale`] when the backend is unreachable — the
//! degraded read-only mode of the DM router.
//!
//! # Metrics
//!
//! `cache.hit` / `cache.miss` / `cache.evict` counters and the
//! `cache.bytes` gauge are exported through the `hedc-obs` registry; each
//! cache instance also keeps private counters ([`ShardedCache::stats`])
//! so tests are not confounded by the process-global registry.

mod lru;

use hedc_metadb::{Projection, Query, QueryResult};
use lru::LruCore;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Separator between the access-scope tag and the query fingerprint in a
/// cache key. Control byte: cannot occur in either part.
pub const SCOPE_SEP: char = '\u{1}';

/// Cache sizing and freshness policy.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total byte budget across all shards.
    pub capacity_bytes: usize,
    /// Lock stripes. More stripes, less contention; budget is split
    /// evenly between them.
    pub shards: usize,
    /// Optional staleness bound. `None` means generation validation is
    /// the only freshness check — correct when every writer shares the
    /// [`GenerationMap`]; tiers that cannot see writes (network clients)
    /// should set a TTL.
    pub ttl: Option<Duration>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 32 << 20,
            shards: 8,
            ttl: None,
        }
    }
}

/// Per-table generation counters: the write-through invalidation spine.
#[derive(Default)]
pub struct GenerationMap {
    inner: Mutex<HashMap<String, Arc<AtomicU64>>>,
}

/// Dependency snapshot: (counter handle, value at snapshot time). Take it
/// **before** executing the read that will be cached.
pub type DepSnapshot = Vec<(Arc<AtomicU64>, u64)>;

impl GenerationMap {
    /// An empty map; counters materialize on first touch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The live counter for `table` (case-insensitive), created at 0.
    pub fn handle(&self, table: &str) -> Arc<AtomicU64> {
        let mut inner = self.inner.lock().expect("generation map poisoned");
        Arc::clone(
            inner
                .entry(table.to_ascii_lowercase())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Record a write to `table`: every cached entry depending on it goes
    /// stale at once.
    pub fn bump(&self, table: &str) {
        self.handle(table).fetch_add(1, Ordering::SeqCst);
    }

    /// Current generation of `table`.
    pub fn current(&self, table: &str) -> u64 {
        self.handle(table).load(Ordering::SeqCst)
    }

    /// Snapshot the generations of `tables` for a fill that follows.
    pub fn snapshot(&self, tables: &[&str]) -> DepSnapshot {
        tables
            .iter()
            .map(|t| {
                let h = self.handle(t);
                let v = h.load(Ordering::SeqCst);
                (h, v)
            })
            .collect()
    }

    /// Key under which shard `shard`'s copy of `table` is tracked. Shard
    /// scoping lets a sharded router invalidate exactly the shards a
    /// rebalance moved, instead of every cached result for the table.
    fn shard_key(shard: u32, table: &str) -> String {
        format!("shard{shard}\u{1}{}", table.to_ascii_lowercase())
    }

    /// The live counter for shard `shard`'s copy of `table`.
    pub fn handle_shard(&self, shard: u32, table: &str) -> Arc<AtomicU64> {
        self.handle(&Self::shard_key(shard, table))
    }

    /// Record a write to `table` on one shard: only cached results
    /// assembled from that shard go stale.
    pub fn bump_shard(&self, shard: u32, table: &str) {
        self.handle_shard(shard, table).fetch_add(1, Ordering::SeqCst);
    }

    /// Current generation of shard `shard`'s copy of `table`.
    pub fn current_shard(&self, shard: u32, table: &str) -> u64 {
        self.handle_shard(shard, table).load(Ordering::SeqCst)
    }

    /// Snapshot the shard-scoped generations of `table` across `shards` —
    /// the dependency set of a scatter-gather result about to be cached.
    pub fn snapshot_shards(&self, shards: &[u32], table: &str) -> DepSnapshot {
        shards
            .iter()
            .map(|&s| {
                let h = self.handle_shard(s, table);
                let v = h.load(Ordering::SeqCst);
                (h, v)
            })
            .collect()
    }
}

/// Something storable in the cache: cheap to clone out, and able to state
/// its own byte footprint for the budget accounting.
pub trait CacheValue: Clone + Send + 'static {
    /// Allocated size of this value in bytes.
    fn weight_bytes(&self) -> usize;
}

impl CacheValue for QueryResult {
    fn weight_bytes(&self) -> usize {
        self.size_bytes()
    }
}

/// Counter snapshot for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Fresh lookups served from the cache.
    pub hits: u64,
    /// Lookups that went to the backing store (including invalidations).
    pub misses: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Lookups rejected because a dependency generation moved or the TTL
    /// lapsed (the entry stays behind for degraded-mode stale serves).
    pub invalidations: u64,
    /// Stale entries served in degraded mode.
    pub stale_serves: u64,
}

struct Entry<V> {
    value: V,
    deps: DepSnapshot,
    filled: Instant,
}

impl<V> Entry<V> {
    fn is_fresh(&self, ttl: Option<Duration>) -> bool {
        if let Some(ttl) = ttl {
            if self.filled.elapsed() > ttl {
                return false;
            }
        }
        self.deps
            .iter()
            .all(|(h, v)| h.load(Ordering::SeqCst) == *v)
    }
}

/// The sharded, lock-striped LRU cache.
pub struct ShardedCache<V> {
    shards: Vec<Mutex<LruCore<Entry<V>>>>,
    ttl: Option<Duration>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    stale_serves: AtomicU64,
    bytes: AtomicI64,
}

impl<V: CacheValue> ShardedCache<V> {
    /// Build a cache per `config` (the TTL applies uniformly).
    pub fn new(config: &CacheConfig) -> Self {
        let shards = config.shards.max(1);
        let per_shard = (config.capacity_bytes / shards).max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCore::new(per_shard)))
                .collect(),
            ttl: config.ttl,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            stale_serves: AtomicU64::new(0),
            bytes: AtomicI64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<LruCore<Entry<V>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Fresh lookup: validates the dependency generations (and TTL, if
    /// configured); a stale entry is counted as a miss but **left in
    /// place** — it is the reserve [`Self::get_stale`] serves from when
    /// the backend is unreachable. The next [`Self::put`] overwrites it,
    /// and capacity pressure evicts it like any other entry, so staleness
    /// never outlives the byte budget.
    pub fn get(&self, key: &str) -> Option<V> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        let fresh = match shard.peek(key) {
            Some(entry) => entry.is_fresh(self.ttl),
            None => {
                drop(shard);
                self.miss();
                return None;
            }
        };
        if !fresh {
            drop(shard);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            self.miss();
            return None;
        }
        let value = shard.get(key).expect("peeked entry").value.clone();
        drop(shard);
        self.hits.fetch_add(1, Ordering::Relaxed);
        hedc_obs::global().counter("cache.hit").inc();
        Some(value)
    }

    /// Fresh multi-lookup: one [`Self::get`] per key, results in key
    /// order. The batched DM paths (multi-item name resolution) use this
    /// so a warm batch costs zero database queries and a partly warm
    /// batch only re-reads its misses.
    pub fn get_many(&self, keys: &[String]) -> Vec<Option<V>> {
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// Multi-fill: store every `(key, value)` pair against one shared
    /// dependency snapshot (taken before the batched backing read ran).
    /// A single pre-read snapshot is exactly as safe for N fills as for
    /// one: any write racing the batch leaves *all* its fills born-stale.
    pub fn put_many(&self, entries: Vec<(String, V)>, deps: &DepSnapshot) {
        for (key, value) in entries {
            self.put(&key, value, deps.clone());
        }
    }

    /// Degraded-mode lookup: returns whatever is stored under `key`,
    /// ignoring generations and TTL. For read-only operation while the
    /// backend is unreachable; callers must label the result stale.
    pub fn get_stale(&self, key: &str) -> Option<V> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        let value = shard.get(key).map(|e| e.value.clone());
        drop(shard);
        if value.is_some() {
            self.stale_serves.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Store `value` under `key` with its dependency snapshot (taken
    /// before the backing read ran).
    pub fn put(&self, key: &str, value: V, deps: DepSnapshot) {
        let weight = key.len() + value.weight_bytes();
        let entry = Entry {
            value,
            deps,
            filled: Instant::now(),
        };
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        let replaced = shard.remove(key);
        let evicted = shard.insert(key, entry, weight);
        let stored = shard.peek(key).is_some();
        drop(shard);
        let mut delta: i64 = 0;
        if let Some((_, old)) = replaced {
            delta -= old as i64;
        }
        if stored {
            delta += weight as i64;
        }
        for (_, w) in &evicted {
            delta -= *w as i64;
        }
        self.adjust_bytes(delta);
        if !evicted.is_empty() {
            self.evictions
                .fetch_add(evicted.len() as u64, Ordering::Relaxed);
            hedc_obs::global()
                .counter("cache.evict")
                .add(evicted.len() as u64);
        }
    }

    /// Drop every entry (all shards).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("cache shard poisoned").clear();
        }
        let resident = self.bytes.swap(0, Ordering::Relaxed);
        hedc_obs::global().gauge("cache.bytes").add(-(resident));
    }

    /// Live entry count across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes.
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed).max(0) as usize
    }

    /// This instance's counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            stale_serves: self.stale_serves.load(Ordering::Relaxed),
        }
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        hedc_obs::global().counter("cache.miss").inc();
    }

    /// Apply a signed byte delta to this instance and mirror it into the
    /// process-wide `cache.bytes` gauge (which therefore sums across
    /// every live cache instance).
    fn adjust_bytes(&self, delta: i64) {
        if delta != 0 {
            self.bytes.fetch_add(delta, Ordering::Relaxed);
            hedc_obs::global().gauge("cache.bytes").add(delta);
        }
    }
}

/// A [`ShardedCache`] specialized to query results, keyed by canonical
/// query fingerprint plus access-scope tag, with table-generation
/// dependencies.
pub struct QueryCache {
    cache: ShardedCache<QueryResult>,
    gens: Arc<GenerationMap>,
}

impl QueryCache {
    /// Build over a shared generation map (the DM's writers bump it).
    pub fn new(config: &CacheConfig, gens: Arc<GenerationMap>) -> Self {
        QueryCache {
            cache: ShardedCache::new(config),
            gens,
        }
    }

    /// The cache key for `q` under `scope`: scope tag, control-byte
    /// separator, canonical fingerprint. Scope isolation is structural —
    /// two scopes can never collide on a key.
    pub fn key(scope: &str, q: &Query) -> String {
        format!("{scope}{SCOPE_SEP}{}", q.fingerprint())
    }

    /// Fresh lookup; a hit is re-projected into the column order `q`
    /// asked for (fingerprints canonicalize projection order).
    pub fn get(&self, scope: &str, q: &Query) -> Option<QueryResult> {
        let cached = self.cache.get(&Self::key(scope, q))?;
        reproject(cached, q)
    }

    /// Degraded-mode lookup (see [`ShardedCache::get_stale`]).
    pub fn get_stale(&self, scope: &str, q: &Query) -> Option<QueryResult> {
        let cached = self.cache.get_stale(&Self::key(scope, q))?;
        reproject(cached, q)
    }

    /// Snapshot the dependency generations for `q` — call **before**
    /// executing it.
    pub fn snapshot(&self, q: &Query) -> DepSnapshot {
        self.gens.snapshot(&[&q.table])
    }

    /// Store a result under `q`'s key with its pre-read snapshot.
    pub fn fill(&self, scope: &str, q: &Query, result: &QueryResult, deps: DepSnapshot) {
        self.cache.put(&Self::key(scope, q), result.clone(), deps);
    }

    /// Record a write to `table`.
    pub fn bump(&self, table: &str) {
        self.gens.bump(table);
    }

    /// The shared generation map.
    pub fn generations(&self) -> &Arc<GenerationMap> {
        &self.gens
    }

    /// Instance counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Approximate resident bytes.
    pub fn bytes(&self) -> usize {
        self.cache.bytes()
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Drop everything (generation counters keep their values).
    pub fn clear(&self) {
        self.cache.clear();
    }
}

/// Reorder a cached result's columns into the order `q` requested.
/// Fingerprints sort the projection of non-aggregate queries, so one
/// cached row set serves every permutation; the cached copy carries
/// whichever order filled first. Returns `None` (a miss) if the mapping
/// is impossible — callers then fall through to the real executor.
fn reproject(cached: QueryResult, q: &Query) -> Option<QueryResult> {
    let wanted = match &q.projection {
        Projection::Columns(cols) if q.aggregates.is_empty() => cols,
        _ => return Some(cached),
    };
    if cached.columns.len() == wanted.len()
        && cached
            .columns
            .iter()
            .zip(wanted.iter())
            .all(|(have, want)| have.eq_ignore_ascii_case(want))
    {
        return Some(cached);
    }
    let mapping: Option<Vec<usize>> = wanted
        .iter()
        .map(|w| {
            cached
                .columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(w))
        })
        .collect();
    let mapping = mapping?;
    Some(QueryResult {
        columns: mapping.iter().map(|&i| cached.columns[i].clone()).collect(),
        rows: cached
            .rows
            .iter()
            .map(|r| mapping.iter().map(|&i| r[i].clone()).collect())
            .collect(),
        stats: cached.stats.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hedc_metadb::{AccessPath, ExecStats, Expr, Value};

    fn result(rows: Vec<Vec<Value>>, columns: &[&str]) -> QueryResult {
        QueryResult {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows,
            stats: ExecStats {
                rows_scanned: 0,
                rows_returned: 0,
                rows_sorted: 0,
                access: AccessPath::FullScan,
            },
        }
    }

    #[test]
    fn hit_after_fill_and_invalidation_after_bump() {
        let gens = Arc::new(GenerationMap::new());
        let cache = QueryCache::new(&CacheConfig::default(), Arc::clone(&gens));
        let q = Query::table("hle").filter(Expr::eq("public", true));
        assert!(cache.get("u1", &q).is_none());
        let deps = cache.snapshot(&q);
        cache.fill("u1", &q, &result(vec![vec![Value::Int(1)]], &["id"]), deps);
        assert!(cache.get("u1", &q).is_some());
        cache.bump("HLE"); // case-insensitive table keying
        assert!(cache.get("u1", &q).is_none(), "bump must invalidate");
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.invalidations, 1);
        // Invalidation hides the entry from fresh reads without dropping
        // it: degraded mode can still reach it if the backend dies.
        assert!(cache.get_stale("u1", &q).is_some());
    }

    #[test]
    fn scopes_are_isolated() {
        let cache = QueryCache::new(&CacheConfig::default(), Arc::new(GenerationMap::new()));
        let q = Query::table("hle");
        let deps = cache.snapshot(&q);
        cache.fill("u1", &q, &result(vec![vec![Value::Int(1)]], &["id"]), deps);
        assert!(cache.get("u1", &q).is_some());
        assert!(cache.get("u2", &q).is_none());
        assert!(cache.get("admin", &q).is_none());
    }

    #[test]
    fn born_stale_when_write_races_the_read() {
        let gens = Arc::new(GenerationMap::new());
        let cache = QueryCache::new(&CacheConfig::default(), Arc::clone(&gens));
        let q = Query::table("ana");
        let deps = cache.snapshot(&q); // snapshot BEFORE the "read"
        gens.bump("ana"); // concurrent write lands mid-read
        cache.fill("-", &q, &result(vec![], &[]), deps);
        assert!(
            cache.get("-", &q).is_none(),
            "entry filled against a pre-write snapshot must be stale"
        );
    }

    #[test]
    fn permuted_projection_hits_and_reprojects() {
        let cache = QueryCache::new(&CacheConfig::default(), Arc::new(GenerationMap::new()));
        let a = Query::table("ana").select(&["kind", "id"]);
        let b = Query::table("ana").select(&["id", "kind"]);
        assert_eq!(QueryCache::key("-", &a), QueryCache::key("-", &b));
        let deps = cache.snapshot(&a);
        cache.fill(
            "-",
            &a,
            &result(
                vec![vec![Value::Text("image".into()), Value::Int(7)]],
                &["kind", "id"],
            ),
            deps,
        );
        let hit = cache.get("-", &b).expect("permuted projection must hit");
        assert_eq!(hit.columns, vec!["id".to_string(), "kind".to_string()]);
        assert_eq!(
            hit.rows[0],
            vec![Value::Int(7), Value::Text("image".into())]
        );
        // The original order comes back verbatim.
        let same = cache.get("-", &a).unwrap();
        assert_eq!(same.columns, vec!["kind".to_string(), "id".to_string()]);
    }

    #[test]
    fn ttl_expires_entries() {
        let config = CacheConfig {
            ttl: Some(Duration::from_millis(0)),
            ..CacheConfig::default()
        };
        let cache = QueryCache::new(&config, Arc::new(GenerationMap::new()));
        let q = Query::table("catalog");
        let deps = cache.snapshot(&q);
        let r = result(vec![vec![Value::Int(1)]], &["id"]);
        cache.fill("net", &q, &r, deps);
        std::thread::sleep(Duration::from_millis(2));
        assert!(cache.get("net", &q).is_none(), "TTL 0 entry must expire");
        // The expired entry must survive the failed `get`: it is exactly
        // what degraded mode serves during an outage.
        assert!(cache.get_stale("net", &q).is_some());
        assert_eq!(cache.stats().stale_serves, 1);
    }

    #[test]
    fn multi_get_and_multi_fill_share_one_snapshot() {
        let gens = Arc::new(GenerationMap::new());
        let cache = ShardedCache::<QueryResult>::new(&CacheConfig::default());
        let keys: Vec<String> = (0..4).map(|i| format!("names:file:{i}")).collect();
        assert!(cache.get_many(&keys).iter().all(Option::is_none));

        let deps = gens.snapshot(&["loc_entry"]);
        let entries: Vec<(String, QueryResult)> = keys
            .iter()
            .take(3)
            .enumerate()
            .map(|(i, k)| (k.clone(), result(vec![vec![Value::Int(i as i64)]], &["id"])))
            .collect();
        cache.put_many(entries, &deps);

        let got = cache.get_many(&keys);
        assert!(got[0].is_some() && got[1].is_some() && got[2].is_some());
        assert!(got[3].is_none(), "unfilled key stays a miss");
        assert_eq!(got[1].as_ref().unwrap().rows[0][0], Value::Int(1));

        // One bump invalidates every fill of the batch at once.
        gens.bump("loc_entry");
        assert!(cache.get_many(&keys).iter().all(Option::is_none));
    }

    #[test]
    fn shard_scoped_generations_invalidate_independently() {
        let gens = Arc::new(GenerationMap::new());
        let cache = QueryCache::new(&CacheConfig::default(), Arc::clone(&gens));
        let q = Query::table("hle");
        let r = result(vec![vec![Value::Int(1)]], &["id"]);

        // A merged result depends on shards 0 and 2 only.
        let deps = gens.snapshot_shards(&[0, 2], "hle");
        cache.fill("shard", &q, &r, deps);
        assert!(cache.get("shard", &q).is_some());

        // A write on an uninvolved shard leaves the entry fresh...
        gens.bump_shard(1, "hle");
        assert!(cache.get("shard", &q).is_some());
        // ...the table-level counter is a different namespace entirely...
        gens.bump("hle");
        assert!(cache.get("shard", &q).is_some());
        // ...but a write on a depended-on shard invalidates.
        gens.bump_shard(2, "hle");
        assert!(cache.get("shard", &q).is_none());
        assert_eq!(gens.current_shard(2, "hle"), 1);
        assert_eq!(gens.current_shard(0, "HLE"), 0, "shard keys fold case");
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let config = CacheConfig {
            capacity_bytes: 4096,
            shards: 1,
            ttl: None,
        };
        let cache = ShardedCache::<QueryResult>::new(&config);
        let big = result(vec![vec![Value::Text("x".repeat(1000))]; 1], &["payload"]);
        for i in 0..8 {
            cache.put(&format!("k{i}"), big.clone(), Vec::new());
        }
        assert!(cache.stats().evictions > 0, "budget must evict");
        assert!(cache.bytes() <= 4096, "bytes {} over budget", cache.bytes());
        // The most recent key survived; the oldest did not.
        assert!(cache.get("k7").is_some());
        assert!(cache.get("k0").is_none());
    }
}
