//! Length-prefixed, versioned wire frames.
//!
//! Every message on a DM cluster connection is one frame:
//!
//! ```text
//! offset  size  field
//! ------  ----  ------------------------------------------
//!      0     4  magic  b"HEDC"
//!      4     1  protocol version (currently 2)
//!      5     1  frame kind (1 = request, 2 = response)
//!      6     8  trace id,    big-endian u64 (0 = untraced)
//!     14     8  span id,     big-endian u64 (0 = untraced)
//!     22     8  request id,  big-endian u64
//!     30     4  payload length, big-endian u32
//!     34     n  payload: serde_json-encoded proto message
//! ```
//!
//! The trace/span ids ride in the *header*, outside the serialized payload,
//! so `hedc-obs` propagation does not depend on the payload schema: a
//! server can adopt the caller's span context before it even parses the
//! request, and protocol-error replies still join the right trace.
//!
//! The request id (new in v2) correlates responses with requests on a
//! *multiplexed* connection: many requests may be in flight on one socket
//! at once, responses complete out of order, and each response frame
//! carries back the id of the request it answers. Clients pick ids; the
//! server echoes them verbatim and attaches no meaning beyond equality.

use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"HEDC";
/// Current protocol version. Bumped on any incompatible payload change;
/// peers reject mismatches rather than guessing. v2 added the request-id
/// header field for connection multiplexing.
pub const VERSION: u8 = 2;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 34;
/// Upper bound on payload size; guards against allocating from a corrupt
/// or hostile length prefix.
pub const MAX_PAYLOAD_BYTES: usize = 32 << 20;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server.
    Request,
    /// Server → client.
    Response,
}

impl FrameKind {
    fn to_wire(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
        }
    }

    fn from_wire(b: u8) -> io::Result<FrameKind> {
        match b {
            1 => Ok(FrameKind::Request),
            2 => Ok(FrameKind::Response),
            other => Err(bad(format!("unknown frame kind {other}"))),
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Request or response.
    pub kind: FrameKind,
    /// Originating trace id (0 when the caller had no ambient trace).
    pub trace_id: u64,
    /// Parent span id on the sending side (0 when untraced).
    pub span_id: u64,
    /// Multiplexing correlation id: chosen by the client per request,
    /// echoed verbatim on the matching response.
    pub req_id: u64,
    /// Serialized proto message.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Total encoded size in bytes (header + payload).
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Serialize one frame's header into a fixed buffer.
fn encode_header(frame: &Frame) -> io::Result<[u8; HEADER_LEN]> {
    if frame.payload.len() > MAX_PAYLOAD_BYTES {
        return Err(bad(format!(
            "payload {} bytes exceeds cap {MAX_PAYLOAD_BYTES}",
            frame.payload.len()
        )));
    }
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4] = VERSION;
    header[5] = frame.kind.to_wire();
    header[6..14].copy_from_slice(&frame.trace_id.to_be_bytes());
    header[14..22].copy_from_slice(&frame.span_id.to_be_bytes());
    header[22..30].copy_from_slice(&frame.req_id.to_be_bytes());
    header[30..34].copy_from_slice(&(frame.payload.len() as u32).to_be_bytes());
    Ok(header)
}

/// Encode one frame into a contiguous byte vector (header + payload),
/// ready to hand to a nonblocking writer that flushes in pieces.
pub fn encode_frame(frame: &Frame) -> io::Result<Vec<u8>> {
    let header = encode_header(frame)?;
    let mut buf = Vec::with_capacity(frame.wire_len());
    buf.extend_from_slice(&header);
    buf.extend_from_slice(&frame.payload);
    Ok(buf)
}

/// Encode and write one frame. Returns the number of bytes written.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<usize> {
    let header = encode_header(frame)?;
    w.write_all(&header)?;
    w.write_all(&frame.payload)?;
    w.flush()?;
    Ok(frame.wire_len())
}

/// Read one complete frame, blocking until it arrives or the stream's read
/// deadline fires.
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    decode_after_header(r, header)
}

/// Read one frame, tolerating an *idle* timeout: returns `Ok(None)` when the
/// read deadline fires before any byte arrives (the connection is simply
/// quiet), and an error when it fires mid-frame (the peer stalled and the
/// connection is no longer in sync). Blocking callers poll with this so a
/// read never outlives a shutdown request.
pub fn read_frame_or_idle(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) => return Err(e),
        }
    }
    let mut header = [0u8; HEADER_LEN];
    header[0] = first[0];
    r.read_exact(&mut header[1..])?;
    decode_after_header(r, header).map(Some)
}

fn decode_after_header(r: &mut impl Read, header: [u8; HEADER_LEN]) -> io::Result<Frame> {
    let (kind, trace_id, span_id, req_id, len) = decode_header(&header)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Frame {
        kind,
        trace_id,
        span_id,
        req_id,
        payload,
    })
}

/// Validate a raw header and pull out its fields.
#[allow(clippy::type_complexity)]
fn decode_header(header: &[u8; HEADER_LEN]) -> io::Result<(FrameKind, u64, u64, u64, usize)> {
    if header[0..4] != MAGIC {
        return Err(bad("bad frame magic".into()));
    }
    if header[4] != VERSION {
        return Err(bad(format!(
            "protocol version mismatch: peer speaks v{}, we speak v{VERSION}",
            header[4]
        )));
    }
    let kind = FrameKind::from_wire(header[5])?;
    let trace_id = u64::from_be_bytes(header[6..14].try_into().unwrap());
    let span_id = u64::from_be_bytes(header[14..22].try_into().unwrap());
    let req_id = u64::from_be_bytes(header[22..30].try_into().unwrap());
    let len = u32::from_be_bytes(header[30..34].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD_BYTES {
        return Err(bad(format!(
            "payload {len} bytes exceeds cap {MAX_PAYLOAD_BYTES}"
        )));
    }
    Ok((kind, trace_id, span_id, req_id, len))
}

/// Incremental frame assembler for nonblocking sockets.
///
/// A reader feeds whatever bytes `read()` produced — possibly a single
/// byte, possibly several frames at once — and drains complete frames as
/// they materialize. The buffer validates each header as soon as its 34
/// bytes are present, so corrupt magic, a bad version, or a hostile length
/// prefix is rejected before any payload allocation.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: VecDeque<u8>,
    /// Set when the buffer holds the start of a frame that is not yet
    /// complete; cleared when the frame drains. Drives read-deadline
    /// enforcement: a peer that starts a frame and stalls is killable.
    partial: bool,
}

impl FrameBuffer {
    /// An empty assembler.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Append freshly-read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes.iter().copied());
        self.partial = !self.buf.is_empty();
    }

    /// True when the buffer holds the beginning of an unfinished frame —
    /// i.e. the peer owes us bytes to stay in sync.
    pub fn has_partial(&self) -> bool {
        self.partial
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drain the next complete frame, if one has fully arrived.
    ///
    /// `Ok(None)` means "keep reading"; an error means the stream is
    /// corrupt and the connection must be dropped.
    pub fn next_frame(&mut self) -> io::Result<Option<Frame>> {
        if self.buf.len() < HEADER_LEN {
            self.partial = !self.buf.is_empty();
            return Ok(None);
        }
        let mut header = [0u8; HEADER_LEN];
        for (i, b) in self.buf.iter().take(HEADER_LEN).enumerate() {
            header[i] = *b;
        }
        let (kind, trace_id, span_id, req_id, len) = decode_header(&header)?;
        if self.buf.len() < HEADER_LEN + len {
            self.partial = true;
            return Ok(None);
        }
        self.buf.drain(..HEADER_LEN);
        let payload: Vec<u8> = self.buf.drain(..len).collect();
        self.partial = !self.buf.is_empty();
        Ok(Some(Frame {
            kind,
            trace_id,
            span_id,
            req_id,
            payload,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Frame {
        Frame {
            kind: FrameKind::Request,
            trace_id: 0xDEAD_BEEF,
            span_id: 42,
            req_id: 7,
            payload: br#"{"Ping":null}"#.to_vec(),
        }
    }

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, &sample()).unwrap();
        assert_eq!(n, buf.len());
        let got = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(got, sample());
    }

    #[test]
    fn back_to_back_frames() {
        let mut buf = Vec::new();
        let mut b = sample();
        b.kind = FrameKind::Response;
        b.req_id = 8;
        write_frame(&mut buf, &sample()).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut cur = Cursor::new(&buf);
        let first = read_frame(&mut cur).unwrap();
        assert_eq!(first.kind, FrameKind::Request);
        assert_eq!(first.req_id, 7);
        let second = read_frame(&mut cur).unwrap();
        assert_eq!(second.kind, FrameKind::Response);
        assert_eq!(second.req_id, 8);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        let mut corrupt = buf.clone();
        corrupt[0] = b'X';
        assert!(read_frame(&mut Cursor::new(&corrupt)).is_err());
        let mut wrong_ver = buf.clone();
        wrong_ver[4] = 9;
        let err = read_frame(&mut Cursor::new(&wrong_ver)).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn rejects_oversized_length_prefix() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        buf[30..34].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(read_frame(&mut Cursor::new(&buf)).is_err());
    }

    #[test]
    fn truncated_frame_is_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn buffer_assembles_frames_from_single_bytes() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &sample()).unwrap();
        let mut fb = FrameBuffer::new();
        for (i, b) in wire.iter().enumerate() {
            assert!(
                fb.next_frame().unwrap().is_none(),
                "frame early at byte {i}"
            );
            fb.extend(&[*b]);
        }
        let got = fb.next_frame().unwrap().expect("complete frame");
        assert_eq!(got, sample());
        assert!(!fb.has_partial());
        assert!(fb.is_empty());
    }

    #[test]
    fn buffer_drains_multiple_frames_from_one_read() {
        let mut wire = Vec::new();
        let mut b = sample();
        b.req_id = 99;
        write_frame(&mut wire, &sample()).unwrap();
        write_frame(&mut wire, &b).unwrap();
        let mut fb = FrameBuffer::new();
        fb.extend(&wire);
        assert_eq!(fb.next_frame().unwrap().unwrap().req_id, 7);
        assert!(fb.has_partial());
        assert_eq!(fb.next_frame().unwrap().unwrap().req_id, 99);
        assert!(fb.next_frame().unwrap().is_none());
        assert!(!fb.has_partial());
    }

    #[test]
    fn buffer_flags_partial_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &sample()).unwrap();
        let mut fb = FrameBuffer::new();
        fb.extend(&wire[..10]);
        assert!(fb.next_frame().unwrap().is_none());
        assert!(fb.has_partial(), "header fragment counts as partial");
        fb.extend(&wire[10..HEADER_LEN + 3]);
        assert!(fb.next_frame().unwrap().is_none());
        assert!(fb.has_partial(), "payload fragment counts as partial");
        fb.extend(&wire[HEADER_LEN + 3..]);
        assert!(fb.next_frame().unwrap().is_some());
        assert!(!fb.has_partial());
    }

    #[test]
    fn buffer_rejects_corrupt_header_before_payload() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &sample()).unwrap();
        wire[0] = b'X';
        let mut fb = FrameBuffer::new();
        // Only the header has arrived; the corrupt magic must already fail.
        fb.extend(&wire[..HEADER_LEN]);
        assert!(fb.next_frame().is_err());
    }
}
