//! Length-prefixed, versioned wire frames.
//!
//! Every message on a DM cluster connection is one frame:
//!
//! ```text
//! offset  size  field
//! ------  ----  ------------------------------------------
//!      0     4  magic  b"HEDC"
//!      4     1  protocol version (currently 1)
//!      5     1  frame kind (1 = request, 2 = response)
//!      6     8  trace id,  big-endian u64 (0 = untraced)
//!     14     8  span id,   big-endian u64 (0 = untraced)
//!     22     4  payload length, big-endian u32
//!     26     n  payload: serde_json-encoded proto message
//! ```
//!
//! The trace/span ids ride in the *header*, outside the serialized payload,
//! so `hedc-obs` propagation does not depend on the payload schema: a
//! server can adopt the caller's span context before it even parses the
//! request, and protocol-error replies still join the right trace.

use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"HEDC";
/// Current protocol version. Bumped on any incompatible payload change;
/// peers reject mismatches rather than guessing.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 26;
/// Upper bound on payload size; guards against allocating from a corrupt
/// or hostile length prefix.
pub const MAX_PAYLOAD_BYTES: usize = 32 << 20;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server.
    Request,
    /// Server → client.
    Response,
}

impl FrameKind {
    fn to_wire(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
        }
    }

    fn from_wire(b: u8) -> io::Result<FrameKind> {
        match b {
            1 => Ok(FrameKind::Request),
            2 => Ok(FrameKind::Response),
            other => Err(bad(format!("unknown frame kind {other}"))),
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Request or response.
    pub kind: FrameKind,
    /// Originating trace id (0 when the caller had no ambient trace).
    pub trace_id: u64,
    /// Parent span id on the sending side (0 when untraced).
    pub span_id: u64,
    /// Serialized proto message.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Total encoded size in bytes (header + payload).
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Encode and write one frame. Returns the number of bytes written.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<usize> {
    if frame.payload.len() > MAX_PAYLOAD_BYTES {
        return Err(bad(format!(
            "payload {} bytes exceeds cap {MAX_PAYLOAD_BYTES}",
            frame.payload.len()
        )));
    }
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4] = VERSION;
    header[5] = frame.kind.to_wire();
    header[6..14].copy_from_slice(&frame.trace_id.to_be_bytes());
    header[14..22].copy_from_slice(&frame.span_id.to_be_bytes());
    header[22..26].copy_from_slice(&(frame.payload.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(&frame.payload)?;
    w.flush()?;
    Ok(frame.wire_len())
}

/// Read one complete frame, blocking until it arrives or the stream's read
/// deadline fires.
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    decode_after_header(r, header)
}

/// Read one frame, tolerating an *idle* timeout: returns `Ok(None)` when the
/// read deadline fires before any byte arrives (the connection is simply
/// quiet), and an error when it fires mid-frame (the peer stalled and the
/// connection is no longer in sync). Servers poll with this so a blocking
/// read never outlives a shutdown request.
pub fn read_frame_or_idle(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) => return Err(e),
        }
    }
    let mut header = [0u8; HEADER_LEN];
    header[0] = first[0];
    r.read_exact(&mut header[1..])?;
    decode_after_header(r, header).map(Some)
}

fn decode_after_header(r: &mut impl Read, header: [u8; HEADER_LEN]) -> io::Result<Frame> {
    if header[0..4] != MAGIC {
        return Err(bad("bad frame magic".into()));
    }
    if header[4] != VERSION {
        return Err(bad(format!(
            "protocol version mismatch: peer speaks v{}, we speak v{VERSION}",
            header[4]
        )));
    }
    let kind = FrameKind::from_wire(header[5])?;
    let trace_id = u64::from_be_bytes(header[6..14].try_into().unwrap());
    let span_id = u64::from_be_bytes(header[14..22].try_into().unwrap());
    let len = u32::from_be_bytes(header[22..26].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD_BYTES {
        return Err(bad(format!(
            "payload {len} bytes exceeds cap {MAX_PAYLOAD_BYTES}"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Frame {
        kind,
        trace_id,
        span_id,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Frame {
        Frame {
            kind: FrameKind::Request,
            trace_id: 0xDEAD_BEEF,
            span_id: 42,
            payload: br#"{"Ping":null}"#.to_vec(),
        }
    }

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, &sample()).unwrap();
        assert_eq!(n, buf.len());
        let got = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(got, sample());
    }

    #[test]
    fn back_to_back_frames() {
        let mut buf = Vec::new();
        let mut b = sample();
        b.kind = FrameKind::Response;
        write_frame(&mut buf, &sample()).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut cur = Cursor::new(&buf);
        assert_eq!(read_frame(&mut cur).unwrap().kind, FrameKind::Request);
        assert_eq!(read_frame(&mut cur).unwrap().kind, FrameKind::Response);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        let mut corrupt = buf.clone();
        corrupt[0] = b'X';
        assert!(read_frame(&mut Cursor::new(&corrupt)).is_err());
        let mut wrong_ver = buf.clone();
        wrong_ver[4] = 9;
        let err = read_frame(&mut Cursor::new(&wrong_ver)).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn rejects_oversized_length_prefix() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        buf[22..26].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(read_frame(&mut Cursor::new(&buf)).is_err());
    }

    #[test]
    fn truncated_frame_is_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
