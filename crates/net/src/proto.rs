//! RPC message bodies and error mapping.
//!
//! The payload of every [`crate::frame::Frame`] is one of these serde
//! messages. The surface mirrors the [`hedc_dm::DmNode`] trait — the whole
//! point of §5.4 call redirection is that the remote surface *is* the local
//! surface — plus a liveness ping for health probing.

use hedc_dm::{DmError, NameType, ResolvedName, ShardMap};
use hedc_metadb::{Query, QueryResult};
use serde::{Deserialize, Serialize};

/// Client → server message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Liveness/identity probe; answered with [`Response::Pong`].
    Ping,
    /// Execute a (pre-scoped) read query.
    Query(Query),
    /// Resolve an item's dynamic names (§4.3) on the serving node;
    /// answered with [`Response::Names`].
    Resolve {
        /// The item whose names to construct.
        item_id: i64,
        /// Which of the three §4.3 name types to construct.
        name_type: NameType,
    },
    /// Several requests in one frame — one round trip for the whole
    /// batch. The server answers with [`Response::Batch`] carrying one
    /// response per entry **in order**, errors isolated per entry (a bad
    /// entry never poisons its neighbours). Batches do not nest.
    Batch(Vec<Request>),
    /// `inner`, routed under the sharded-cluster protocol: the client
    /// states which shard it believes the serving node owns and the
    /// [`ShardMap`] epoch that belief came from. A server with shard
    /// identity answers [`Response::Redirect`] when either is wrong —
    /// never a miss or an empty result — so a stale client re-fetches the
    /// map and re-routes instead of silently reading the wrong shard.
    /// Sharded envelopes do not nest.
    Sharded {
        /// The shard the client routed this request to.
        shard: u32,
        /// The map epoch the client routed with.
        epoch: u64,
        /// The request to execute once identity checks pass.
        inner: Box<Request>,
    },
    /// Fetch the server's current [`ShardMap`] (answer:
    /// [`Response::ShardMap`]) — the redirect-recovery path.
    FetchShardMap,
}

/// Server → client message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// The serving node's id, for logs and router status.
        node_id: String,
        /// The node's current [`ShardMap`] epoch (0 when the node has no
        /// shard identity). Piggybacked on the liveness probe so clients
        /// learn of cutovers from the handshake they already make.
        #[serde(default)]
        epoch: u64,
    },
    /// Successful query execution.
    Result(QueryResult),
    /// Successful name resolution (answer to [`Request::Resolve`]).
    Names(Vec<ResolvedName>),
    /// Answers to a [`Request::Batch`], positionally matched to its
    /// entries.
    Batch(Vec<Response>),
    /// The [`Request::Sharded`] envelope named the wrong shard or a stale
    /// epoch. Carries the serving node's actual shard id and current
    /// epoch; the client re-fetches the map and re-routes.
    Redirect {
        /// The shard this server actually serves.
        shard: u32,
        /// The server's current map epoch.
        epoch: u64,
    },
    /// Answer to [`Request::FetchShardMap`].
    ShardMap(ShardMap),
    /// The request failed on the server.
    Error(WireError),
}

/// Coarse classification of a remote failure: enough to drive client-side
/// policy (failover vs surface-to-caller) without shipping the full local
/// error enum across versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireErrorKind {
    /// The node (or a node behind it) is unavailable; the caller should
    /// fail over.
    Unavailable,
    /// The query itself was rejected (unknown table, failed verification);
    /// retrying elsewhere would fail identically.
    Rejected,
    /// Any other server-side failure; the node is up, the request is not
    /// retried.
    Failed,
    /// The node shed the request under load (queue full, deadline passed,
    /// or per-connection in-flight cap hit). The node is *up* — health
    /// probes must not mark it down — but the caller should back off and
    /// retry, or fail over to a less-loaded replica.
    Overloaded,
    /// A whole shard (every replica of its set) was unreachable behind the
    /// serving node during a scatter-gather. The serving node itself is
    /// *up*: callers must not mark it down, and must not retry the same
    /// cluster — the typed shard id says which partition's rows are
    /// missing.
    ShardUnavailable(u32),
}

/// A serializable server-side error.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireError {
    /// Failure class.
    pub kind: WireErrorKind,
    /// Human-readable description (the remote error's `Display` text).
    pub message: String,
}

impl WireError {
    /// Classify a server-side [`DmError`] for the wire.
    pub fn from_dm(e: &DmError) -> WireError {
        let kind = match e {
            DmError::RemoteUnavailable(_) => WireErrorKind::Unavailable,
            DmError::Overloaded(_) => WireErrorKind::Overloaded,
            DmError::ShardUnavailable { shard, .. } => WireErrorKind::ShardUnavailable(*shard),
            DmError::BadQuery(_) | DmError::Db(_) => WireErrorKind::Rejected,
            _ => WireErrorKind::Failed,
        };
        WireError {
            kind,
            message: e.to_string(),
        }
    }

    /// Reconstruct a client-side [`DmError`]. `node` labels the peer for
    /// unavailability errors.
    pub fn into_dm(self, node: &str) -> DmError {
        match self.kind {
            WireErrorKind::Unavailable => {
                DmError::RemoteUnavailable(format!("{node}: {}", self.message))
            }
            WireErrorKind::Rejected => DmError::BadQuery(self.message),
            WireErrorKind::Failed => DmError::RemoteFailed(self.message),
            WireErrorKind::Overloaded => DmError::Overloaded(format!("{node}: {}", self.message)),
            WireErrorKind::ShardUnavailable(shard) => DmError::ShardUnavailable {
                shard,
                detail: format!("{node}: {}", self.message),
            },
        }
    }
}

/// Serialize a proto message to a frame payload.
pub fn encode<T: Serialize>(msg: &T) -> std::io::Result<Vec<u8>> {
    serde_json::to_vec(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Deserialize a frame payload.
pub fn decode<'a, T: Deserialize<'a>>(payload: &'a [u8]) -> std::io::Result<T> {
    serde_json::from_slice(payload)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hedc_metadb::{AggFunc, Expr, OrderDir};

    #[test]
    fn query_roundtrips_through_payload() {
        let q = Query::table("hle")
            .select(&["id", "event_type"])
            .filter(Expr::between("t0", 500, 1500).and(Expr::eq("public", true)))
            .order_by("t0", OrderDir::Desc)
            .limit(20)
            .offset(5);
        let bytes = encode(&Request::Query(q.clone())).unwrap();
        let back: Request = decode(&bytes).unwrap();
        match back {
            Request::Query(got) => {
                assert_eq!(got.table, q.table);
                assert_eq!(got.projection, q.projection);
                assert_eq!(got.filter, q.filter);
                assert_eq!(got.order_by, q.order_by);
                assert_eq!(got.limit, q.limit);
                assert_eq!(got.offset, q.offset);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn aggregate_query_roundtrips() {
        let q = Query::table("ana")
            .group_by("kind")
            .aggregate(AggFunc::CountStar)
            .aggregate(AggFunc::Avg("duration_ms".into()));
        let bytes = encode(&q).unwrap();
        let back: Query = decode(&bytes).unwrap();
        assert_eq!(back.aggregates, q.aggregates);
        assert_eq!(back.group_by, q.group_by);
    }

    #[test]
    fn batch_frame_roundtrips_in_order() {
        let batch = Request::Batch(vec![
            Request::Query(Query::table("hle").limit(3)),
            Request::Resolve {
                item_id: 42,
                name_type: NameType::File,
            },
            Request::Ping,
        ]);
        let bytes = encode(&batch).unwrap();
        let back: Request = decode(&bytes).unwrap();
        let Request::Batch(entries) = back else {
            panic!("wrong variant");
        };
        assert_eq!(entries.len(), 3);
        assert!(matches!(&entries[0], Request::Query(q) if q.table == "hle"));
        assert!(matches!(
            &entries[1],
            Request::Resolve {
                item_id: 42,
                name_type: NameType::File
            }
        ));
        assert!(matches!(&entries[2], Request::Ping));
    }

    #[test]
    fn resolved_names_cross_the_wire_intact() {
        let names = vec![hedc_dm::ResolvedName {
            entry_id: 7,
            name_type: NameType::Url,
            archive_id: 2,
            archive_path: "v1/raw/u1.fits".into(),
            entry_path: "raw/u1.fits".into(),
            full_name: "url:hedc/v1/raw/u1.fits#9".into(),
            url: Some("http://hedc.ethz.ch/data/v1/raw/u1.fits".into()),
            size: 4096,
            role: "data".into(),
            transforms: vec!["gunzip".into()],
        }];
        let bytes = encode(&Response::Names(names.clone())).unwrap();
        let back: Response = decode(&bytes).unwrap();
        let Response::Names(got) = back else {
            panic!("wrong variant");
        };
        assert_eq!(got, names);
    }

    #[test]
    fn error_mapping_preserves_failover_semantics() {
        let down = WireError::from_dm(&DmError::RemoteUnavailable("n2".into()));
        assert_eq!(down.kind, WireErrorKind::Unavailable);
        assert!(matches!(
            down.into_dm("peer"),
            DmError::RemoteUnavailable(_)
        ));

        let rejected = WireError::from_dm(&DmError::BadQuery("unknown table `nope`".into()));
        assert_eq!(rejected.kind, WireErrorKind::Rejected);
        assert!(matches!(rejected.into_dm("peer"), DmError::BadQuery(_)));

        let other = WireError::from_dm(&DmError::NoSession);
        assert_eq!(other.kind, WireErrorKind::Failed);
        assert!(matches!(other.into_dm("peer"), DmError::RemoteFailed(_)));

        // Overload is its own class: the node is up, so it must not map to
        // Unavailable (which would flip health probes), and not to Failed
        // (which would surface to the caller without failover).
        let shed = WireError::from_dm(&DmError::Overloaded("queue full".into()));
        assert_eq!(shed.kind, WireErrorKind::Overloaded);
        match shed.into_dm("peer") {
            DmError::Overloaded(m) => assert!(m.contains("peer"), "{m}"),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
