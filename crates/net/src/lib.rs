//! # hedc-net — the DM cluster wire protocol
//!
//! The paper scales browse throughput from 3 to 18 req/s by adding
//! middle-tier nodes behind §5.4 call redirection: "the calling methods do
//! not know where the code is actually executed". This crate is that
//! redirection on real sockets — a dependency-light TCP RPC subsystem that
//! puts [`hedc_dm::DmNode`]s on the network:
//!
//! * [`frame`] — length-prefixed, versioned frames with trace-ID and
//!   request-ID propagation in the header, so `hedc-obs` span trees stay
//!   connected across the wire and many requests multiplex per socket.
//! * [`proto`] — serde-encoded `Query`/`QueryResult`/error payloads
//!   mirroring the `DmNode` trait, plus a liveness ping and a typed
//!   `Overloaded` shed response.
//! * [`DmServer`] — an event-driven server: a blocking acceptor with a
//!   connection cap, reader shards sweeping nonblocking sockets, and a
//!   bounded worker pool with deadline-aware load shedding
//!   ([`AdmissionConfig`]). Concurrency is fixed by configuration, not by
//!   client count.
//! * [`MuxClient`] — one multiplexed connection: concurrent requests
//!   correlated by frame id, out-of-order completion, per-request waits.
//! * [`NetDm`] — a pooled, retrying client that *is* a `DmNode`, so a
//!   [`hedc_dm::DmRouter`] mixes local and remote nodes transparently and
//!   its failover works off the client's cached health probe. `Overloaded`
//!   sheds retry with backoff before surfacing for router failover.
//!
//! ```no_run
//! use hedc_dm::{DmNode, DmRouter};
//! use hedc_net::{DmServer, NetConfig, NetDm, ServerConfig};
//! use std::sync::Arc;
//!
//! # fn node() -> Arc<dyn DmNode> { unimplemented!() }
//! // Server side: put a DM node on a loopback socket.
//! let server = DmServer::bind("127.0.0.1:0", node(), ServerConfig::default()).unwrap();
//!
//! // Client side: the remote node joins a router like any local one.
//! let remote = Arc::new(NetDm::connect(server.local_addr(), "dm-1", NetConfig::default()));
//! let router = DmRouter::new(vec![remote]);
//! ```
//!
//! Everything here is std + serde: no async runtime, no networking crates.
//! Readiness is polled with nonblocking sockets and short condvar parks —
//! no epoll dependency — which keeps the subsystem auditable while the
//! serving thread count stays fixed as client count grows (the §5
//! lesson: bound concurrency and reject work you cannot finish).

#![warn(missing_docs)]

pub mod frame;
pub mod proto;

mod client;
mod mux;
mod server;

pub use client::{NetConfig, NetDm};
pub use mux::{MuxClient, Pending};
pub use server::{AdmissionConfig, DmServer, ServerConfig, ShardIdentity};
