//! `DmServer`: expose a [`DmNode`] on a TCP listener.
//!
//! One acceptor thread plus one thread per connection — the same
//! thread-per-session shape the paper's middle tier runs (§5.1). Connections
//! are long-lived and carry many request/response frame pairs. Reads poll on
//! a short deadline so every thread notices shutdown promptly; writes carry
//! a hard deadline so one stuck client cannot wedge a handler forever.

use crate::frame::{read_frame_or_idle, write_frame, Frame, FrameKind};
use crate::proto::{decode, encode, Request, Response, WireError};
use hedc_dm::{DmNode, NameType};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server-side deadlines.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Poll interval for idle connection reads; bounds how long shutdown
    /// waits on a quiet handler.
    pub idle_poll: Duration,
    /// Hard deadline for writing a response frame.
    pub write_timeout: Duration,
    /// Requests handled slower than this emit a structured `slow_request`
    /// event carrying the trace ID and peer address — the net-tier analogue
    /// of metadb's `slow_query_ms`.
    pub slow_request: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            idle_poll: Duration::from_millis(100),
            write_timeout: Duration::from_secs(2),
            slow_request: Duration::from_millis(100),
        }
    }
}

/// A running DM network server. Dropping it (or calling
/// [`DmServer::shutdown`]) stops the acceptor, severs open connections, and
/// joins every thread.
pub struct DmServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl DmServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral loopback port) and
    /// start serving `node`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        node: Arc<dyn DmNode>,
        config: ServerConfig,
    ) -> io::Result<DmServer> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept + sleep keeps the acceptor responsive to
        // shutdown without platform-specific accept timeouts.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let acceptor = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name(format!("dm-net-accept-{}", addr.port()))
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if let Ok(clone) = stream.try_clone() {
                                    conns.lock().unwrap().push(clone);
                                }
                                let node = Arc::clone(&node);
                                let stop = Arc::clone(&stop);
                                let handle = std::thread::Builder::new()
                                    .name(format!("dm-net-conn-{}", addr.port()))
                                    .spawn(move || serve_connection(stream, node, stop, config))
                                    .expect("spawn connection handler");
                                handlers.lock().unwrap().push(handle);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => break,
                        }
                    }
                    // Listener drops here: further connects are refused.
                })
                .expect("spawn acceptor")
        };

        Ok(DmServer {
            addr,
            stop,
            acceptor: Some(acceptor),
            conns,
            handlers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, sever open connections, and join every thread.
    /// Idempotent; also run on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for conn in self.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handlers: Vec<_> = self.handlers.lock().unwrap().drain(..).collect();
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for DmServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-connection request loop.
fn serve_connection(
    mut stream: TcpStream,
    node: Arc<dyn DmNode>,
    stop: Arc<AtomicBool>,
    config: ServerConfig,
) {
    if stream.set_read_timeout(Some(config.idle_poll)).is_err()
        || stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
    {
        return;
    }
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".into());
    let obs = hedc_obs::global();
    let rpc_hist = obs.histogram("net.rpc.server");
    let requests = obs.counter("net.server.requests");
    let bytes_in = obs.counter("net.server.bytes_in");
    let bytes_out = obs.counter("net.server.bytes_out");
    // Saturation gauges: open connections, and how many are mid-request.
    let connections = obs.gauge("net.server.connections");
    let inflight = obs.gauge("net.server.inflight");
    connections.add(1);

    while !stop.load(Ordering::SeqCst) {
        let frame = match read_frame_or_idle(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) => continue, // idle poll tick; re-check shutdown
            Err(_) => break,      // EOF, mid-frame stall, or severed socket
        };
        if frame.kind != FrameKind::Request {
            break; // protocol violation; drop the connection
        }
        bytes_in.add(frame.wire_len() as u64);
        requests.inc();

        // Join the caller's trace: adopt its (trace, span) as ambient, so
        // the server-side span becomes a child of the client-side RPC span.
        let caller = (frame.trace_id != 0).then_some(hedc_obs::SpanContext {
            trace_id: frame.trace_id,
            span_id: frame.span_id,
        });
        let _g = hedc_obs::adopt(caller);
        let span = hedc_obs::Span::child("net.rpc.server");
        let start = Instant::now();
        inflight.add(1);

        let request: Result<Request, _> = decode(&frame.payload);
        let label = request.as_ref().map(request_label).unwrap_or("malformed");
        let response = match request {
            Ok(req) => respond(node.as_ref(), req, true),
            Err(e) => Response::Error(WireError {
                kind: crate::proto::WireErrorKind::Failed,
                message: format!("malformed request: {e}"),
            }),
        };
        inflight.add(-1);

        let payload = match encode(&response) {
            Ok(p) => p,
            Err(_) => break,
        };
        let reply = Frame {
            kind: FrameKind::Response,
            trace_id: frame.trace_id,
            span_id: span.context().span_id,
            payload,
        };
        let elapsed = start.elapsed();
        rpc_hist.record_us(elapsed.as_micros() as u64);
        if elapsed >= config.slow_request {
            // The ambient context is still the caller's trace, so the event
            // joins the request's span tree (satellite: net-tier analogue of
            // metadb's slow_query_ms).
            hedc_obs::emit(
                hedc_obs::events::kind::SLOW_REQUEST,
                format!(
                    "request={label} peer={peer} elapsed_us={}",
                    elapsed.as_micros()
                ),
            );
        }
        drop(span);
        match write_frame(&mut stream, &reply) {
            Ok(n) => bytes_out.add(n as u64),
            Err(_) => break,
        }
    }
    connections.add(-1);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Stable label for a request shape, for slow-request events.
fn request_label(request: &Request) -> &'static str {
    match request {
        Request::Ping => "ping",
        Request::Query(_) => "query",
        Request::Resolve { .. } => "resolve",
        Request::Batch(_) => "batch",
    }
}

/// Dispatch one request. `top_level` distinguishes the outer frame from
/// batch entries: a `Batch` nested inside a `Batch` is rejected per entry
/// instead of recursing (the protocol forbids nesting, and a flat cap keeps
/// a hostile frame from driving unbounded recursion).
fn respond(node: &dyn DmNode, request: Request, top_level: bool) -> Response {
    match request {
        Request::Ping => Response::Pong {
            node_id: node.node_id(),
        },
        Request::Query(q) => match node.execute_query(&q) {
            Ok(r) => Response::Result(r),
            Err(e) => Response::Error(WireError::from_dm(&e)),
        },
        Request::Resolve { item_id, name_type } => match node.resolve_names(item_id, name_type) {
            Ok(names) => Response::Names(names),
            Err(e) => Response::Error(WireError::from_dm(&e)),
        },
        Request::Batch(entries) if top_level => {
            // A homogeneous resolve batch runs through the node's batched
            // name mapping — two IN-list queries for the whole batch
            // instead of two point queries per entry. Mixed batches fall
            // back to per-entry dispatch; either way the answers line up
            // positionally and errors stay isolated per entry.
            if let Some((ids, want)) = homogeneous_resolve(&entries) {
                let _span = hedc_obs::Span::child("net.rpc.server.resolve_batch");
                Response::Batch(
                    node.resolve_batch(&ids, want)
                        .into_iter()
                        .map(|r| match r {
                            Ok(names) => Response::Names(names),
                            Err(e) => Response::Error(WireError::from_dm(&e)),
                        })
                        .collect(),
                )
            } else {
                Response::Batch(
                    entries
                        .into_iter()
                        .map(|e| {
                            // One span per entry (error outcomes included),
                            // so batch members attribute individually in the
                            // caller's trace.
                            let _span = hedc_obs::Span::child("net.rpc.server.entry");
                            respond(node, e, false)
                        })
                        .collect(),
                )
            }
        }
        Request::Batch(_) => Response::Error(WireError {
            kind: crate::proto::WireErrorKind::Failed,
            message: "nested batch rejected".into(),
        }),
    }
}

/// If every entry is a [`Request::Resolve`] asking for the same name type,
/// return the item ids (in entry order) and that type.
fn homogeneous_resolve(entries: &[Request]) -> Option<(Vec<i64>, NameType)> {
    let mut want: Option<NameType> = None;
    let mut ids = Vec::with_capacity(entries.len());
    for entry in entries {
        match entry {
            Request::Resolve { item_id, name_type }
                if want.is_none() || want == Some(*name_type) =>
            {
                want = Some(*name_type);
                ids.push(*item_id);
            }
            _ => return None,
        }
    }
    want.map(|w| (ids, w))
}
