//! `DmServer`: expose a [`DmNode`] on a TCP listener — event-driven.
//!
//! The serving tier is a small, fixed set of threads regardless of how many
//! clients connect (the paper's §5 lesson: bound concurrency up front and
//! reject work you cannot finish, instead of queueing into 30-second p99s):
//!
//! ```text
//!   acceptor ──► reader shards ──► bounded run queues ──► worker pool
//!   (1 thread)   (own N conns     (per-worker, shed      (≈ CPU count,
//!    blocking     each, non-       when full or stale)    executes the
//!    accept)      blocking I/O)                           DmNode calls)
//! ```
//!
//! * The **acceptor** blocks in `accept()` — no sleep-poll, so an idle
//!   server admits a new connection in microseconds — and refuses
//!   connections beyond `max_connections` outright.
//! * **Reader shards** own the sockets. Each shard sweeps its connections
//!   with nonblocking reads into an incremental [`FrameBuffer`], drains
//!   complete frames to the run queues, and flushes response bytes back
//!   out. A peer that starts a frame and stalls (slow loris) trips the
//!   read deadline and is disconnected without ever pinning a worker.
//! * **Workers** execute requests. Admission control sheds instead of
//!   queueing without bound: a full run queue, a request that sat queued
//!   past its deadline, or a connection over its in-flight cap gets an
//!   immediate typed `Overloaded` response the client can retry or fail
//!   over (`DmError::Overloaded` → `DmRouter` redirect).
//!
//! Connections are multiplexed: many requests may be in flight per socket,
//! correlated by the frame header's request id, and responses complete out
//! of order. Queue wait is recorded as a `net.server.queue_wait` span in
//! the caller's trace, so a shed or queued request is attributable on
//! `/hedc/traces`.

use crate::frame::{encode_frame, Frame, FrameBuffer, FrameKind};
use crate::proto::{decode, encode, Request, Response, WireError, WireErrorKind};
use hedc_dm::{DmNode, NameType, ShardMapHandle};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Admission-control limits. Every bound has a shed behaviour: exceeding it
/// produces a fast typed `Overloaded` rejection (or a refused connection),
/// never an unbounded queue.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Open-connection cap; connections beyond it are accepted and
    /// immediately closed (counted as `net.server.accept_rejected`).
    pub max_connections: usize,
    /// Worker threads executing requests. `0` = one per available core
    /// (clamped to 2..=16).
    pub workers: usize,
    /// Reader shards sweeping connection sockets. `0` = 2.
    pub reader_shards: usize,
    /// Per-worker run-queue depth; a frame arriving at a full queue is shed
    /// (`net.server.shed.queue_full`).
    pub queue_depth: usize,
    /// A request that waited in the run queue longer than this is shed
    /// without execution (`net.server.shed.deadline`) — by the time a
    /// worker reaches it the client has usually given up anyway.
    pub queue_deadline: Duration,
    /// A peer that starts a frame and leaves it unfinished this long is
    /// disconnected (`net.server.read_deadline_kills`): the slow-loris
    /// guard.
    pub read_deadline: Duration,
    /// Per-connection in-flight request cap; excess pipelined frames are
    /// shed (`net.server.shed.inflight`) so one greedy multiplexer cannot
    /// monopolize the worker pool.
    pub max_inflight_per_conn: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_connections: 1024,
            workers: 0,
            reader_shards: 0,
            queue_depth: 256,
            queue_deadline: Duration::from_millis(1000),
            read_deadline: Duration::from_millis(2000),
            max_inflight_per_conn: 64,
        }
    }
}

impl AdmissionConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 16)
    }

    fn effective_shards(&self) -> usize {
        if self.reader_shards > 0 {
            return self.reader_shards;
        }
        2
    }
}

/// Server-side deadlines and limits.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Shard sweep park interval while a shard owns no connections; new
    /// registrations and responses wake shards early, so this only bounds
    /// how fast a completely idle shard notices shutdown.
    pub idle_poll: Duration,
    /// Hard deadline for draining a response to a non-reading client
    /// before the connection is severed.
    pub write_timeout: Duration,
    /// Requests handled slower than this emit a structured `slow_request`
    /// event carrying the trace ID and peer address — the net-tier analogue
    /// of metadb's `slow_query_ms`.
    pub slow_request: Duration,
    /// Admission-control limits (connection cap, worker pool, run queues,
    /// shed deadlines).
    pub admission: AdmissionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            idle_poll: Duration::from_millis(25),
            write_timeout: Duration::from_secs(2),
            slow_request: Duration::from_millis(100),
            admission: AdmissionConfig::default(),
        }
    }
}

/// The serving node's place in a sharded cluster: which shard it answers
/// for, and the live [`ShardMapHandle`] its epoch checks read. Shared with
/// the cluster's rebalance workflow — a cutover `install` is immediately
/// visible to every server holding the handle, so stale-epoch redirects
/// start on the very next request.
#[derive(Clone)]
pub struct ShardIdentity {
    /// The shard this server's backing node stores.
    pub shard: u32,
    /// The cluster map the epoch handshake validates against.
    pub map: Arc<ShardMapHandle>,
}

/// Park interval for a shard that owns live connections. Readiness is
/// polled (pure std, no epoll dependency): responses and registrations
/// wake the shard immediately; fresh request bytes are noticed within one
/// park interval.
const BUSY_PARK: Duration = Duration::from_micros(200);
/// How long a worker sleeps between run-queue checks when idle (pops are
/// condvar-notified; this only bounds shutdown latency).
const WORKER_PARK: Duration = Duration::from_millis(25);

/// Response bytes and liveness shared between the owning reader shard and
/// the workers completing requests for the connection.
struct ConnShared {
    /// Encoded response frames waiting for the shard to flush.
    outbox: Mutex<VecDeque<Vec<u8>>>,
    /// Set by a worker that hit an unrecoverable encode error; the shard
    /// severs the connection on its next sweep.
    dead: AtomicBool,
    /// Requests dispatched but not yet answered, for the per-connection
    /// in-flight cap.
    inflight: AtomicI64,
}

/// One unit of admitted work: a decoded-enough request frame plus the
/// plumbing to answer it.
struct WorkItem {
    frame: Frame,
    enqueued: Instant,
    conn: Arc<ConnShared>,
    shard: Arc<Shard>,
    peer: Arc<str>,
}

/// A bounded per-worker run queue.
struct WorkQueue {
    items: Mutex<VecDeque<WorkItem>>,
    cv: Condvar,
    depth: usize,
}

impl WorkQueue {
    fn new(depth: usize) -> WorkQueue {
        WorkQueue {
            items: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            depth,
        }
    }

    /// Enqueue unless full; hands the item back on overflow so the caller
    /// can try a sibling queue or shed.
    fn try_push(&self, item: WorkItem) -> Result<(), WorkItem> {
        let mut items = self.items.lock().unwrap();
        if items.len() >= self.depth {
            return Err(item);
        }
        items.push_back(item);
        drop(items);
        self.cv.notify_one();
        Ok(())
    }
}

/// Reader-shard wakeup state: pending connection registrations plus a wake
/// flag set by workers when they enqueue a response.
struct ShardState {
    incoming: Vec<(TcpStream, Arc<str>)>,
    wake: bool,
}

struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            state: Mutex::new(ShardState {
                incoming: Vec::new(),
                wake: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn wake(&self) {
        let mut st = self.state.lock().unwrap();
        st.wake = true;
        drop(st);
        self.cv.notify_all();
    }

    fn register(&self, stream: TcpStream, peer: Arc<str>) {
        let mut st = self.state.lock().unwrap();
        st.incoming.push((stream, peer));
        st.wake = true;
        drop(st);
        self.cv.notify_all();
    }
}

/// A running DM network server. Dropping it (or calling
/// [`DmServer::shutdown`]) stops the acceptor, severs open connections, and
/// joins every thread.
pub struct DmServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    listener: Option<TcpListener>,
    acceptor: Option<JoinHandle<()>>,
    shards: Vec<Arc<Shard>>,
    shard_handles: Vec<JoinHandle<()>>,
    queues: Arc<Vec<Arc<WorkQueue>>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl DmServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral loopback port) and
    /// start serving `node`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        node: Arc<dyn DmNode>,
        config: ServerConfig,
    ) -> io::Result<DmServer> {
        Self::bind_with_identity(addr, node, config, None)
    }

    /// [`DmServer::bind`] with a shard identity: the server additionally
    /// answers the sharded-cluster protocol — [`Request::Sharded`]
    /// envelopes are epoch- and ownership-checked (wrong ⇒
    /// [`Response::Redirect`], never a miss), [`Request::FetchShardMap`]
    /// serves the current map, and pongs carry the epoch.
    pub fn bind_sharded(
        addr: impl ToSocketAddrs,
        node: Arc<dyn DmNode>,
        config: ServerConfig,
        identity: ShardIdentity,
    ) -> io::Result<DmServer> {
        Self::bind_with_identity(addr, node, config, Some(Arc::new(identity)))
    }

    fn bind_with_identity(
        addr: impl ToSocketAddrs,
        node: Arc<dyn DmNode>,
        config: ServerConfig,
        identity: Option<Arc<ShardIdentity>>,
    ) -> io::Result<DmServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conn_count = Arc::new(AtomicI64::new(0));

        let n_workers = config.admission.effective_workers();
        let n_shards = config.admission.effective_shards();
        let queues: Arc<Vec<Arc<WorkQueue>>> = Arc::new(
            (0..n_workers)
                .map(|_| Arc::new(WorkQueue::new(config.admission.queue_depth)))
                .collect(),
        );
        let shards: Vec<Arc<Shard>> = (0..n_shards).map(|_| Arc::new(Shard::new())).collect();

        let worker_handles: Vec<JoinHandle<()>> = queues
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let q = Arc::clone(q);
                let node = Arc::clone(&node);
                let stop = Arc::clone(&stop);
                let identity = identity.clone();
                std::thread::Builder::new()
                    .name(format!("dm-net-worker-{}-{i}", addr.port()))
                    .spawn(move || worker_loop(q, node, stop, config, identity))
                    .expect("spawn worker")
            })
            .collect();

        let shard_handles: Vec<JoinHandle<()>> = shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let shard = Arc::clone(shard);
                let queues = Arc::clone(&queues);
                let stop = Arc::clone(&stop);
                let conn_count = Arc::clone(&conn_count);
                std::thread::Builder::new()
                    .name(format!("dm-net-shard-{}-{i}", addr.port()))
                    .spawn(move || shard_loop(shard, queues, stop, conn_count, config))
                    .expect("spawn reader shard")
            })
            .collect();

        let acceptor = {
            let listener = listener.try_clone()?;
            let stop = Arc::clone(&stop);
            let shards = shards.clone();
            let conn_count = Arc::clone(&conn_count);
            let max_conns = config.admission.max_connections;
            std::thread::Builder::new()
                .name(format!("dm-net-accept-{}", addr.port()))
                .spawn(move || {
                    accept_loop(listener, stop, shards, conn_count, max_conns);
                })
                .expect("spawn acceptor")
        };

        Ok(DmServer {
            addr,
            stop,
            listener: Some(listener),
            acceptor: Some(acceptor),
            shards,
            shard_handles,
            queues,
            worker_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, sever open connections, and join every thread.
    /// Idempotent; also run on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Pop the acceptor out of its blocking accept: flip the shared fd
        // to nonblocking (the acceptor holds a clone of the same socket)
        // and nudge it with a throwaway connect in case it was already
        // parked inside the syscall.
        if let Some(listener) = self.listener.take() {
            let _ = listener.set_nonblocking(true);
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(100));
        }
        for shard in &self.shards {
            shard.wake();
        }
        for q in self.queues.iter() {
            q.cv.notify_all();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for h in self.shard_handles.drain(..) {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for DmServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Blocking accept loop with a hard connection cap. No sleep-poll: an idle
/// server sits in `accept()` and admits a fresh connection the instant the
/// kernel hands it over.
fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    shards: Vec<Arc<Shard>>,
    conn_count: Arc<AtomicI64>,
    max_connections: usize,
) {
    let obs = hedc_obs::global();
    let rejected = obs.counter("net.server.accept_rejected");
    let mut next_shard = 0usize;
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if stop.load(Ordering::SeqCst) {
                    break; // the shutdown nudge connect lands here
                }
                if conn_count.load(Ordering::SeqCst) >= max_connections as i64 {
                    rejected.inc();
                    hedc_obs::emit(
                        hedc_obs::events::kind::OVERLOAD_SHED,
                        format!("reason=accept peer={peer} cap={max_connections}"),
                    );
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                conn_count.fetch_add(1, Ordering::SeqCst);
                let peer: Arc<str> = Arc::from(peer.to_string());
                shards[next_shard % shards.len()].register(stream, peer);
                next_shard = next_shard.wrapping_add(1);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Only reachable once shutdown flipped the fd nonblocking.
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
    // Listener clone drops here; shutdown() dropped the other handle, so
    // further connects are refused.
}

/// One connection owned by a reader shard.
struct Conn {
    stream: TcpStream,
    peer: Arc<str>,
    buf: FrameBuffer,
    shared: Arc<ConnShared>,
    write_pending: Vec<u8>,
    write_since: Option<Instant>,
    partial_since: Option<Instant>,
}

/// Reader-shard sweep loop: drain registrations, flush outboxes, read and
/// parse request bytes, dispatch admitted frames to the run queues.
fn shard_loop(
    shard: Arc<Shard>,
    queues: Arc<Vec<Arc<WorkQueue>>>,
    stop: Arc<AtomicBool>,
    conn_count: Arc<AtomicI64>,
    config: ServerConfig,
) {
    let obs = hedc_obs::global();
    let connections = obs.gauge("net.server.connections");
    let inflight = obs.gauge("net.server.inflight");
    let queue_depth = obs.gauge("net.server.queue_depth");
    let conn_max_inflight = obs.gauge("net.server.conn_max_inflight");
    let requests = obs.counter("net.server.requests");
    let bytes_in = obs.counter("net.server.bytes_in");
    let bytes_out = obs.counter("net.server.bytes_out");
    let overloaded = obs.counter("net.server.overloaded");
    let shed_queue_full = obs.counter("net.server.shed.queue_full");
    let shed_inflight = obs.counter("net.server.shed.inflight");
    let read_kills = obs.counter("net.server.read_deadline_kills");

    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut rr = 0usize;

    while !stop.load(Ordering::SeqCst) {
        // Admit newly-registered connections.
        let incoming: Vec<(TcpStream, Arc<str>)> = {
            let mut st = shard.state.lock().unwrap();
            st.wake = false;
            std::mem::take(&mut st.incoming)
        };
        for (stream, peer) in incoming {
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                conn_count.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            connections.add(1);
            conns.push(Conn {
                stream,
                peer,
                buf: FrameBuffer::new(),
                shared: Arc::new(ConnShared {
                    outbox: Mutex::new(VecDeque::new()),
                    dead: AtomicBool::new(false),
                    inflight: AtomicI64::new(0),
                }),
                write_pending: Vec::new(),
                write_since: None,
                partial_since: None,
            });
        }

        let mut progressed = false;
        let mut i = 0;
        while i < conns.len() {
            let alive = sweep_conn(
                &mut conns[i],
                &shard,
                &queues,
                &mut rr,
                &mut scratch,
                &mut progressed,
                &config,
                SweepCounters {
                    requests: &requests,
                    bytes_in: &bytes_in,
                    bytes_out: &bytes_out,
                    overloaded: &overloaded,
                    shed_queue_full: &shed_queue_full,
                    shed_inflight: &shed_inflight,
                    read_kills: &read_kills,
                    inflight: &inflight,
                    queue_depth: &queue_depth,
                    conn_max_inflight: &conn_max_inflight,
                },
            );
            if alive {
                i += 1;
            } else {
                let conn = conns.swap_remove(i);
                let _ = conn.stream.shutdown(Shutdown::Both);
                conn.shared.dead.store(true, Ordering::SeqCst);
                connections.add(-1);
                conn_count.fetch_sub(1, Ordering::SeqCst);
            }
        }

        if progressed {
            continue; // keep sweeping while there is work
        }
        let park = if conns.is_empty() {
            config.idle_poll
        } else {
            BUSY_PARK
        };
        let st = shard.state.lock().unwrap();
        if !st.wake && st.incoming.is_empty() {
            let _ = shard.cv.wait_timeout(st, park).unwrap();
        }
    }

    // Shutdown: sever everything this shard owns.
    for conn in conns {
        let _ = conn.stream.shutdown(Shutdown::Both);
        conn.shared.dead.store(true, Ordering::SeqCst);
        connections.add(-1);
        conn_count.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Obs handles threaded through one shard sweep.
struct SweepCounters<'a> {
    requests: &'a hedc_obs::Counter,
    bytes_in: &'a hedc_obs::Counter,
    bytes_out: &'a hedc_obs::Counter,
    overloaded: &'a hedc_obs::Counter,
    shed_queue_full: &'a hedc_obs::Counter,
    shed_inflight: &'a hedc_obs::Counter,
    read_kills: &'a hedc_obs::Counter,
    inflight: &'a hedc_obs::Gauge,
    queue_depth: &'a hedc_obs::Gauge,
    conn_max_inflight: &'a hedc_obs::Gauge,
}

/// One sweep over one connection: flush, read, parse, dispatch. Returns
/// `false` when the connection must be severed.
#[allow(clippy::too_many_arguments)]
fn sweep_conn(
    conn: &mut Conn,
    shard: &Arc<Shard>,
    queues: &Arc<Vec<Arc<WorkQueue>>>,
    rr: &mut usize,
    scratch: &mut [u8],
    progressed: &mut bool,
    config: &ServerConfig,
    c: SweepCounters<'_>,
) -> bool {
    if conn.shared.dead.load(Ordering::SeqCst) {
        return false;
    }
    let now = Instant::now();

    // Flush: move queued response frames into the pending buffer, then
    // write as much as the socket accepts.
    {
        let mut outbox = conn.shared.outbox.lock().unwrap();
        while let Some(bytes) = outbox.pop_front() {
            conn.write_pending.extend_from_slice(&bytes);
        }
    }
    while !conn.write_pending.is_empty() {
        match conn.stream.write(&conn.write_pending) {
            Ok(0) => return false,
            Ok(n) => {
                conn.write_pending.drain(..n);
                c.bytes_out.add(n as u64);
                *progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                let since = *conn.write_since.get_or_insert(now);
                if now.duration_since(since) > config.write_timeout {
                    return false; // client stopped reading; cut it loose
                }
                break;
            }
            Err(_) => return false,
        }
    }
    if conn.write_pending.is_empty() {
        conn.write_since = None;
    }

    // Read whatever the socket has, with a per-sweep cap so one firehose
    // connection cannot starve its shard siblings.
    for _ in 0..4 {
        match conn.stream.read(scratch) {
            Ok(0) => return false, // orderly EOF
            Ok(n) => {
                conn.buf.extend(&scratch[..n]);
                *progressed = true;
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                break;
            }
            Err(_) => return false,
        }
    }

    // Parse and dispatch every complete frame.
    loop {
        let frame = match conn.buf.next_frame() {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(_) => return false, // corrupt stream
        };
        if frame.kind != FrameKind::Request {
            return false; // protocol violation
        }
        c.requests.inc();
        c.bytes_in.add(frame.wire_len() as u64);
        *progressed = true;
        if !dispatch(frame, conn, shard, queues, rr, config, &c) {
            // Shed, not fatal: the rejection is already in the outbox.
            continue;
        }
    }

    // Slow-loris guard: a frame left unfinished past the read deadline
    // kills the connection (a worker never saw it, so none was pinned).
    if conn.buf.has_partial() {
        let since = *conn.partial_since.get_or_insert(now);
        if now.duration_since(since) > config.admission.read_deadline {
            c.read_kills.inc();
            hedc_obs::emit(
                hedc_obs::events::kind::OVERLOAD_SHED,
                format!(
                    "reason=read_deadline peer={} stalled_ms={}",
                    conn.peer,
                    now.duration_since(since).as_millis()
                ),
            );
            return false;
        }
    } else {
        conn.partial_since = None;
    }
    true
}

/// Admission decision for one parsed request frame. Returns `true` when the
/// frame was enqueued, `false` when it was shed (a typed `Overloaded`
/// response is already queued for the client either way the connection
/// stays up).
fn dispatch(
    frame: Frame,
    conn: &mut Conn,
    shard: &Arc<Shard>,
    queues: &Arc<Vec<Arc<WorkQueue>>>,
    rr: &mut usize,
    config: &ServerConfig,
    c: &SweepCounters<'_>,
) -> bool {
    // Per-connection in-flight cap.
    let cur = conn.shared.inflight.fetch_add(1, Ordering::SeqCst) + 1;
    if cur > config.admission.max_inflight_per_conn as i64 {
        conn.shared.inflight.fetch_sub(1, Ordering::SeqCst);
        c.shed_inflight.inc();
        c.overloaded.inc();
        shed_to_outbox(conn, &frame, "inflight_cap");
        return false;
    }
    if cur > c.conn_max_inflight.get() {
        c.conn_max_inflight.set(cur);
    }

    // Round-robin over the run queues, spilling to siblings before
    // shedding: only a pool-wide backlog rejects.
    let mut item = WorkItem {
        frame,
        enqueued: Instant::now(),
        conn: Arc::clone(&conn.shared),
        shard: Arc::clone(shard),
        peer: Arc::clone(&conn.peer),
    };
    let start = *rr;
    *rr = rr.wrapping_add(1);
    for i in 0..queues.len() {
        let q = &queues[(start + i) % queues.len()];
        match q.try_push(item) {
            Ok(()) => {
                c.inflight.add(1);
                c.queue_depth.add(1);
                return true;
            }
            Err(back) => item = back,
        }
    }
    conn.shared.inflight.fetch_sub(1, Ordering::SeqCst);
    c.shed_queue_full.inc();
    c.overloaded.inc();
    shed_to_outbox(conn, &item.frame, "queue_full");
    false
}

/// Queue a typed `Overloaded` rejection for `frame` directly on the
/// connection's outbox (shard-side shed: the request never reaches a
/// worker).
fn shed_to_outbox(conn: &mut Conn, frame: &Frame, reason: &str) {
    if let Some(bytes) = shed_response(frame, reason, &conn.peer) {
        conn.shared.outbox.lock().unwrap().push_back(bytes);
    }
}

/// Build the encoded `Overloaded` response frame for a shed request and
/// emit the structured shed event into the caller's trace.
fn shed_response(frame: &Frame, reason: &str, peer: &str) -> Option<Vec<u8>> {
    // Join the caller's trace so the shed is attributable on /hedc/traces.
    let caller = (frame.trace_id != 0).then_some(hedc_obs::SpanContext {
        trace_id: frame.trace_id,
        span_id: frame.span_id,
    });
    let _g = hedc_obs::adopt(caller);
    hedc_obs::emit(
        hedc_obs::events::kind::OVERLOAD_SHED,
        format!("reason={reason} peer={peer} req_id={}", frame.req_id),
    );
    let payload = encode(&Response::Error(WireError {
        kind: WireErrorKind::Overloaded,
        message: format!("shed: {reason}"),
    }))
    .ok()?;
    encode_frame(&Frame {
        kind: FrameKind::Response,
        trace_id: frame.trace_id,
        span_id: 0,
        req_id: frame.req_id,
        payload,
    })
    .ok()
}

/// Worker loop: pop admitted requests, enforce the queue deadline, execute
/// against the node, and hand the encoded response back to the owning
/// shard.
fn worker_loop(
    queue: Arc<WorkQueue>,
    node: Arc<dyn DmNode>,
    stop: Arc<AtomicBool>,
    config: ServerConfig,
    identity: Option<Arc<ShardIdentity>>,
) {
    let obs = hedc_obs::global();
    let rpc_hist = obs.histogram("net.rpc.server");
    let inflight = obs.gauge("net.server.inflight");
    let queue_depth = obs.gauge("net.server.queue_depth");
    let overloaded = obs.counter("net.server.overloaded");
    let shed_deadline = obs.counter("net.server.shed.deadline");

    loop {
        let item = {
            let mut items = queue.items.lock().unwrap();
            loop {
                if let Some(it) = items.pop_front() {
                    break Some(it);
                }
                if stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _timeout) = queue.cv.wait_timeout(items, WORKER_PARK).unwrap();
                items = guard;
            }
        };
        let Some(item) = item else { break };
        queue_depth.add(-1);

        let frame = &item.frame;
        let waited = item.enqueued.elapsed();
        if waited > config.admission.queue_deadline {
            // Deadline-aware shed: the client's own deadline has likely
            // passed; answering now only wastes an execution slot.
            shed_deadline.inc();
            overloaded.inc();
            if let Some(bytes) = shed_response(frame, "queue_deadline", &item.peer) {
                item.conn.outbox.lock().unwrap().push_back(bytes);
            }
            finish_item(&item, &inflight);
            continue;
        }

        // Join the caller's trace; the backdated queue-wait span makes
        // time-spent-queued attributable in the critical-path analyzer.
        let caller = (frame.trace_id != 0).then_some(hedc_obs::SpanContext {
            trace_id: frame.trace_id,
            span_id: frame.span_id,
        });
        let _g = hedc_obs::adopt(caller);
        hedc_obs::record_interval("net.server.queue_wait", item.enqueued);
        let span = hedc_obs::Span::child("net.rpc.server");
        let start = Instant::now();

        let request: Result<Request, _> = decode(&frame.payload);
        let label = request.as_ref().map(request_label).unwrap_or("malformed");
        let response = match request {
            Ok(req) => respond(node.as_ref(), identity.as_deref(), req, true),
            Err(e) => Response::Error(WireError {
                kind: WireErrorKind::Failed,
                message: format!("malformed request: {e}"),
            }),
        };

        let reply = encode(&response).ok().and_then(|payload| {
            encode_frame(&Frame {
                kind: FrameKind::Response,
                trace_id: frame.trace_id,
                span_id: span.context().span_id,
                req_id: frame.req_id,
                payload,
            })
            .ok()
        });

        let elapsed = start.elapsed();
        rpc_hist.record_us(elapsed.as_micros() as u64);
        if elapsed >= config.slow_request {
            // The ambient context is still the caller's trace, so the event
            // joins the request's span tree (net-tier analogue of metadb's
            // slow_query_ms).
            hedc_obs::emit(
                hedc_obs::events::kind::SLOW_REQUEST,
                format!(
                    "request={label} peer={} elapsed_us={}",
                    item.peer,
                    elapsed.as_micros()
                ),
            );
        }
        drop(span);

        match reply {
            Some(bytes) => item.conn.outbox.lock().unwrap().push_back(bytes),
            None => item.conn.dead.store(true, Ordering::SeqCst),
        }
        finish_item(&item, &inflight);
    }
}

/// Book-keeping after a work item is answered (or shed by the worker): the
/// connection's in-flight slot frees and the owning shard wakes to flush.
fn finish_item(item: &WorkItem, inflight: &hedc_obs::Gauge) {
    item.conn.inflight.fetch_sub(1, Ordering::SeqCst);
    inflight.add(-1);
    item.shard.wake();
}

/// Stable label for a request shape, for slow-request events.
fn request_label(request: &Request) -> &'static str {
    match request {
        Request::Ping => "ping",
        Request::Query(_) => "query",
        Request::Resolve { .. } => "resolve",
        Request::Batch(_) => "batch",
        Request::Sharded { .. } => "sharded",
        Request::FetchShardMap => "fetch_shard_map",
    }
}

/// Dispatch one request. `top_level` distinguishes the outer frame from
/// batch entries: a `Batch` nested inside a `Batch` is rejected per entry
/// instead of recursing (the protocol forbids nesting, and a flat cap keeps
/// a hostile frame from driving unbounded recursion).
fn respond(
    node: &dyn DmNode,
    identity: Option<&ShardIdentity>,
    request: Request,
    top_level: bool,
) -> Response {
    match request {
        Request::Ping => Response::Pong {
            node_id: node.node_id(),
            epoch: identity.map_or(0, |i| i.map.epoch()),
        },
        Request::Sharded { shard, epoch, inner } if top_level => {
            if matches!(*inner, Request::Sharded { .. }) {
                return Response::Error(WireError {
                    kind: WireErrorKind::Failed,
                    message: "nested sharded envelope rejected".into(),
                });
            }
            let Some(id) = identity else {
                // An unsharded node ignores the envelope — single-node
                // deployments accept cluster-aware clients unchanged.
                return respond(node, identity, *inner, true);
            };
            let current = id.map.epoch();
            if epoch != current || shard != id.shard {
                let reason = if epoch != current {
                    hedc_obs::global()
                        .counter("dm.shard.redirect.stale_epoch")
                        .inc();
                    "stale epoch"
                } else {
                    hedc_obs::global()
                        .counter("dm.shard.redirect.wrong_shard")
                        .inc();
                    "wrong shard"
                };
                hedc_obs::emit(
                    hedc_obs::events::kind::DM_REDIRECT,
                    format!(
                        "{reason}: client routed shard {shard}@e{epoch}, \
                         serving shard {}@e{current}",
                        id.shard
                    ),
                );
                return Response::Redirect {
                    shard: id.shard,
                    epoch: current,
                };
            }
            respond(node, identity, *inner, true)
        }
        Request::Sharded { .. } => Response::Error(WireError {
            kind: WireErrorKind::Failed,
            message: "sharded envelope must be the outer frame".into(),
        }),
        Request::FetchShardMap => match identity {
            Some(id) => Response::ShardMap((*id.map.current()).clone()),
            None => Response::Error(WireError {
                kind: WireErrorKind::Failed,
                message: "node has no shard map".into(),
            }),
        },
        Request::Query(q) => match node.execute_query(&q) {
            Ok(r) => Response::Result(r),
            Err(e) => Response::Error(WireError::from_dm(&e)),
        },
        Request::Resolve { item_id, name_type } => match node.resolve_names(item_id, name_type) {
            Ok(names) => Response::Names(names),
            Err(e) => Response::Error(WireError::from_dm(&e)),
        },
        Request::Batch(entries) if top_level => {
            // A homogeneous resolve batch runs through the node's batched
            // name mapping — two IN-list queries for the whole batch
            // instead of two point queries per entry. Mixed batches fall
            // back to per-entry dispatch; either way the answers line up
            // positionally and errors stay isolated per entry.
            if let Some((ids, want)) = homogeneous_resolve(&entries) {
                let _span = hedc_obs::Span::child("net.rpc.server.resolve_batch");
                Response::Batch(
                    node.resolve_batch(&ids, want)
                        .into_iter()
                        .map(|r| match r {
                            Ok(names) => Response::Names(names),
                            Err(e) => Response::Error(WireError::from_dm(&e)),
                        })
                        .collect(),
                )
            } else {
                Response::Batch(
                    entries
                        .into_iter()
                        .map(|e| {
                            // One span per entry (error outcomes included),
                            // so batch members attribute individually in the
                            // caller's trace.
                            let _span = hedc_obs::Span::child("net.rpc.server.entry");
                            respond(node, identity, e, false)
                        })
                        .collect(),
                )
            }
        }
        Request::Batch(_) => Response::Error(WireError {
            kind: WireErrorKind::Failed,
            message: "nested batch rejected".into(),
        }),
    }
}

/// If every entry is a [`Request::Resolve`] asking for the same name type,
/// return the item ids (in entry order) and that type.
fn homogeneous_resolve(entries: &[Request]) -> Option<(Vec<i64>, NameType)> {
    let mut want: Option<NameType> = None;
    let mut ids = Vec::with_capacity(entries.len());
    for entry in entries {
        match entry {
            Request::Resolve { item_id, name_type }
                if want.is_none() || want == Some(*name_type) =>
            {
                want = Some(*name_type);
                ids.push(*item_id);
            }
            _ => return None,
        }
    }
    want.map(|w| (ids, w))
}
