//! `NetDm`: a [`DmNode`] whose execution happens on a remote server.
//!
//! This is the client half of §5.4 call redirection made real: a
//! [`hedc_dm::DmRouter`] holds a mix of local nodes and `NetDm` handles and
//! the calling code cannot tell which is which. The client keeps a small
//! pool of warm **multiplexed** connections ([`MuxClient`]): many threads
//! share each socket, every request carries its own frame id, and replies
//! complete out of order without head-of-line blocking. Transient
//! transport failures retry with exponential backoff plus jitter; a typed
//! `Overloaded` shed from the server's admission control also retries with
//! backoff (the node is *up* — health is not flipped) before surfacing as
//! [`DmError::Overloaded`] for the router to fail over. A health verdict
//! (refreshed by a wire-level ping) feeds the router's failover decision.
//!
//! [`MuxClient`]: crate::MuxClient

use crate::mux::MuxClient;
use crate::proto::{Request, Response, WireErrorKind};
use hedc_cache::{CacheConfig, GenerationMap, QueryCache};
use hedc_dm::{DmError, DmNode, DmResult, NameType, ResolvedName};
use hedc_metadb::{Query, QueryResult};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Cache scope tag for client-side entries (queries on the wire are
/// already ownership-scoped, so the tag only has to be distinct from the
/// semantic layer's per-user tags).
const CLIENT_SCOPE: &str = "net";

/// Client-side timeouts and retry policy.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-request round-trip deadline (write + read).
    pub request_timeout: Duration,
    /// Transport-failure retries after the first attempt (total attempts =
    /// `retries + 1`). Wire-level errors are never retried — the node
    /// answered — with one exception: a typed `Overloaded` shed retries
    /// with the same backoff, since the server asked for exactly that.
    pub retries: u32,
    /// First backoff step; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// How long a health verdict (from a ping or a completed request) stays
    /// fresh before [`NetDm::is_available`] probes again.
    pub health_ttl: Duration,
    /// Maximum idle connections kept warm.
    pub pool_size: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            connect_timeout: Duration::from_millis(500),
            request_timeout: Duration::from_secs(2),
            retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            health_ttl: Duration::from_millis(250),
            pool_size: 8,
        }
    }
}

#[derive(Debug)]
struct Health {
    available: bool,
    checked: Option<Instant>,
}

/// A remote DM node reached over the `hedc-net` wire protocol.
pub struct NetDm {
    addr: SocketAddr,
    label: String,
    config: NetConfig,
    pool: Mutex<Vec<Arc<MuxClient>>>,
    rr: AtomicUsize,
    health: Mutex<Health>,
    cache: Option<QueryCache>,
}

impl NetDm {
    /// Create a client for the server at `addr`. No connection is made
    /// until the first request or probe.
    pub fn connect(addr: SocketAddr, label: impl Into<String>, config: NetConfig) -> NetDm {
        NetDm {
            addr,
            label: label.into(),
            config,
            pool: Mutex::new(Vec::new()),
            rr: AtomicUsize::new(0),
            health: Mutex::new(Health {
                available: true,
                checked: None,
            }),
            cache: None,
        }
    }

    /// Add a client-side result cache. Generation counters never bump on
    /// this side of the wire (the server's writes are invisible here), so
    /// freshness is purely [`CacheConfig::ttl`] — set one. A warm client
    /// keeps answering browse queries from stale entries when the server
    /// becomes unreachable (degraded read-only mode).
    pub fn with_cache(mut self, cache_config: &CacheConfig) -> NetDm {
        let gens = Arc::new(GenerationMap::new());
        self.cache = Some(QueryCache::new(cache_config, gens));
        self
    }

    /// The client-side cache, when enabled.
    pub fn cache(&self) -> Option<&QueryCache> {
        self.cache.as_ref()
    }

    /// The peer address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Pick a live multiplexed connection round-robin, dialing a fresh one
    /// when the pool is empty (dead connections are pruned on the way).
    /// Connections are *shared*, not checked out exclusively: any number of
    /// in-flight requests ride each socket.
    fn checkout(&self) -> io::Result<Arc<MuxClient>> {
        {
            let mut pool = self.pool.lock().unwrap();
            pool.retain(|c| !c.is_dead());
            if !pool.is_empty() {
                let idx = self.rr.fetch_add(1, Ordering::Relaxed) % pool.len();
                return Ok(Arc::clone(&pool[idx]));
            }
        }
        // Dial outside the lock so a slow connect does not serialize peers.
        let conn = Arc::new(MuxClient::connect(self.addr, self.config.connect_timeout)?);
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < self.config.pool_size {
            pool.push(Arc::clone(&conn));
        }
        Ok(conn)
    }

    fn set_health(&self, available: bool) {
        let mut h = self.health.lock().unwrap();
        h.available = available;
        h.checked = Some(Instant::now());
    }

    /// One request/response exchange over a shared multiplexed connection.
    /// Any error here is a transport failure (the response, if one was
    /// decoded, is returned even when it carries a wire-level error). A
    /// timeout does **not** retire the connection — the straggling
    /// response, if it ever lands, is discarded by request id — but a hard
    /// transport error marks it dead and the pool prunes it.
    fn roundtrip(&self, request: &Request) -> io::Result<(Response, usize, usize)> {
        let conn = self.checkout()?;
        let ctx = hedc_obs::current();
        let pending = conn.submit(
            request,
            ctx.map(|c| c.trace_id).unwrap_or(0),
            ctx.map(|c| c.span_id).unwrap_or(0),
        )?;
        let sent = pending.bytes_sent();
        let (response, received) = pending.wait(self.config.request_timeout)?;
        Ok((response, sent, received))
    }

    /// Issue `request`, retrying transport failures — and server-side
    /// `Overloaded` sheds — per the config. Returns the decoded response,
    /// the last `Overloaded` rejection when every attempt was shed, or
    /// `None` after exhausting retries against a dead transport.
    fn exchange(&self, request: &Request) -> Option<Response> {
        let obs = hedc_obs::global();
        let mut last_shed: Option<Response> = None;
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                obs.counter("net.client.retries").inc();
                std::thread::sleep(backoff(&self.config, attempt));
            }
            match self.roundtrip(request) {
                Ok((response, sent, received)) => {
                    obs.counter("net.client.bytes_out").add(sent as u64);
                    obs.counter("net.client.bytes_in").add(received as u64);
                    if matches!(&response, Response::Error(e) if e.kind == WireErrorKind::Overloaded)
                    {
                        // The server shed the request: back off and retry.
                        // The node is up, so this is not a health event.
                        obs.counter("net.client.overload_retries").inc();
                        last_shed = Some(response);
                        continue;
                    }
                    return Some(response);
                }
                Err(e) => {
                    last_shed = None;
                    let timed_out = matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    );
                    let kind = if timed_out {
                        hedc_obs::events::kind::NET_TIMEOUT
                    } else {
                        hedc_obs::events::kind::NET_RECONNECT
                    };
                    hedc_obs::emit(
                        kind,
                        format!(
                            "{} attempt {}/{}: {e}",
                            self.label,
                            attempt + 1,
                            self.config.retries + 1
                        ),
                    );
                    // Dead connections prune on the next checkout; a
                    // timed-out one stays — its other in-flight requests
                    // are unaffected.
                }
            }
        }
        // Every attempt was shed: surface the Overloaded error so the
        // router can redirect to a less-loaded replica.
        last_shed
    }

    /// Wire-level liveness probe: a ping round trip (single attempt, no
    /// retries — the router will simply skip the node and try again later).
    pub fn probe(&self) -> bool {
        let up = matches!(
            self.roundtrip(&Request::Ping),
            Ok((Response::Pong { .. }, _, _))
        );
        self.set_health(up);
        up
    }
}

/// Response variant label for "unexpected answer" diagnostics.
fn variant_name(r: &Response) -> &'static str {
    match r {
        Response::Pong { .. } => "pong",
        Response::Result(_) => "query result",
        Response::Names(_) => "name list",
        Response::Batch(_) => "batch",
        Response::Redirect { .. } => "shard redirect",
        Response::ShardMap(_) => "shard map",
        Response::Error(_) => "error",
    }
}

/// Exponential backoff with jitter: `base * 2^(attempt-1)` capped at
/// `backoff_max`, plus up to 50% pseudo-random jitter to decorrelate
/// concurrent retriers.
fn backoff(config: &NetConfig, attempt: u32) -> Duration {
    let step = config
        .backoff_base
        .saturating_mul(1u32 << (attempt - 1).min(16))
        .min(config.backoff_max);
    let jitter_cap = (step.as_micros() as u64 / 2).max(1);
    step + Duration::from_micros(pseudo_random() % jitter_cap)
}

/// Dependency-free pseudo-randomness for jitter: hash a counter through
/// `RandomState` (seeded per-process by the OS).
fn pseudo_random() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;
    static STATE: OnceLock<std::collections::hash_map::RandomState> = OnceLock::new();
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut h = STATE
        .get_or_init(std::collections::hash_map::RandomState::new)
        .build_hasher();
    h.write_u64(SEQ.fetch_add(1, Ordering::Relaxed));
    h.finish()
}

impl DmNode for NetDm {
    fn node_id(&self) -> String {
        self.label.clone()
    }

    fn execute_query(&self, q: &Query) -> DmResult<QueryResult> {
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(CLIENT_SCOPE, q) {
                return Ok(hit);
            }
        }
        // Snapshot before the exchange so the entry's TTL covers the whole
        // round trip rather than starting after it.
        let deps = self.cache.as_ref().map(|c| c.snapshot(q));
        let span = hedc_obs::Span::child("net.rpc.client");
        let start = Instant::now();
        let outcome = self.exchange(&Request::Query(q.clone()));
        hedc_obs::global()
            .histogram("net.rpc.client")
            .record_us(start.elapsed().as_micros() as u64);
        drop(span);
        match outcome {
            Some(Response::Result(r)) => {
                self.set_health(true);
                if let (Some(cache), Some(deps)) = (&self.cache, deps) {
                    cache.fill(CLIENT_SCOPE, q, &r, deps);
                }
                Ok(r)
            }
            Some(Response::Error(e)) => {
                // The node answered: it is up, even if this request failed.
                self.set_health(!matches!(e.kind, crate::proto::WireErrorKind::Unavailable));
                Err(e.into_dm(&self.label))
            }
            Some(other) => Err(DmError::RemoteFailed(format!(
                "{}: unexpected {} in answer to a query",
                self.label,
                variant_name(&other)
            ))),
            None => {
                self.set_health(false);
                hedc_obs::global().counter("net.client.unavailable").inc();
                if let Some(cache) = &self.cache {
                    if let Some(stale) = cache.get_stale(CLIENT_SCOPE, q) {
                        hedc_obs::emit(
                            hedc_obs::events::kind::CACHE_DEGRADED,
                            format!("{} unreachable, serving stale cached result", self.label),
                        );
                        return Ok(stale);
                    }
                }
                Err(DmError::RemoteUnavailable(format!(
                    "{} ({})",
                    self.label, self.addr
                )))
            }
        }
    }

    /// All queries in **one frame**: cached entries are answered locally,
    /// the misses cross the wire as a single [`Request::Batch`], and the
    /// answers are stitched back positionally. A transport failure degrades
    /// per entry — stale cache where available, `RemoteUnavailable`
    /// otherwise — exactly like the single-query path.
    fn execute_batch(&self, qs: &[Query]) -> Vec<DmResult<QueryResult>> {
        if qs.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<Option<DmResult<QueryResult>>> = (0..qs.len()).map(|_| None).collect();
        let mut miss: Vec<usize> = Vec::new();
        for (i, q) in qs.iter().enumerate() {
            if let Some(cache) = &self.cache {
                if let Some(hit) = cache.get(CLIENT_SCOPE, q) {
                    out[i] = Some(Ok(hit));
                    continue;
                }
            }
            miss.push(i);
        }
        if miss.is_empty() {
            return out.into_iter().map(|r| r.unwrap()).collect();
        }
        // Snapshot dependencies for every miss before the exchange, per the
        // pre-read snapshot rule.
        let mut deps: Vec<_> = miss
            .iter()
            .map(|&i| self.cache.as_ref().map(|c| c.snapshot(&qs[i])))
            .collect();
        let entries: Vec<Request> = miss
            .iter()
            .map(|&i| Request::Query(qs[i].clone()))
            .collect();
        let span = hedc_obs::Span::child("net.rpc.client");
        let start = Instant::now();
        let outcome = self.exchange(&Request::Batch(entries));
        hedc_obs::global()
            .histogram("net.rpc.client")
            .record_us(start.elapsed().as_micros() as u64);
        drop(span);
        match outcome {
            Some(Response::Batch(responses)) => {
                self.set_health(true);
                let mut responses = responses.into_iter();
                for (k, &i) in miss.iter().enumerate() {
                    out[i] = Some(match responses.next() {
                        Some(Response::Result(r)) => {
                            if let (Some(cache), Some(Some(dep))) =
                                (&self.cache, deps.get_mut(k).map(Option::take))
                            {
                                cache.fill(CLIENT_SCOPE, &qs[i], &r, dep);
                            }
                            Ok(r)
                        }
                        Some(Response::Error(e)) => Err(e.into_dm(&self.label)),
                        Some(other) => Err(DmError::RemoteFailed(format!(
                            "{}: unexpected {} in batch answer",
                            self.label,
                            variant_name(&other)
                        ))),
                        None => Err(DmError::RemoteFailed(format!(
                            "{}: batch response truncated",
                            self.label
                        ))),
                    });
                }
            }
            Some(Response::Error(e)) => {
                self.set_health(!matches!(e.kind, crate::proto::WireErrorKind::Unavailable));
                let shared = e.into_dm(&self.label);
                for &i in &miss {
                    out[i] = Some(Err(shared.clone()));
                }
            }
            Some(other) => {
                let err = DmError::RemoteFailed(format!(
                    "{}: unexpected {} in answer to a batch",
                    self.label,
                    variant_name(&other)
                ));
                for &i in &miss {
                    out[i] = Some(Err(err.clone()));
                }
            }
            None => {
                self.set_health(false);
                hedc_obs::global().counter("net.client.unavailable").inc();
                let mut served_stale = false;
                for &i in &miss {
                    out[i] = Some(
                        match self
                            .cache
                            .as_ref()
                            .and_then(|c| c.get_stale(CLIENT_SCOPE, &qs[i]))
                        {
                            Some(stale) => {
                                served_stale = true;
                                Ok(stale)
                            }
                            None => Err(DmError::RemoteUnavailable(format!(
                                "{} ({})",
                                self.label, self.addr
                            ))),
                        },
                    );
                }
                if served_stale {
                    hedc_obs::emit(
                        hedc_obs::events::kind::CACHE_DEGRADED,
                        format!(
                            "{} unreachable, serving stale cached batch entries",
                            self.label
                        ),
                    );
                }
            }
        }
        out.into_iter().map(|r| r.unwrap()).collect()
    }

    fn resolve_names(&self, item_id: i64, want: NameType) -> DmResult<Vec<ResolvedName>> {
        let span = hedc_obs::Span::child("net.rpc.client");
        let start = Instant::now();
        let outcome = self.exchange(&Request::Resolve {
            item_id,
            name_type: want,
        });
        hedc_obs::global()
            .histogram("net.rpc.client")
            .record_us(start.elapsed().as_micros() as u64);
        drop(span);
        match outcome {
            Some(Response::Names(names)) => {
                self.set_health(true);
                Ok(names)
            }
            Some(Response::Error(e)) => {
                self.set_health(!matches!(e.kind, crate::proto::WireErrorKind::Unavailable));
                Err(e.into_dm(&self.label))
            }
            Some(other) => Err(DmError::RemoteFailed(format!(
                "{}: unexpected {} in answer to a resolve",
                self.label,
                variant_name(&other)
            ))),
            None => {
                self.set_health(false);
                hedc_obs::global().counter("net.client.unavailable").inc();
                Err(DmError::RemoteUnavailable(format!(
                    "{} ({})",
                    self.label, self.addr
                )))
            }
        }
    }

    /// The whole name-mapping batch in one round trip: N `Resolve` entries
    /// in one [`Request::Batch`] frame; the server recognises the
    /// homogeneous shape and runs its batched (two-IN-list-query) resolver.
    /// A transport failure marks **every** entry `RemoteUnavailable` so the
    /// router fails the chunk over wholesale.
    fn resolve_batch(&self, item_ids: &[i64], want: NameType) -> Vec<DmResult<Vec<ResolvedName>>> {
        if item_ids.is_empty() {
            return Vec::new();
        }
        let entries: Vec<Request> = item_ids
            .iter()
            .map(|&item_id| Request::Resolve {
                item_id,
                name_type: want,
            })
            .collect();
        let span = hedc_obs::Span::child("net.rpc.client");
        let start = Instant::now();
        let outcome = self.exchange(&Request::Batch(entries));
        hedc_obs::global()
            .histogram("net.rpc.client")
            .record_us(start.elapsed().as_micros() as u64);
        drop(span);
        match outcome {
            Some(Response::Batch(responses)) => {
                self.set_health(true);
                let mut out: Vec<DmResult<Vec<ResolvedName>>> = responses
                    .into_iter()
                    .take(item_ids.len())
                    .map(|r| match r {
                        Response::Names(names) => Ok(names),
                        Response::Error(e) => Err(e.into_dm(&self.label)),
                        other => Err(DmError::RemoteFailed(format!(
                            "{}: unexpected {} in batch answer",
                            self.label,
                            variant_name(&other)
                        ))),
                    })
                    .collect();
                while out.len() < item_ids.len() {
                    out.push(Err(DmError::RemoteFailed(format!(
                        "{}: batch response truncated",
                        self.label
                    ))));
                }
                out
            }
            Some(Response::Error(e)) => {
                self.set_health(!matches!(e.kind, crate::proto::WireErrorKind::Unavailable));
                let shared = e.into_dm(&self.label);
                item_ids.iter().map(|_| Err(shared.clone())).collect()
            }
            Some(other) => {
                let err = DmError::RemoteFailed(format!(
                    "{}: unexpected {} in answer to a batch",
                    self.label,
                    variant_name(&other)
                ));
                item_ids.iter().map(|_| Err(err.clone())).collect()
            }
            None => {
                self.set_health(false);
                hedc_obs::global().counter("net.client.unavailable").inc();
                item_ids
                    .iter()
                    .map(|_| {
                        Err(DmError::RemoteUnavailable(format!(
                            "{} ({})",
                            self.label, self.addr
                        )))
                    })
                    .collect()
            }
        }
    }

    fn is_available(&self) -> bool {
        {
            let h = self.health.lock().unwrap();
            if let Some(checked) = h.checked {
                if checked.elapsed() < self.config.health_ttl {
                    return h.available;
                }
            }
        }
        self.probe()
    }
}
