//! `MuxClient`: one multiplexed connection to a DM server.
//!
//! Many requests ride one socket concurrently: each submission picks a
//! fresh request id, writes its frame under a short write lock, and parks
//! on a per-request slot. A single reader thread demultiplexes response
//! frames by the echoed request id and wakes the matching waiter —
//! out-of-order completion on the wire never reorders any caller's view,
//! because every caller only ever sees its own slot.
//!
//! The handle is cheap to share (`Arc` internally via [`NetDm`]'s pool);
//! a hard transport error fails *all* in-flight requests at once and marks
//! the connection dead so the pool retires it, while a per-request timeout
//! leaves the connection healthy — the response, if it ever lands, is
//! discarded by id.

use crate::frame::{write_frame, Frame, FrameBuffer, FrameKind};
use crate::proto::{decode, encode, Request, Response};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a pending slot holds.
enum SlotState {
    /// Submitted; the reader has not delivered an answer yet.
    Waiting,
    /// The reader delivered the response frame.
    Ready(Frame),
    /// The transport died before an answer arrived.
    Failed(io::ErrorKind),
}

/// Reader-to-waiter rendezvous, keyed by request id.
struct Slots {
    pending: Mutex<HashMap<u64, SlotState>>,
    cv: Condvar,
}

/// One multiplexed connection.
pub struct MuxClient {
    addr: SocketAddr,
    writer: Mutex<TcpStream>,
    slots: Arc<Slots>,
    next_id: AtomicU64,
    dead: Arc<AtomicBool>,
    reader: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl MuxClient {
    /// Connect and start the demultiplexing reader thread.
    pub fn connect(addr: SocketAddr, connect_timeout: Duration) -> io::Result<MuxClient> {
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
        stream.set_nodelay(true)?;
        // The reader blocks in read(); a generous read timeout lets it
        // notice `dead` (set on drop/teardown) without busy-polling.
        stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        let reader_stream = stream.try_clone()?;
        let slots = Arc::new(Slots {
            pending: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        });
        let dead = Arc::new(AtomicBool::new(false));
        let reader = {
            let slots = Arc::clone(&slots);
            let dead = Arc::clone(&dead);
            std::thread::Builder::new()
                .name(format!("dm-net-mux-{}", addr.port()))
                .spawn(move || reader_loop(reader_stream, slots, dead))
                .map_err(|e| io::Error::other(e.to_string()))?
        };
        Ok(MuxClient {
            addr,
            writer: Mutex::new(stream),
            slots,
            next_id: AtomicU64::new(1),
            dead,
            reader: Mutex::new(Some(reader)),
        })
    }

    /// The server address this connection points at.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a hard transport error (or teardown) retired this
    /// connection; submissions fail fast and the pool should drop it.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Submit one request; returns a handle to wait on. `trace`/`span` ride
    /// the frame header for cross-node trace propagation.
    pub fn submit(&self, request: &Request, trace_id: u64, span_id: u64) -> io::Result<Pending> {
        if self.is_dead() {
            return Err(io::ErrorKind::NotConnected.into());
        }
        let payload = encode(request)?;
        let req_id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let frame = Frame {
            kind: FrameKind::Request,
            trace_id,
            span_id,
            req_id,
            payload,
        };
        let sent = frame.wire_len();
        // Register the slot *before* writing: the response can land before
        // the submitting thread runs again.
        self.slots
            .pending
            .lock()
            .unwrap()
            .insert(req_id, SlotState::Waiting);
        let write = {
            let mut stream = self.writer.lock().unwrap();
            write_frame(&mut *stream, &frame)
        };
        if let Err(e) = write {
            self.slots.pending.lock().unwrap().remove(&req_id);
            self.fail_all(e.kind());
            return Err(e);
        }
        Ok(Pending {
            slots: Arc::clone(&self.slots),
            req_id,
            sent,
        })
    }

    /// Fail every in-flight request and mark the connection dead.
    fn fail_all(&self, kind: io::ErrorKind) {
        self.dead.store(true, Ordering::SeqCst);
        let mut pending = self.slots.pending.lock().unwrap();
        for state in pending.values_mut() {
            if matches!(state, SlotState::Waiting) {
                *state = SlotState::Failed(kind);
            }
        }
        drop(pending);
        self.slots.cv.notify_all();
    }
}

impl Drop for MuxClient {
    fn drop(&mut self) {
        self.dead.store(true, Ordering::SeqCst);
        // Severing the socket pops the reader out of its blocking read.
        if let Ok(stream) = self.writer.lock() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.reader.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

/// A submitted request awaiting its response.
pub struct Pending {
    slots: Arc<Slots>,
    req_id: u64,
    sent: usize,
}

impl Pending {
    /// Bytes written for the request frame (header + payload).
    pub fn bytes_sent(&self) -> usize {
        self.sent
    }

    /// Block until the response lands, the transport dies, or `timeout`
    /// passes. The slot is always cleaned up: a timed-out response arriving
    /// later is discarded by the reader.
    pub fn wait(self, timeout: Duration) -> io::Result<(Response, usize)> {
        let deadline = Instant::now() + timeout;
        let mut pending = self.slots.pending.lock().unwrap();
        loop {
            match pending.get(&self.req_id) {
                Some(SlotState::Waiting) => {}
                Some(SlotState::Ready(_)) => {
                    let Some(SlotState::Ready(frame)) = pending.remove(&self.req_id) else {
                        unreachable!("slot state checked above");
                    };
                    drop(pending);
                    let received = frame.wire_len();
                    let response: Response = decode(&frame.payload)?;
                    return Ok((response, received));
                }
                Some(SlotState::Failed(kind)) => {
                    let kind = *kind;
                    pending.remove(&self.req_id);
                    return Err(kind.into());
                }
                None => return Err(io::ErrorKind::NotConnected.into()),
            }
            let now = Instant::now();
            if now >= deadline {
                pending.remove(&self.req_id);
                return Err(io::ErrorKind::TimedOut.into());
            }
            let (guard, _t) = self.slots.cv.wait_timeout(pending, deadline - now).unwrap();
            pending = guard;
        }
    }
}

/// Demultiplexing reader: route each response frame to its slot by request
/// id; unknown ids (timed-out waiters) are dropped on the floor. Frames are
/// assembled incrementally through a [`FrameBuffer`], so a read timeout
/// landing mid-frame never loses bytes or breaks stream sync.
fn reader_loop(mut stream: TcpStream, slots: Arc<Slots>, dead: Arc<AtomicBool>) {
    use std::io::Read;
    let mut fb = FrameBuffer::new();
    let mut tmp = vec![0u8; 64 * 1024];
    'read: loop {
        if dead.load(Ordering::SeqCst) {
            break;
        }
        let kind = match stream.read(&mut tmp) {
            Ok(0) => Some(io::ErrorKind::ConnectionReset), // peer hung up
            Ok(n) => {
                fb.extend(&tmp[..n]);
                None
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // idle tick; re-check teardown
            }
            Err(e) => Some(e.kind()),
        };
        if let Some(kind) = kind {
            // Hard transport error: fail everything in flight.
            fail_pending(&slots, &dead, kind);
            break;
        }
        loop {
            let frame = match fb.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(_) => {
                    // Corrupt stream: framing is unrecoverable.
                    fail_pending(&slots, &dead, io::ErrorKind::InvalidData);
                    break 'read;
                }
            };
            if frame.kind != FrameKind::Response {
                fail_pending(&slots, &dead, io::ErrorKind::InvalidData);
                break 'read;
            }
            let mut pending = slots.pending.lock().unwrap();
            if let Some(state @ SlotState::Waiting) = pending.get_mut(&frame.req_id) {
                *state = SlotState::Ready(frame);
                drop(pending);
                slots.cv.notify_all();
            }
            // else: the waiter gave up (timeout) — discard.
        }
    }
}

/// Mark the connection dead and fail every waiting slot with `kind`.
fn fail_pending(slots: &Slots, dead: &AtomicBool, kind: io::ErrorKind) {
    dead.store(true, Ordering::SeqCst);
    let mut pending = slots.pending.lock().unwrap();
    for state in pending.values_mut() {
        if matches!(state, SlotState::Waiting) {
            *state = SlotState::Failed(kind);
        }
    }
    drop(pending);
    slots.cv.notify_all();
}
