//! Connection-churn chaos: 64 clients connecting, pipelining, vanishing
//! mid-flight, and reconnecting — under a seeded schedule.
//!
//! The invariant under test is response integrity during churn: every
//! request a client *waits on* gets exactly the response class it asked
//! for (no lost responses, no cross-wired request ids), even while other
//! connections are being torn down with requests still in flight. The
//! schedule is driven by SplitMix64 from a printed seed, so a failure
//! replays exactly with `scripts/check.sh --seed <printed seed>` (which
//! exports `HEDC_TEST_SEED`).

use hedc_dm::splitmix64;
use hedc_metadb::{Expr, Query};
use hedc_net::proto::{Request, Response, WireErrorKind};
use hedc_net::{DmServer, MuxClient, ServerConfig};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 64;
const ROUNDS: usize = 6;

fn dm_node() -> Arc<hedc_dm::Dm> {
    let fs = hedc_filestore::FileStore::new();
    fs.register(hedc_filestore::Archive::in_memory(
        1,
        "raw",
        hedc_filestore::ArchiveTier::OnlineDisk,
        1 << 30,
    ));
    hedc_dm::Dm::bootstrap(Arc::new(fs), hedc_dm::DmConfig::default()).unwrap()
}

fn base_seed() -> u64 {
    std::env::var("HEDC_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_C0DE)
}

/// Three request classes with mutually distinguishable responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// `Ping` → `Pong`.
    Ping,
    /// A valid catalog browse → `Result` with rows.
    Browse,
    /// A query against a table that does not exist → `Error(Rejected)`;
    /// the error must come back on *this* request's id, not poison a
    /// neighbour.
    BadTable,
}

impl Kind {
    fn draw(state: &mut u64) -> Kind {
        match splitmix64(state) % 3 {
            0 => Kind::Ping,
            1 => Kind::Browse,
            _ => Kind::BadTable,
        }
    }

    fn request(self) -> Request {
        match self {
            Kind::Ping => Request::Ping,
            Kind::Browse => {
                Request::Query(Query::table("catalog").filter(Expr::eq("public", true)))
            }
            Kind::BadTable => Request::Query(Query::table("no_such_table")),
        }
    }

    /// Does `response` match this request class? `Overloaded` sheds are
    /// legitimate under churn load and count as correctly-correlated too —
    /// what must never happen is a *different class's* answer arriving.
    fn matches(self, response: &Response) -> bool {
        if let Response::Error(e) = response {
            if e.kind == WireErrorKind::Overloaded {
                return true;
            }
        }
        match self {
            Kind::Ping => matches!(response, Response::Pong { .. }),
            Kind::Browse => matches!(response, Response::Result(_)),
            Kind::BadTable => {
                matches!(response, Response::Error(e) if e.kind == WireErrorKind::Rejected)
            }
        }
    }
}

/// One client's lifetime: rounds of connect → pipeline a burst → either
/// wait for every response or abandon the connection mid-flight.
/// Returns `(waited, matched)` counts.
fn churn_client(addr: SocketAddr, mut state: u64) -> (u64, u64) {
    let mut waited = 0u64;
    let mut matched = 0u64;
    for _round in 0..ROUNDS {
        let client = match MuxClient::connect(addr, Duration::from_millis(500)) {
            Ok(c) => c,
            // Transient accept pressure under 64-way churn: try next round.
            Err(_) => continue,
        };
        let burst = 1 + (splitmix64(&mut state) % 12) as usize;
        let abandon = splitmix64(&mut state) % 4 == 0;
        let mut pending = Vec::with_capacity(burst);
        for _ in 0..burst {
            let kind = Kind::draw(&mut state);
            match client.submit(&kind.request(), 0, 0) {
                Ok(p) => pending.push((kind, p)),
                // The connection died (e.g. server-side sever during a
                // previous abandon's RST storm); nothing was waited on.
                Err(_) => break,
            }
        }
        if abandon {
            // Vanish with requests in flight: dropping the client shuts
            // the socket down, so responses for these ids arrive at a dead
            // connection and must be discarded by the server's shard
            // without affecting any other connection.
            drop(pending);
            drop(client);
            continue;
        }
        for (kind, p) in pending {
            waited += 1;
            match p.wait(Duration::from_secs(5)) {
                Ok((response, _)) => {
                    assert!(
                        kind.matches(&response),
                        "cross-wired response: {kind:?} got {response:?} (seed {})",
                        base_seed()
                    );
                    matched += 1;
                }
                Err(e) => panic!("lost response for {kind:?}: {e} (seed {})", base_seed()),
            }
        }
    }
    (waited, matched)
}

#[test]
fn churning_64_clients_lose_and_duplicate_nothing() {
    let seed = base_seed();
    println!("churn seed {seed} (replay: scripts/check.sh --seed {seed})");

    let server =
        DmServer::bind("127.0.0.1:0", dm_node(), ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();

    let mut root = seed;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let client_seed = splitmix64(&mut root);
            std::thread::spawn(move || churn_client(addr, client_seed))
        })
        .collect();

    let mut waited = 0u64;
    let mut matched = 0u64;
    for h in handles {
        let (w, m) = h.join().expect("client thread panicked");
        waited += w;
        matched += m;
    }
    // Every waited-on request produced exactly one correctly-classed
    // response; the panics inside churn_client catch losses/cross-wiring,
    // this catches the accounting.
    assert_eq!(waited, matched, "seed {seed}");
    // The churn actually exercised the server: with 64 clients × 6 rounds
    // and 3/4 of bursts waited on, thousands of requests is typical; even
    // a hostile seed cannot get below a few hundred.
    assert!(
        waited >= 200,
        "schedule degenerated: only {waited} waited requests (seed {seed})"
    );

    // The server survives the storm: a fresh client still gets answers.
    let probe = MuxClient::connect(addr, Duration::from_millis(500)).expect("post-churn connect");
    let pending = probe
        .submit(&Request::Ping, 0, 0)
        .expect("post-churn submit");
    let (response, _) = pending
        .wait(Duration::from_secs(2))
        .expect("post-churn pong");
    assert!(matches!(response, Response::Pong { .. }), "{response:?}");
    drop(server);
}
