//! Cluster integration: real sockets under the DM router.
//!
//! Boots multiple `DmServer`s on loopback, routes browse queries through a
//! `DmRouter` over `NetDm` clients, kills a server mid-run, and checks that
//! every request completes via failover — with the observability span tree
//! staying connected across the wire.
//!
//! The failure-path tests inject faults through [`FaultyDmNode`] with a
//! seeded plan and print that seed, so any flake replays exactly with
//! `scripts/check.sh --seed <printed seed>` (which exports
//! `HEDC_TEST_SEED`).

use hedc_cache::CacheConfig;
use hedc_dm::{Dm, DmConfig, DmError, DmNode, DmRouter, FaultPlan, FaultyDmNode, NameType};
use hedc_filestore::{Archive, ArchiveTier, FileStore};
use hedc_metadb::{Expr, Query};
use hedc_net::{DmServer, NetConfig, NetDm, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn dm_node() -> Arc<Dm> {
    let fs = FileStore::new();
    fs.register(Archive::in_memory(
        1,
        "raw",
        ArchiveTier::OnlineDisk,
        1 << 30,
    ));
    fs.register(Archive::in_memory(
        2,
        "derived",
        ArchiveTier::OnlineRaid,
        1 << 30,
    ));
    Dm::bootstrap(Arc::new(fs), DmConfig::default()).unwrap()
}

fn boot(label: &str) -> (DmServer, Arc<NetDm>) {
    let server =
        DmServer::bind("127.0.0.1:0", dm_node(), ServerConfig::default()).expect("bind loopback");
    let client = Arc::new(NetDm::connect(server.local_addr(), label, fast_config()));
    (server, client)
}

/// Test-friendly deadlines: fail fast, retry fast.
fn fast_config() -> NetConfig {
    NetConfig {
        connect_timeout: Duration::from_millis(200),
        request_timeout: Duration::from_secs(2),
        retries: 2,
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(20),
        health_ttl: Duration::from_millis(50),
        ..NetConfig::default()
    }
}

fn browse_query() -> Query {
    Query::table("catalog").filter(Expr::eq("public", true))
}

#[test]
fn query_roundtrip_over_loopback() {
    let (_server, client) = boot("rt-node");
    let r = client.execute_query(&browse_query()).unwrap();
    // Dm::bootstrap creates the standard + extended catalogs.
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.stats.rows_returned, 2);
    assert!(client.is_available());
}

#[test]
fn remote_query_errors_do_not_look_like_outages() {
    let (_server, client) = boot("err-node");
    let err = client.execute_query(&Query::table("nope")).unwrap_err();
    assert!(matches!(err, DmError::BadQuery(_)), "{err:?}");
    // The node answered; it must still count as available.
    assert!(client.is_available());
}

#[test]
fn dead_server_is_unavailable_and_probe_recovers() {
    let (mut server, client) = boot("probe-node");
    assert!(client.is_available());
    server.shutdown();
    // Health verdict is cached for health_ttl; wait it out, then probe.
    std::thread::sleep(Duration::from_millis(60));
    assert!(!client.is_available());
    let err = client.execute_query(&browse_query()).unwrap_err();
    assert!(matches!(err, DmError::RemoteUnavailable(_)), "{err:?}");
}

#[test]
fn client_and_server_spans_share_one_trace() {
    let (_server, client) = boot("trace-node");
    let root = hedc_obs::Span::root("test.browse");
    let trace_id = root.context().trace_id;
    let root_span_id = root.context().span_id;
    client.execute_query(&browse_query()).unwrap();
    drop(root);

    let spans = hedc_obs::span_store().spans_for(trace_id);
    let client_span = spans
        .iter()
        .find(|s| s.name == "net.rpc.client")
        .expect("client-side rpc span in trace");
    let server_span = spans
        .iter()
        .find(|s| s.name == "net.rpc.server")
        .expect("server-side rpc span in trace");
    // Connected tree: root -> net.rpc.client -> net.rpc.server, one trace.
    assert_eq!(client_span.trace_id, server_span.trace_id);
    assert_eq!(client_span.parent_id, root_span_id);
    assert_eq!(server_span.parent_id, client_span.span_id);
    // Query execution inside the server joins the same trace too.
    assert!(
        spans.iter().any(|s| s.name.starts_with("metadb.")),
        "expected a metadb span under the server span: {spans:?}"
    );
}

/// The acceptance scenario: ≥2 nodes, concurrent browse traffic through the
/// router, one server flaky from the start and killed mid-run — every
/// request must still complete.
///
/// Node A's flakiness is injected by a seeded [`FaultyDmNode`] *behind* the
/// wire, so the router sees real serialized `RemoteUnavailable` errors and
/// must redirect. The fault sequence is a pure function of the printed
/// seed: a failing run replays with `scripts/check.sh --seed <seed>`.
#[test]
fn failover_completes_every_request_when_a_node_dies_mid_run() {
    // Node A drops ~15% of requests and drags out another ~5% even before
    // it is killed. Only unavailability is injected — RemoteFailed means
    // "the node is up, the query is bad" and is deliberately not failed
    // over by the router.
    let faulty_a = Arc::new(FaultyDmNode::new(
        dm_node(),
        "srv-a",
        FaultPlan::seeded(0xC0FFEE)
            .unavailable(150)
            .slow(50, Duration::from_millis(2)),
    ));
    println!(
        "fault seed {} (replay: scripts/check.sh --seed {})",
        faulty_a.seed(),
        faulty_a.seed()
    );
    let mut server_a = DmServer::bind(
        "127.0.0.1:0",
        faulty_a.clone() as Arc<dyn DmNode>,
        ServerConfig::default(),
    )
    .expect("bind loopback");
    let client_a = Arc::new(NetDm::connect(
        server_a.local_addr(),
        "net-a",
        fast_config(),
    ));
    let (_server_b, client_b) = boot("net-b");
    let router = Arc::new(DmRouter::new(vec![
        client_a.clone() as Arc<dyn DmNode>,
        client_b.clone() as Arc<dyn DmNode>,
    ]));

    const THREADS: usize = 4;
    const REQUESTS_PER_THREAD: usize = 40;
    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let router = Arc::clone(&router);
            std::thread::spawn(move || {
                let mut completed = 0usize;
                for _ in 0..REQUESTS_PER_THREAD {
                    let root = hedc_obs::Span::root("test.failover");
                    let r = router.execute_query(&browse_query());
                    drop(root);
                    let r = r.expect("request must complete via failover");
                    assert_eq!(r.rows.len(), 2);
                    completed += 1;
                }
                completed
            })
        })
        .collect();

    // Kill node A once traffic is in flight.
    std::thread::sleep(Duration::from_millis(30));
    server_a.shutdown();

    let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(total, THREADS * REQUESTS_PER_THREAD, "no request lost");

    // After the kill the surviving node carried the load.
    assert!(client_b.is_available());
    std::thread::sleep(Duration::from_millis(60)); // let the health TTL lapse
    assert!(!client_a.is_available());

    // The outage is visible in the event log: reconnect attempts and the
    // router's redirect past the dead node.
    let events = hedc_obs::event_log().events();
    assert!(
        events.iter().any(|e| {
            e.kind == hedc_obs::events::kind::NET_RECONNECT && e.detail.contains("net-a")
        }),
        "expected a net_reconnect event for net-a"
    );
    // The injector really exercised node A before the kill (if this fires,
    // replay the printed seed to see the exact fault sequence).
    let counts = faulty_a.counts();
    assert!(
        counts.passed + counts.unavailable + counts.slow > 0,
        "node A never saw traffic: {counts:?}"
    );
}

/// Tentpole degraded mode at the network tier: a client whose cache is warm
/// keeps answering browse queries after its backend dies, and says so in
/// the event log.
#[test]
fn warm_client_cache_survives_backend_outage_read_only() {
    let (mut server, _) = boot("warm-node");
    let client =
        NetDm::connect(server.local_addr(), "warm-node", fast_config()).with_cache(&CacheConfig {
            ttl: Some(Duration::from_secs(3600)),
            ..CacheConfig::default()
        });

    let q = browse_query();
    let cold = client.execute_query(&q).expect("cold query over the wire");
    assert_eq!(cold.rows.len(), 2);
    // Warm repeat: served client-side, no wire round trip.
    let warm = client.execute_query(&q).expect("warm query from cache");
    assert_eq!(warm.rows, cold.rows);

    server.shutdown();
    std::thread::sleep(Duration::from_millis(60)); // let the health TTL lapse

    // A fresh hit still answers without noticing the outage.
    assert_eq!(client.execute_query(&q).unwrap().rows, cold.rows);

    // Even once the entry is invalidated, the dead wire downgrades the
    // miss to a stale serve instead of an error: degraded read-only mode.
    let cache = client.cache().expect("cache enabled");
    cache.bump("catalog");
    let degraded = client
        .execute_query(&q)
        .expect("stale serve during the outage");
    assert_eq!(degraded.rows, cold.rows);
    assert!(cache.stats().stale_serves >= 1, "{:?}", cache.stats());
    let events = hedc_obs::event_log().events();
    assert!(
        events.iter().any(|e| {
            e.kind == hedc_obs::events::kind::CACHE_DEGRADED && e.detail.contains("warm-node")
        }),
        "expected a cache_degraded event for warm-node"
    );

    // Writes-through-the-wire stay impossible: a query the cache has never
    // seen is an honest outage.
    let miss = client.execute_query(&Query::table("hle")).unwrap_err();
    assert!(matches!(miss, DmError::RemoteUnavailable(_)), "{miss:?}");
}

/// A bootstrapped DM carrying `n` items with attached file names, plus the
/// item ids.
fn dm_with_items(n: usize) -> (Arc<Dm>, Vec<i64>) {
    let dm = dm_node();
    let names = dm.names();
    let items: Vec<i64> = (0..n)
        .map(|i| {
            let item = names.new_item().unwrap();
            names
                .attach(
                    item,
                    NameType::File,
                    1,
                    &format!("raw/obs{i}.fits"),
                    128,
                    None,
                    "data",
                )
                .unwrap();
            item
        })
        .collect();
    (dm, items)
}

/// Satellite (d), net tier: per-entry fault injection *inside* one
/// `Request::Batch` frame fails only the affected entries. The injector
/// sits behind the wire, so each entry's outcome crosses back as its own
/// positional response; its draw tally also proves the whole batch crossed
/// the wire exactly once (no client-side retry amplification).
#[test]
fn batch_over_the_wire_isolates_injected_per_entry_faults() {
    let (dm, items) = dm_with_items(32);
    let expected: Vec<_> = items
        .iter()
        .map(|&id| dm.names().resolve(id, NameType::File).unwrap())
        .collect();

    let faulty = Arc::new(FaultyDmNode::new(
        dm,
        "wire-faults",
        FaultPlan::seeded(5).unavailable(250),
    ));
    println!(
        "fault seed {} (replay: scripts/check.sh --seed {})",
        faulty.seed(),
        faulty.seed()
    );
    let server = DmServer::bind(
        "127.0.0.1:0",
        faulty.clone() as Arc<dyn DmNode>,
        ServerConfig::default(),
    )
    .expect("bind loopback");
    let client = NetDm::connect(server.local_addr(), "wire-faults", fast_config());

    let got = client.resolve_batch(&items, NameType::File);
    assert_eq!(got.len(), items.len(), "one response per entry, in order");
    let (mut ok, mut failed) = (0usize, 0usize);
    for ((r, want), item) in got.iter().zip(&expected).zip(&items) {
        match r {
            Ok(names) => {
                assert_eq!(names, want, "item {item} answered wrong");
                ok += 1;
            }
            Err(DmError::RemoteUnavailable(_)) => failed += 1,
            other => panic!("item {item}: unexpected outcome {other:?}"),
        }
    }
    assert!(
        ok > 0 && failed > 0,
        "seeded plan should split the batch: ok={ok} failed={failed}"
    );
    // Exactly one fault draw per entry: the batch crossed the wire once,
    // and a failed entry never poisoned (or re-ran) its neighbours.
    let counts = faulty.counts();
    assert_eq!(counts.passed as usize, ok);
    assert_eq!(counts.unavailable as usize, failed);
}

/// Several queries in one frame: positional answers with per-entry error
/// isolation — a rejected entry does not poison the rest of the batch.
#[test]
fn query_batch_isolates_a_rejected_entry() {
    let (_server, client) = boot("qbatch-node");
    let qs = vec![
        browse_query(),
        Query::table("nope"),
        Query::table("catalog"),
    ];
    let got = client.execute_batch(&qs);
    assert_eq!(got.len(), 3);
    assert_eq!(got[0].as_ref().unwrap().rows.len(), 2);
    assert!(matches!(&got[1], Err(DmError::BadQuery(_))), "{:?}", got[1]);
    assert_eq!(got[2].as_ref().unwrap().rows.len(), 2);
}

#[test]
fn resolve_roundtrip_matches_local_resolution() {
    let (dm, items) = dm_with_items(3);
    let server = DmServer::bind(
        "127.0.0.1:0",
        dm.clone() as Arc<dyn DmNode>,
        ServerConfig::default(),
    )
    .expect("bind loopback");
    let client = NetDm::connect(server.local_addr(), "resolve-node", fast_config());
    for &item in &items {
        let local = dm.names().resolve(item, NameType::File).unwrap();
        let remote = client.resolve_names(item, NameType::File).unwrap();
        assert_eq!(remote, local);
    }
}

#[test]
fn rpc_metrics_are_recorded() {
    let (_server, client) = boot("metrics-node");
    for _ in 0..5 {
        client.execute_query(&browse_query()).unwrap();
    }
    let snap = hedc_obs::global().snapshot();
    let client_rpc = snap
        .histogram("net.rpc.client")
        .expect("client rpc histogram");
    assert!(client_rpc.count >= 5);
    let server_rpc = snap
        .histogram("net.rpc.server")
        .expect("server rpc histogram");
    assert!(server_rpc.count >= 5);
    for counter in [
        "net.client.bytes_out",
        "net.client.bytes_in",
        "net.server.bytes_in",
        "net.server.bytes_out",
        "net.server.requests",
    ] {
        let value = snap
            .counters
            .iter()
            .find(|(n, _)| n == counter)
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(value > 0, "counter {counter} should be non-zero");
    }
}
