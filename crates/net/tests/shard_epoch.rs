//! Epoch-handshake churn: 64 clients browse a 2-shard cluster while the
//! shard map is repeatedly republished under them.
//!
//! The protocol contract under test: a client holding a stale map never
//! gets a wrong or empty answer — it gets [`Response::Redirect`], refetches
//! the map with [`Request::FetchShardMap`], and retries; the retried
//! request returns exactly the row it asked for. The churn reassigns a
//! partition no client queries, so every redirect in this test is purely
//! an epoch-staleness signal — data placement for the probed keys never
//! changes, which is what makes "retry must succeed with the same answer"
//! assertable.
//!
//! Seeded: the per-client schedules derive from a printed seed
//! (`HEDC_TEST_SEED` overrides; replay with `scripts/check.sh --seed`).

use hedc_dm::{
    schema, splitmix64, Clock, DmIo, DmNode, DmResult, IoConfig, Partitioning, ShardMap,
    ShardMapHandle,
};
use hedc_metadb::{Database, Expr, Query, QueryResult, Value};
use hedc_net::proto::{Request, Response, WireErrorKind};
use hedc_net::{DmServer, MuxClient, ServerConfig, ShardIdentity};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const CLIENTS: usize = 64;
const ROUNDS: usize = 8;
/// The range partition the churn thread flips between shards; its key
/// interval (`id >= 2000`) holds no rows and is never queried.
const CHURN_PART: u32 = 2;
const BASE_SEED: u64 = 0x5AAD_E70C;

fn effective_seed() -> u64 {
    std::env::var("HEDC_TEST_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(BASE_SEED)
}

/// `id < 1000` → shard 0, `1000 ≤ id < 2000` → shard 1, `id ≥ 2000` →
/// the churn partition (initially shard 0, flipped throughout the test).
fn cluster_map() -> ShardMap {
    ShardMap::new(2).with_range("hle", "id", vec![1000, 2000], vec![0, 1, 0])
}

fn store(label: &str) -> Arc<DmIo> {
    let db = Database::in_memory(label);
    {
        let mut conn = db.connect();
        schema::create_generic(&mut conn).unwrap();
        schema::create_domain(&mut conn).unwrap();
    }
    Arc::new(DmIo::new(
        vec![db],
        Partitioning::single(),
        Arc::new(hedc_filestore::FileStore::new()),
        Clock::starting_at(0),
        &IoConfig::default(),
    ))
}

struct LocalNode {
    io: Arc<DmIo>,
    label: String,
}

impl DmNode for LocalNode {
    fn node_id(&self) -> String {
        self.label.clone()
    }
    fn execute_query(&self, q: &Query) -> DmResult<QueryResult> {
        self.io.query(q)
    }
}

/// The payload a probe for `id` must come back with.
fn photons_for(id: i64) -> i64 {
    (id * 13) % 997
}

fn hle_row(id: i64) -> Vec<Value> {
    vec![
        Value::Int(id),
        Value::Int(1),
        Value::Int(id % 16),
        Value::Timestamp(id),
        Value::Timestamp(id + 5),
        Value::Float(3.0),
        Value::Float(20_000.0),
        Value::Text("flare".into()),
        Value::Null,
        Value::Float((id % 11) as f64),
        Value::Null,
        Value::Int(photons_for(id)),
        Value::Int(1),
        Value::Int(1),
        Value::Bool(true),
        Value::Null,
        Value::Null,
        Value::Timestamp(id),
        Value::Text("user".into()),
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Int(0),
        Value::Bool(false),
    ]
}

struct Cluster {
    servers: Vec<DmServer>,
    addrs: Vec<SocketAddr>,
    handle: Arc<ShardMapHandle>,
    /// Ids with rows, spread over both stable partitions.
    ids: Vec<i64>,
}

fn cluster() -> Cluster {
    let map = cluster_map();
    let handle = ShardMapHandle::new(map.clone());
    let mut ids = Vec::new();
    let stores = [store("epoch-0"), store("epoch-1")];
    for base in [0i64, 1000] {
        for off in 0..60 {
            let id = base + off * 7;
            let owner = map.shard_for("hle", id).unwrap() as usize;
            stores[owner].insert("hle", hle_row(id)).unwrap();
            ids.push(id);
        }
    }
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for (s, io) in stores.into_iter().enumerate() {
        let node: Arc<dyn DmNode> = Arc::new(LocalNode {
            io,
            label: format!("epoch-{s}"),
        });
        let server = DmServer::bind_sharded(
            "127.0.0.1:0",
            node,
            ServerConfig::default(),
            ShardIdentity {
                shard: s as u32,
                map: Arc::clone(&handle),
            },
        )
        .expect("bind loopback");
        addrs.push(server.local_addr());
        servers.push(server);
    }
    Cluster {
        servers,
        addrs,
        handle,
        ids,
    }
}

fn probe(id: i64) -> Query {
    Query::table("hle")
        .select(&["id", "n_photons"])
        .filter(Expr::eq("id", id))
}

fn rpc(client: &MuxClient, request: &Request) -> Response {
    let pending = client.submit(request, 0, 0).expect("submit");
    let (response, _) = pending.wait(Duration::from_secs(5)).expect("response");
    response
}

/// Fetch the live map from any server.
fn fetch_map(client: &MuxClient) -> ShardMap {
    match rpc(client, &Request::FetchShardMap) {
        Response::ShardMap(m) => m,
        other => panic!("FetchShardMap answered {other:?}"),
    }
}

/// One cluster-aware client: routes by its local map snapshot, and on
/// [`Response::Redirect`] refetches the map and retries. Returns the
/// number of redirects absorbed.
fn query_with_retry(
    clients: &[MuxClient],
    map: &mut ShardMap,
    id: i64,
    seed: u64,
) -> (QueryResult, u64) {
    let mut redirects = 0;
    for _attempt in 0..40 {
        let shard = map.shard_for("hle", id).expect("hle is sharded") as usize;
        let request = Request::Sharded {
            shard: shard as u32,
            epoch: map.epoch,
            inner: Box::new(Request::Query(probe(id))),
        };
        match rpc(&clients[shard], &request) {
            Response::Result(r) => return (r, redirects),
            Response::Redirect { .. } => {
                redirects += 1;
                *map = fetch_map(&clients[shard]);
            }
            other => panic!("probe for id {id} answered {other:?} (seed {seed})"),
        }
    }
    panic!("id {id}: still redirected after 40 map refetches (seed {seed})");
}

#[test]
fn pong_carries_the_live_epoch() {
    let c = cluster();
    let client = MuxClient::connect(c.addrs[0], Duration::from_millis(500)).unwrap();
    match rpc(&client, &Request::Ping) {
        Response::Pong { node_id, epoch } => {
            assert_eq!(node_id, "epoch-0");
            assert_eq!(epoch, c.handle.epoch());
        }
        other => panic!("{other:?}"),
    }
    let next = c.handle.current().reassign("hle", CHURN_PART, 1);
    assert!(c.handle.install(next));
    match rpc(&client, &Request::Ping) {
        Response::Pong { epoch, .. } => assert_eq!(
            epoch,
            c.handle.epoch(),
            "a republished map must show up in the very next pong"
        ),
        other => panic!("{other:?}"),
    }
    drop(c.servers);
}

#[test]
fn stale_epoch_redirects_and_a_refetched_map_succeeds() {
    let c = cluster();
    let client = MuxClient::connect(c.addrs[0], Duration::from_millis(500)).unwrap();
    // Bump the epoch behind the client's back.
    assert!(c
        .handle
        .install(c.handle.current().reassign("hle", CHURN_PART, 1)));
    let live = c.handle.epoch();

    let stale = Request::Sharded {
        shard: 0,
        epoch: live - 1,
        inner: Box::new(Request::Query(probe(c.ids[0]))),
    };
    match rpc(&client, &stale) {
        Response::Redirect { shard, epoch } => {
            assert_eq!(shard, 0, "the redirect names the serving shard");
            assert_eq!(epoch, live, "the redirect carries the live epoch");
        }
        other => panic!("stale envelope answered {other:?}"),
    }

    // Refetch → retry: the exact row, not a miss.
    let mut map = fetch_map(&client);
    assert_eq!(map.epoch, live);
    let clients = vec![
        client,
        MuxClient::connect(c.addrs[1], Duration::from_millis(500)).unwrap(),
    ];
    let (result, redirects) = query_with_retry(&clients, &mut map, c.ids[0], 0);
    assert_eq!(redirects, 0, "a fresh map needs no retry");
    assert_eq!(result.rows.len(), 1);
    assert_eq!(result.rows[0][0], Value::Int(c.ids[0]));
    drop(c.servers);
}

#[test]
fn wrong_shard_envelope_is_redirected_not_answered() {
    let c = cluster();
    let client = MuxClient::connect(c.addrs[0], Duration::from_millis(500)).unwrap();
    // Right epoch, wrong shard: shard 0's server must not answer a query
    // addressed to shard 1, even though it could produce *some* rows.
    let wrong = Request::Sharded {
        shard: 1,
        epoch: c.handle.epoch(),
        inner: Box::new(Request::Query(probe(c.ids[0]))),
    };
    match rpc(&client, &wrong) {
        Response::Redirect { shard, epoch } => {
            assert_eq!(shard, 0);
            assert_eq!(epoch, c.handle.epoch());
        }
        other => panic!("wrong-shard envelope answered {other:?}"),
    }
    drop(c.servers);
}

#[test]
fn nested_envelopes_are_rejected_as_malformed() {
    let c = cluster();
    let client = MuxClient::connect(c.addrs[0], Duration::from_millis(500)).unwrap();
    let nested = Request::Sharded {
        shard: 0,
        epoch: c.handle.epoch(),
        inner: Box::new(Request::Sharded {
            shard: 0,
            epoch: c.handle.epoch(),
            inner: Box::new(Request::Ping),
        }),
    };
    match rpc(&client, &nested) {
        Response::Error(e) => assert_eq!(e.kind, WireErrorKind::Failed, "{e:?}"),
        other => panic!("nested envelope answered {other:?}"),
    }
    drop(c.servers);
}

#[test]
fn churning_epochs_under_64_clients_never_lose_a_row() {
    let seed = effective_seed();
    println!("shard_epoch seed={seed} (replay: scripts/check.sh --seed {seed})");
    let c = cluster();
    let addrs = c.addrs.clone();
    let ids = Arc::new(c.ids.clone());
    let total_redirects = Arc::new(AtomicU64::new(0));

    // Two-phase start: every client snapshots the initial map, then the
    // churn thread republishes before any of them issue a query — so each
    // client's first probe is *guaranteed* stale and must take the
    // redirect → refetch → retry path.
    let fetched = Arc::new(Barrier::new(CLIENTS + 1));
    let churned = Arc::new(Barrier::new(CLIENTS + 1));
    let stop = Arc::new(AtomicBool::new(false));

    let mut root = seed;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let mut state = splitmix64(&mut root);
            let addrs = addrs.clone();
            let ids = Arc::clone(&ids);
            let fetched = Arc::clone(&fetched);
            let churned = Arc::clone(&churned);
            let total_redirects = Arc::clone(&total_redirects);
            std::thread::spawn(move || {
                let clients: Vec<MuxClient> = addrs
                    .iter()
                    .map(|a| MuxClient::connect(*a, Duration::from_secs(2)).expect("connect"))
                    .collect();
                let mut map = fetch_map(&clients[0]);
                fetched.wait();
                churned.wait();
                let mut got = 0u64;
                for _ in 0..ROUNDS {
                    let id = ids[(splitmix64(&mut state) % ids.len() as u64) as usize];
                    let (result, redirects) = query_with_retry(&clients, &mut map, id, seed);
                    total_redirects.fetch_add(redirects, Ordering::Relaxed);
                    assert_eq!(result.rows.len(), 1, "id {id} (seed {seed})");
                    assert_eq!(result.rows[0][0], Value::Int(id), "seed {seed}");
                    assert_eq!(
                        result.rows[0][1],
                        Value::Int(photons_for(id)),
                        "id {id} came back with the wrong payload (seed {seed})"
                    );
                    got += 1;
                }
                got
            })
        })
        .collect();

    fetched.wait();
    // Republish once while every client still holds the epoch-1 snapshot.
    assert!(c
        .handle
        .install(c.handle.current().reassign("hle", CHURN_PART, 1)));
    churned.wait();

    // Keep republishing while the clients run: flip the unqueried
    // partition back and forth, bumping the epoch each time.
    let handle = Arc::clone(&c.handle);
    let stop_flag = Arc::clone(&stop);
    let churner = std::thread::spawn(move || {
        let mut flips = 0u64;
        while !stop_flag.load(Ordering::Relaxed) {
            let cur = handle.current();
            let to = 1 - cur.assignment("hle", CHURN_PART).unwrap();
            assert!(handle.install(cur.reassign("hle", CHURN_PART, to)));
            flips += 1;
            std::thread::sleep(Duration::from_millis(5));
        }
        flips
    });

    let mut answered = 0u64;
    for h in handles {
        answered += h.join().expect("client thread panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let flips = churner.join().unwrap();

    assert_eq!(
        answered,
        (CLIENTS * ROUNDS) as u64,
        "every probe must land despite the churn (seed {seed})"
    );
    let redirects = total_redirects.load(Ordering::Relaxed);
    assert!(
        redirects >= CLIENTS as u64,
        "each client's first probe was provably stale, yet only {redirects} \
         redirects were absorbed (seed {seed})"
    );
    assert!(flips >= 1, "the churner must have republished");
    println!(
        "shard_epoch: {answered} probes, {redirects} redirects absorbed, \
         {flips} republishes (seed {seed})"
    );
    drop(c.servers);
}
