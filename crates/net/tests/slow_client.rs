//! Slow-loris torture: hostile clients that dribble bytes or stall
//! mid-payload must not pin workers or degrade well-behaved clients.
//!
//! The event-driven server owns sockets in reader shards, so an unfinished
//! frame never reaches a worker — the shard's read deadline severs the
//! connection instead. These tests run attackers and a legitimate client
//! side by side and assert both halves of the contract: the attacker is
//! disconnected, and the legitimate client's latency stays bounded.

use hedc_net::frame::{encode_frame, read_frame, write_frame, Frame, FrameKind};
use hedc_net::proto::{decode, encode, Request, Response};
use hedc_net::{AdmissionConfig, DmServer, ServerConfig};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn dm_node() -> Arc<hedc_dm::Dm> {
    let fs = hedc_filestore::FileStore::new();
    fs.register(hedc_filestore::Archive::in_memory(
        1,
        "raw",
        hedc_filestore::ArchiveTier::OnlineDisk,
        1 << 30,
    ));
    hedc_dm::Dm::bootstrap(Arc::new(fs), hedc_dm::DmConfig::default()).unwrap()
}

/// A tight read deadline so the tests finish quickly; two workers so a pair
/// of pinned connections would visibly starve the legitimate client.
fn loris_server() -> DmServer {
    let config = ServerConfig {
        admission: AdmissionConfig {
            workers: 2,
            read_deadline: Duration::from_millis(250),
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    };
    DmServer::bind("127.0.0.1:0", dm_node(), config).expect("bind loopback")
}

fn counter(name: &str) -> u64 {
    hedc_obs::global().counter(name).get()
}

/// Block until the server closes `stream` (read returns EOF or a reset),
/// or fail after `patience`.
fn assert_severed(mut stream: TcpStream, patience: Duration) {
    stream
        .set_read_timeout(Some(patience))
        .expect("set read timeout");
    let mut buf = [0u8; 256];
    let start = Instant::now();
    loop {
        match stream.read(&mut buf) {
            // EOF: the server shut the socket down. Reset counts too.
            Ok(0) => return,
            Err(e) if e.kind() == ErrorKind::ConnectionReset => return,
            // A shed response may be in flight; drain and keep waiting.
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                panic!("server never severed the stalled connection");
            }
            Err(e) => panic!("unexpected read error while waiting for close: {e}"),
        }
        assert!(
            start.elapsed() < patience,
            "server never severed the stalled connection"
        );
    }
}

/// One synchronous ping over a fresh blocking socket, returning its RTT.
fn timed_ping(addr: std::net::SocketAddr) -> Duration {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let frame = Frame {
        kind: FrameKind::Request,
        trace_id: 0,
        span_id: 0,
        req_id: 1,
        payload: encode(&Request::Ping).unwrap(),
    };
    write_frame(&mut stream, &frame).expect("write ping");
    let reply = read_frame(&mut stream).expect("read pong");
    let response: Response = decode(&reply.payload).expect("decode pong");
    assert!(matches!(response, Response::Pong { .. }), "{response:?}");
    start.elapsed()
}

/// A client that stalls forever in the middle of a request payload must be
/// disconnected by the read deadline — and because the unfinished frame
/// never reaches the worker pool, concurrent well-behaved clients keep
/// their sub-deadline latency even with as many stalled connections as
/// there are workers.
#[test]
fn mid_payload_staller_is_severed_without_pinning_workers() {
    let server = loris_server();
    let addr = server.local_addr();
    let kills_before = counter("net.server.read_deadline_kills");

    // Two attackers (== worker count): each sends a valid header plus half
    // the promised payload, then goes silent.
    let attackers: Vec<TcpStream> = (0..2)
        .map(|i| {
            let mut stream = TcpStream::connect(addr).expect("attacker connect");
            stream.set_nodelay(true).ok();
            let frame = Frame {
                kind: FrameKind::Request,
                trace_id: 0,
                span_id: 0,
                req_id: 100 + i,
                payload: encode(&Request::Ping).unwrap(),
            };
            let bytes = encode_frame(&frame).unwrap();
            let half = bytes.len() - 4;
            stream.write_all(&bytes[..half]).expect("partial write");
            stream.flush().ok();
            stream
        })
        .collect();

    // Meanwhile a legitimate client keeps pinging. With the attackers
    // holding no workers, every ping completes fast.
    let mut latencies: Vec<Duration> = (0..40).map(|_| timed_ping(addr)).collect();
    latencies.sort();
    let p99 = latencies[latencies.len() * 99 / 100];
    assert!(
        p99 < Duration::from_millis(500),
        "legitimate p99 degraded alongside stalled clients: {p99:?} (all: {latencies:?})"
    );

    // The read deadline reaps both attackers.
    for stream in attackers {
        assert_severed(stream, Duration::from_secs(5));
    }
    assert!(
        counter("net.server.read_deadline_kills") >= kills_before + 2,
        "expected read-deadline kills to be counted"
    );
    drop(server);
}

/// Dribbling one byte at a time is still a loris: progress on the wire
/// does not reset the frame deadline. A frame must *complete* within the
/// read deadline or the connection is severed.
#[test]
fn byte_dribbler_is_severed_by_the_frame_deadline() {
    let server = loris_server();
    let addr = server.local_addr();
    let kills_before = counter("net.server.read_deadline_kills");

    let frame = Frame {
        kind: FrameKind::Request,
        trace_id: 0,
        span_id: 0,
        req_id: 7,
        payload: encode(&Request::Ping).unwrap(),
    };
    let bytes = encode_frame(&frame).unwrap();

    let mut stream = TcpStream::connect(addr).expect("dribbler connect");
    stream.set_nodelay(true).ok();
    let start = Instant::now();
    let mut severed_while_writing = false;
    // 25 ms per byte: the ~60-byte frame would take ~1.5 s, far past the
    // 250 ms deadline, while each write still "makes progress".
    for b in bytes.iter() {
        if let Err(e) = stream.write_all(std::slice::from_ref(b)) {
            // The server hung up mid-dribble: exactly what we want. On
            // loopback the error often surfaces as a broken pipe or reset.
            assert!(
                matches!(
                    e.kind(),
                    ErrorKind::BrokenPipe
                        | ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                ),
                "unexpected write error: {e}"
            );
            severed_while_writing = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
        if start.elapsed() > Duration::from_secs(4) {
            break;
        }
    }
    if !severed_while_writing {
        assert_severed(stream, Duration::from_secs(5));
    }
    assert!(
        counter("net.server.read_deadline_kills") > kills_before,
        "expected the dribbler to be reaped by the read deadline"
    );

    // The server is unharmed: fresh clients still get answers.
    assert!(timed_ping(addr) < Duration::from_secs(1));
    drop(server);
}
