//! Trace propagation through `Request::Batch` frames, per-entry server
//! spans (error paths included), and the structured slow-request event.

use hedc_dm::{Dm, DmConfig, DmNode, NameType};
use hedc_filestore::{Archive, ArchiveTier, FileStore};
use hedc_metadb::{Expr, Query};
use hedc_net::{DmServer, NetConfig, NetDm, ServerConfig};
use hedc_obs::FinishedSpan;
use std::sync::Arc;
use std::time::Duration;

fn dm_node() -> Arc<Dm> {
    let fs = FileStore::new();
    fs.register(Archive::in_memory(
        1,
        "raw",
        ArchiveTier::OnlineDisk,
        1 << 30,
    ));
    fs.register(Archive::in_memory(
        2,
        "derived",
        ArchiveTier::OnlineRaid,
        1 << 30,
    ));
    Dm::bootstrap(Arc::new(fs), DmConfig::default()).unwrap()
}

fn boot(label: &str, config: ServerConfig) -> (DmServer, Arc<NetDm>) {
    let server = DmServer::bind("127.0.0.1:0", dm_node(), config).expect("bind loopback");
    let client = Arc::new(NetDm::connect(
        server.local_addr(),
        label,
        NetConfig::default(),
    ));
    (server, client)
}

fn by_name<'a>(spans: &'a [FinishedSpan], name: &str) -> Vec<&'a FinishedSpan> {
    spans.iter().filter(|s| s.name == name).collect()
}

/// A mixed batch (queries, one of which fails) must stay one trace across
/// the wire: root -> net.rpc.client -> net.rpc.server -> one
/// net.rpc.server.entry per batch member, with the failing entry getting a
/// span just like the successful ones.
#[test]
fn batch_entries_join_the_callers_trace_including_errors() {
    let (mut server, client) = boot("trace-batch", ServerConfig::default());

    let root = hedc_obs::Span::root("test.batch_trace");
    let trace_id = root.context().trace_id;
    let root_span_id = root.context().span_id;
    let queries = [
        Query::table("catalog").filter(Expr::eq("public", true)),
        Query::table("no_such_table"),
        Query::table("catalog"),
    ];
    let results = client.execute_batch(&queries);
    drop(root);
    server.shutdown();

    assert_eq!(results.len(), 3);
    assert!(results[0].is_ok(), "{:?}", results[0]);
    assert!(results[1].is_err(), "bad table must fail its entry");
    assert!(results[2].is_ok(), "{:?}", results[2]);

    let spans = hedc_obs::span_store().spans_for(trace_id);
    let client_spans = by_name(&spans, "net.rpc.client");
    assert_eq!(client_spans.len(), 1, "one wire frame for the whole batch");
    assert_eq!(client_spans[0].parent_id, root_span_id);

    let server_spans = by_name(&spans, "net.rpc.server");
    assert_eq!(server_spans.len(), 1);
    assert_eq!(
        server_spans[0].parent_id, client_spans[0].span_id,
        "server span must be a child of the client RPC span"
    );

    let entries = by_name(&spans, "net.rpc.server.entry");
    assert_eq!(
        entries.len(),
        3,
        "every batch member gets a span, error entries included: {spans:?}"
    );
    for entry in &entries {
        assert_eq!(entry.parent_id, server_spans[0].span_id);
    }
}

/// A homogeneous resolve batch takes the batched name-mapping path, and its
/// dedicated span joins the caller's trace.
#[test]
fn homogeneous_resolve_batch_traces_the_batched_path() {
    let (mut server, client) = boot("trace-resolve", ServerConfig::default());

    let root = hedc_obs::Span::root("test.resolve_trace");
    let trace_id = root.context().trace_id;
    let results = client.resolve_batch(&[901, 902, 903], NameType::File);
    drop(root);
    server.shutdown();

    assert_eq!(results.len(), 3);
    let spans = hedc_obs::span_store().spans_for(trace_id);
    let batched = by_name(&spans, "net.rpc.server.resolve_batch");
    assert_eq!(batched.len(), 1, "{spans:?}");
    let server_spans = by_name(&spans, "net.rpc.server");
    assert_eq!(batched[0].parent_id, server_spans[0].span_id);
    assert!(
        by_name(&spans, "net.rpc.server.entry").is_empty(),
        "the batched path must not also mint per-entry spans"
    );
}

/// With a zero slow-request threshold every request is slow: the server
/// must emit a structured `slow_request` event carrying the caller's trace
/// ID, the request label, and the peer address.
#[test]
fn slow_requests_emit_structured_event_with_trace_and_peer() {
    let config = ServerConfig {
        slow_request: Duration::ZERO,
        ..ServerConfig::default()
    };
    let (mut server, client) = boot("trace-slow", config);

    let root = hedc_obs::Span::root("test.slow_request");
    let trace_id = root.context().trace_id;
    client
        .execute_query(&Query::table("catalog"))
        .expect("query");
    drop(root);
    server.shutdown();

    let events: Vec<_> = hedc_obs::event_log()
        .events_of_kind(hedc_obs::kind::SLOW_REQUEST)
        .into_iter()
        .filter(|e| e.trace_id == trace_id)
        .collect();
    assert_eq!(events.len(), 1, "exactly one slow-request for one query");
    let detail = &events[0].detail;
    assert!(detail.contains("request=query"), "{detail}");
    assert!(detail.contains("peer=127.0.0.1"), "{detail}");
    assert!(detail.contains("elapsed_us="), "{detail}");
}
