//! Multiplexing properties, checked over seeded random schedules.
//!
//! `hedc-net` carries a dev-dependency-free property harness: SplitMix64
//! generates the schedules and `HEDC_TEST_SEED` replays them (via
//! `scripts/check.sh --seed`), which keeps the test deterministic where a
//! shrinking framework would not be.
//!
//! Properties, per randomized case on one long-lived [`MuxClient`]:
//!
//! 1. **Correlation** — every response matches the class of the request
//!    that carried its frame id, no matter how many requests are in
//!    flight or in which order the server completes them.
//! 2. **Isolation** — a failing `Batch` entry produces an error at *its*
//!    position only; sibling entries in the same frame still succeed.
//! 3. **Stream view** — waiting on pending requests in an arbitrary
//!    (shuffled) order always yields each request's own answer: the
//!    client's view is keyed by request id, never by arrival order.

use hedc_dm::splitmix64;
use hedc_metadb::{Expr, Query};
use hedc_net::proto::{Request, Response, WireErrorKind};
use hedc_net::{DmServer, MuxClient, Pending, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

const CASES: usize = 24;
const MAX_BURST: usize = 20;

fn dm_node() -> Arc<hedc_dm::Dm> {
    let fs = hedc_filestore::FileStore::new();
    fs.register(hedc_filestore::Archive::in_memory(
        1,
        "raw",
        hedc_filestore::ArchiveTier::OnlineDisk,
        1 << 30,
    ));
    hedc_dm::Dm::bootstrap(Arc::new(fs), hedc_dm::DmConfig::default()).unwrap()
}

fn base_seed() -> u64 {
    std::env::var("HEDC_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x00D1_5EED)
}

/// Request classes whose responses are mutually distinguishable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Ping,
    Browse,
    BadTable,
}

impl Kind {
    fn draw(state: &mut u64) -> Kind {
        match splitmix64(state) % 3 {
            0 => Kind::Ping,
            1 => Kind::Browse,
            _ => Kind::BadTable,
        }
    }

    fn request(self) -> Request {
        match self {
            Kind::Ping => Request::Ping,
            Kind::Browse => {
                Request::Query(Query::table("catalog").filter(Expr::eq("public", true)))
            }
            Kind::BadTable => Request::Query(Query::table("no_such_table")),
        }
    }

    fn check(self, response: &Response, seed: u64) {
        match self {
            Kind::Ping => {
                assert!(
                    matches!(response, Response::Pong { .. }),
                    "seed {seed}: {response:?}"
                )
            }
            Kind::Browse => match response {
                Response::Result(r) => assert_eq!(r.rows.len(), 2, "seed {seed}"),
                other => panic!("seed {seed}: browse answered with {other:?}"),
            },
            Kind::BadTable => match response {
                Response::Error(e) => {
                    assert_eq!(e.kind, WireErrorKind::Rejected, "seed {seed}: {e:?}")
                }
                other => panic!("seed {seed}: bad table answered with {other:?}"),
            },
        }
    }
}

/// What one pipelined slot expects back.
#[derive(Debug)]
enum Expected {
    One(Kind),
    /// A batch frame: positionally-matched per-entry expectations.
    Batch(Vec<Kind>),
}

impl Expected {
    fn draw(state: &mut u64) -> Expected {
        // 1 in 4 slots is a batch of 2..=6 entries (batches do not nest).
        if splitmix64(state) % 4 == 0 {
            let n = 2 + (splitmix64(state) % 5) as usize;
            Expected::Batch((0..n).map(|_| Kind::draw(state)).collect())
        } else {
            Expected::One(Kind::draw(state))
        }
    }

    fn request(&self) -> Request {
        match self {
            Expected::One(kind) => kind.request(),
            Expected::Batch(kinds) => Request::Batch(kinds.iter().map(|k| k.request()).collect()),
        }
    }

    fn check(&self, response: &Response, seed: u64) {
        match self {
            Expected::One(kind) => kind.check(response, seed),
            Expected::Batch(kinds) => match response {
                Response::Batch(entries) => {
                    assert_eq!(entries.len(), kinds.len(), "seed {seed}: batch arity");
                    // Per-entry isolation: each position carries its own
                    // verdict; a BadTable entry must not poison siblings.
                    for (kind, entry) in kinds.iter().zip(entries) {
                        kind.check(entry, seed);
                    }
                }
                other => panic!("seed {seed}: batch answered with {other:?}"),
            },
        }
    }
}

/// Seeded Fisher–Yates: the order the test *waits* in, decoupled from the
/// order requests were submitted and from server completion order.
fn shuffle<T>(items: &mut Vec<T>, state: &mut u64) {
    for i in (1..items.len()).rev() {
        let j = (splitmix64(state) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[test]
fn interleaved_pipelined_requests_demultiplex_by_request_id() {
    let seed = base_seed();
    println!("mux seed {seed} (replay: scripts/check.sh --seed {seed})");

    let server =
        DmServer::bind("127.0.0.1:0", dm_node(), ServerConfig::default()).expect("bind loopback");
    let client =
        MuxClient::connect(server.local_addr(), Duration::from_millis(500)).expect("connect");

    let mut state = seed;
    for case in 0..CASES {
        let burst = 1 + (splitmix64(&mut state) % MAX_BURST as u64) as usize;
        let mut pending: Vec<(Expected, Pending)> = Vec::with_capacity(burst);
        for _ in 0..burst {
            let expected = Expected::draw(&mut state);
            let p = client
                .submit(&expected.request(), 0, 0)
                .unwrap_or_else(|e| panic!("seed {seed} case {case}: submit failed: {e}"));
            pending.push((expected, p));
        }
        // Consume out of submission order: correlation must come from the
        // frame's request id, not from queue position.
        shuffle(&mut pending, &mut state);
        for (expected, p) in pending {
            let (response, _) = p
                .wait(Duration::from_secs(5))
                .unwrap_or_else(|e| panic!("seed {seed} case {case}: lost response: {e}"));
            expected.check(&response, seed);
        }
        assert!(
            !client.is_dead(),
            "seed {seed} case {case}: connection died"
        );
    }
    drop(client);
    drop(server);
}
