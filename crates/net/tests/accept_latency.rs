//! Accept-path latency regression guard.
//!
//! The first server iteration polled `accept()` with a 5 ms sleep, adding
//! up to 5 ms before a fresh connection was even seen — invisible in
//! throughput benchmarks, dominant in connect-then-one-query workloads.
//! The acceptor now blocks in `accept()` and reader shards are woken on
//! registration, so a fresh connection's first request answers in
//! microseconds. This test pins that down: the *median* fresh-connect
//! ping RTT on an idle loopback server must beat 1 ms. (The median is the
//! right statistic — a sleep-poll acceptor centres it near half the poll
//! interval, where a min would occasionally sneak under the bar and a max
//! is hostage to scheduler noise.)

use hedc_net::frame::{read_frame, write_frame, Frame, FrameKind};
use hedc_net::proto::{decode, encode, Request, Response};
use hedc_net::{DmServer, ServerConfig};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn dm_node() -> Arc<hedc_dm::Dm> {
    let fs = hedc_filestore::FileStore::new();
    fs.register(hedc_filestore::Archive::in_memory(
        1,
        "raw",
        hedc_filestore::ArchiveTier::OnlineDisk,
        1 << 30,
    ));
    hedc_dm::Dm::bootstrap(Arc::new(fs), hedc_dm::DmConfig::default()).unwrap()
}

#[test]
fn idle_accept_to_first_response_median_is_under_a_millisecond() {
    let server =
        DmServer::bind("127.0.0.1:0", dm_node(), ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();

    let trials = 100;
    let mut rtts: Vec<Duration> = (0..trials)
        .map(|i| {
            let start = Instant::now();
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            let frame = Frame {
                kind: FrameKind::Request,
                trace_id: 0,
                span_id: 0,
                req_id: i + 1,
                payload: encode(&Request::Ping).unwrap(),
            };
            write_frame(&mut stream, &frame).expect("write ping");
            let reply = read_frame(&mut stream).expect("read pong");
            let elapsed = start.elapsed();
            let response: Response = decode(&reply.payload).expect("decode pong");
            assert!(matches!(response, Response::Pong { .. }), "{response:?}");
            elapsed
        })
        .collect();

    rtts.sort();
    let median = rtts[trials as usize / 2];
    assert!(
        median < Duration::from_millis(1),
        "idle accept→first-response median regressed to {median:?} \
         (p90 {:?}, max {:?}) — did a sleep-poll sneak back into the accept \
         or registration path?",
        rtts[trials as usize * 9 / 10],
        rtts[trials as usize - 1],
    );
    drop(server);
}
