//! The StreamCorder fat client (§6.2).
//!
//! "The StreamCorder is a fat Java client offering the same functionality
//! as the HEDC Web-interface, plus additional features." Two cache
//! strategies are implemented, exactly as the paper describes:
//!
//! * **V1** — a file cache whose layout is *computed from fixed object
//!   attributes* ("a unique but static file system path for each
//!   data-object. As this path is based on fixed object attributes, such as
//!   type and creation date, the cache structure is predetermined").
//! * **V2** — V1 plus "a local DBMS installation for dynamic object
//!   references and meta data caching ... every installation of the
//!   StreamCorder is, in fact, a clone of the HEDC server": the client
//!   bootstraps its own domain schema, mirrors metadata tuples, and places
//!   objects exactly the way the server's DM does.
//!
//! Progressive analysis (§6.3) downloads wavelet-view *prefixes*: the
//! transfer meter shows approximation saving bytes, and the cache shows
//! repeat visits saving transfers.

use hedc_dm::{Dm, DmConfig, DmError, DmResult, NameType, Session};
use hedc_filestore::{Archive, ArchiveTier, FileStore};
use hedc_metadb::{Expr, Query, Value};
use hedc_wavelet::PartitionedView;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStrategy {
    /// Static-path file cache (first version).
    V1StaticPath,
    /// Local DM + DBMS clone (second version).
    V2LocalClone,
}

/// Transfer accounting.
#[derive(Debug, Default)]
pub struct TransferMeter {
    /// Bytes fetched from the server.
    pub downloaded: AtomicU64,
    /// Bytes served from the local cache.
    pub cache_hits_bytes: AtomicU64,
    /// Object-level cache hits.
    pub hits: AtomicU64,
    /// Object-level cache misses.
    pub misses: AtomicU64,
}

impl TransferMeter {
    /// Snapshot (downloaded, cached bytes, hits, misses).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.downloaded.load(Ordering::Relaxed),
            self.cache_hits_bytes.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// The fat client.
pub struct StreamCorder {
    /// The server this client talks to.
    server: Arc<Dm>,
    session: Arc<Session>,
    strategy: CacheStrategy,
    /// V1: object-key → cached bytes under a deterministic path.
    file_cache: Mutex<HashMap<String, Vec<u8>>>,
    /// V2: the local server clone.
    local: Option<Arc<Dm>>,
    /// Transfer accounting.
    pub meter: TransferMeter,
}

impl StreamCorder {
    /// Connect a StreamCorder to a server with a session.
    pub fn connect(
        server: Arc<Dm>,
        session: Arc<Session>,
        strategy: CacheStrategy,
    ) -> DmResult<Self> {
        let local = if strategy == CacheStrategy::V2LocalClone {
            // "Every installation of the StreamCorder is, in fact, a clone
            // of the HEDC server": same schema, own archives.
            let files = Arc::new(FileStore::new());
            files.register(Archive::in_memory(
                1,
                "local-cache",
                ArchiveTier::OnlineDisk,
                1 << 32,
            ));
            Some(Dm::bootstrap(files, DmConfig::default())?)
        } else {
            None
        };
        Ok(StreamCorder {
            server,
            session,
            strategy,
            file_cache: Mutex::new(HashMap::new()),
            local,
            meter: TransferMeter::default(),
        })
    }

    /// The static V1 cache path for an object: derived from fixed
    /// attributes only (type + item id), never from server-side location.
    pub fn static_cache_path(object_type: &str, item_id: i64) -> String {
        format!("cache/{object_type}/{:03}/{item_id}.obj", item_id % 512)
    }

    /// The active strategy.
    pub fn strategy(&self) -> CacheStrategy {
        self.strategy
    }

    /// Fetch an item's primary data file, through the cache.
    pub fn fetch_object(&self, object_type: &str, item_id: i64) -> DmResult<Vec<u8>> {
        match self.strategy {
            CacheStrategy::V1StaticPath => {
                let key = Self::static_cache_path(object_type, item_id);
                if let Some(data) = self.file_cache.lock().get(&key) {
                    self.meter.hits.fetch_add(1, Ordering::Relaxed);
                    self.meter
                        .cache_hits_bytes
                        .fetch_add(data.len() as u64, Ordering::Relaxed);
                    return Ok(data.clone());
                }
                self.meter.misses.fetch_add(1, Ordering::Relaxed);
                let data = self.download(item_id)?;
                self.file_cache.lock().insert(key, data.clone());
                Ok(data)
            }
            CacheStrategy::V2LocalClone => {
                let local = self.local.as_ref().expect("v2 has a local clone");
                // Local DM lookup: is the object already placed locally?
                let names = local.names();
                let local_entry = local.io.query(&Query::table("loc_entry").filter(Expr::eq(
                    "path",
                    Self::static_cache_path(object_type, item_id),
                )))?;
                if let Some(row) = local_entry.rows.first() {
                    let local_item = row[1].as_int().expect("item");
                    let data = names.fetch_data(local_item)?;
                    self.meter.hits.fetch_add(1, Ordering::Relaxed);
                    self.meter
                        .cache_hits_bytes
                        .fetch_add(data.len() as u64, Ordering::Relaxed);
                    return Ok(data);
                }
                self.meter.misses.fetch_add(1, Ordering::Relaxed);
                let data = self.download(item_id)?;
                // Place it exactly the way the server DM places files:
                // archive store + item + location entry.
                let path = Self::static_cache_path(object_type, item_id);
                local.io.files.store(1, &path, &data)?;
                let local_item = names.new_item()?;
                names.attach(
                    local_item,
                    NameType::File,
                    1,
                    &path,
                    data.len() as u64,
                    Some(hedc_filestore::checksum(&data)),
                    "data",
                )?;
                Ok(data)
            }
        }
    }

    fn download(&self, item_id: i64) -> DmResult<Vec<u8>> {
        let data = self.server.names().fetch_data(item_id)?;
        self.meter
            .downloaded
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(data)
    }

    /// Progressive view fetch (§6.3): download only the byte prefix needed
    /// for `max_levels` detail levels of the server-side wavelet view
    /// covering `[t_start, t_end)`, reconstruct locally, return the
    /// approximated count series. The full stream is cached on first use;
    /// later calls at any level are free.
    pub fn progressive_counts(
        &self,
        view_item: i64,
        bin_ms: u64,
        t_start: u64,
        t_end: u64,
        view_t0: u64,
        max_levels: usize,
    ) -> DmResult<(Vec<f64>, u64)> {
        // Transfer-cost model: a real client would range-request the
        // prefix; we fetch through the cache and report the prefix size.
        let data = self.fetch_object("view", view_item)?;
        let view = PartitionedView::from_bytes(&data)
            .map_err(|e| DmError::BadQuery(format!("corrupt view: {e}")))?;
        // Clamp to the view's coverage: a window starting before the view
        // must not underflow into a giant bin index.
        let b0 = (t_start.saturating_sub(view_t0) / bin_ms) as usize;
        let b1 = (t_end.saturating_sub(view_t0) / bin_ms) as usize;
        let bytes = view
            .bytes_for_range(b0, b1, max_levels)
            .map_err(|e| DmError::BadQuery(format!("view range: {e}")))?;
        let series = view
            .reconstruct_range(b0, b1, max_levels)
            .map_err(|e| DmError::BadQuery(format!("view decode: {e}")))?;
        Ok((series, bytes as u64))
    }

    /// Mirror visible metadata into the V2 local clone ("requests may also
    /// be sent to peer clients", §10 — the clone is what makes a peer a
    /// server). Returns (hles, analyses) mirrored.
    pub fn mirror_metadata(&self) -> DmResult<(usize, usize)> {
        let local = match &self.local {
            Some(l) => Arc::clone(l),
            None => {
                return Err(DmError::BadQuery(
                    "metadata mirroring requires the V2 local clone".into(),
                ))
            }
        };
        let svc = self.server.services();
        let hles = svc.query(&self.session, Query::table("hle"))?;
        let mut n_hle = 0usize;
        for row in &hles.rows {
            local.io.insert("hle", row.clone())?;
            n_hle += 1;
        }
        let anas = svc.query(&self.session, Query::table("ana"))?;
        let mut n_ana = 0usize;
        for row in &anas.rows {
            local.io.insert("ana", row.clone())?;
            n_ana += 1;
        }
        Ok((n_hle, n_ana))
    }

    /// Query the local clone (offline work, §9: "tools for offline work").
    pub fn local_query(&self, q: &Query) -> DmResult<hedc_metadb::QueryResult> {
        match &self.local {
            Some(local) => local.io.query(q),
            None => Err(DmError::BadQuery("no local clone in V1 mode".into())),
        }
    }

    /// Upload a locally produced analysis back to the server (§3.3:
    /// "new analysis results thus produced may be uploaded and imported").
    pub fn upload_analysis(
        &self,
        spec: &hedc_dm::AnaSpec,
        files: &[hedc_dm::FilePayload],
    ) -> DmResult<(i64, Option<i64>)> {
        self.server
            .services()
            .import_analysis(&self.session, spec, files)
    }

    /// Expose this client's local clone as a peer node (§10). Requires the
    /// V2 strategy — only a clone can serve requests. Typically used with
    /// [`hedc_dm::DmRouter`] so browse load can be answered by peers.
    pub fn share_as_peer(&self, label: &str) -> DmResult<Arc<PeerServer>> {
        match &self.local {
            Some(local) => Ok(Arc::new(PeerServer {
                label: label.to_string(),
                local: Arc::clone(local),
                served: AtomicU64::new(0),
            })),
            None => Err(DmError::BadQuery(
                "peer serving requires the V2 local clone".into(),
            )),
        }
    }
}

/// A StreamCorder's local clone exposed as a queryable peer (§10: "as
/// every StreamCorder is in reality a fully functional server, requests
/// may also be sent to peer clients to allow peer to peer interaction").
pub struct PeerServer {
    label: String,
    local: Arc<Dm>,
    served: AtomicU64,
}

impl PeerServer {
    /// Queries served by this peer.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }
}

impl hedc_dm::DmNode for PeerServer {
    fn node_id(&self) -> String {
        format!("peer:{}", self.label)
    }

    fn execute_query(&self, q: &Query) -> DmResult<hedc_metadb::QueryResult> {
        self.served.fetch_add(1, Ordering::Relaxed);
        self.local.io.query(q)
    }
}

/// Local value accessor helper (kept private).
#[allow(dead_code)]
fn value_to_string(v: &Value) -> String {
    v.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hedc_dm::{IngestConfig, Rights, SessionKind};
    use hedc_events::{generate, package, GenConfig};

    struct Fx {
        server: Arc<Dm>,
        session: Arc<Session>,
        view_item: i64,
        raw_item: i64,
        view_t0: u64,
    }

    fn fixture() -> Fx {
        let files = Arc::new(FileStore::new());
        files.register(Archive::in_memory(
            1,
            "raw",
            ArchiveTier::OnlineDisk,
            1 << 30,
        ));
        files.register(Archive::in_memory(
            2,
            "derived",
            ArchiveTier::OnlineRaid,
            1 << 30,
        ));
        let server = Dm::bootstrap(files, DmConfig::default()).unwrap();
        let t = generate(&GenConfig {
            duration_ms: 15 * 60 * 1000,
            background_rate: 15.0,
            flares_per_hour: 6.0,
            seed: 808,
            ..GenConfig::default()
        });
        let import = server.import_session();
        let cfg = IngestConfig::new(1, 2, server.extended_catalog);
        let unit = package(&t, usize::MAX, 1).remove(0);
        server
            .processes()
            .ingest_unit(&import, &unit, &cfg)
            .unwrap();
        server
            .create_user("scientist", "pw", "sci", Rights::SCIENTIST)
            .unwrap();
        let cookie = server.login("scientist", "pw", "client-1").unwrap();
        let session = server
            .session("client-1", cookie, SessionKind::Analysis)
            .unwrap();
        let vm = server.io.query(&Query::table("view_meta")).unwrap();
        let view_item = vm.rows[0][6].as_int().unwrap();
        let view_t0 = vm.rows[0][1].as_int().unwrap() as u64;
        let raw = server.io.query(&Query::table("raw_unit")).unwrap();
        let raw_item = raw.rows[0][6].as_int().unwrap();
        Fx {
            server,
            session,
            view_item,
            raw_item,
            view_t0,
        }
    }

    #[test]
    fn v1_cache_hits_after_first_fetch() {
        let fx = fixture();
        let sc = StreamCorder::connect(
            Arc::clone(&fx.server),
            Arc::clone(&fx.session),
            CacheStrategy::V1StaticPath,
        )
        .unwrap();
        let a = sc.fetch_object("raw", fx.raw_item).unwrap();
        let b = sc.fetch_object("raw", fx.raw_item).unwrap();
        assert_eq!(a, b);
        let (down, cached, hits, misses) = sc.meter.snapshot();
        assert_eq!(misses, 1);
        assert_eq!(hits, 1);
        assert_eq!(down, a.len() as u64);
        assert_eq!(cached, a.len() as u64);
    }

    #[test]
    fn v2_places_objects_like_the_server() {
        let fx = fixture();
        let sc = StreamCorder::connect(
            Arc::clone(&fx.server),
            Arc::clone(&fx.session),
            CacheStrategy::V2LocalClone,
        )
        .unwrap();
        let a = sc.fetch_object("raw", fx.raw_item).unwrap();
        let b = sc.fetch_object("raw", fx.raw_item).unwrap();
        assert_eq!(a, b);
        let (_, _, hits, misses) = sc.meter.snapshot();
        assert_eq!((hits, misses), (1, 1));
        // The local clone has real location metadata for the cached object.
        let entries = sc.local_query(&Query::table("loc_entry")).unwrap();
        assert_eq!(entries.rows.len(), 1);
    }

    #[test]
    fn progressive_fetch_saves_bytes() {
        let fx = fixture();
        let sc = StreamCorder::connect(
            Arc::clone(&fx.server),
            Arc::clone(&fx.session),
            CacheStrategy::V1StaticPath,
        )
        .unwrap();
        let t0 = fx.view_t0;
        let (coarse, coarse_bytes) = sc
            .progressive_counts(fx.view_item, 1000, t0, t0 + 600_000, t0, 3)
            .unwrap();
        let (full, full_bytes) = sc
            .progressive_counts(fx.view_item, 1000, t0, t0 + 600_000, t0, usize::MAX)
            .unwrap();
        assert_eq!(coarse.len(), 600);
        assert_eq!(full.len(), 600);
        assert!(
            coarse_bytes * 3 < full_bytes,
            "coarse {coarse_bytes} vs full {full_bytes}"
        );
        // Approximation preserves total counts roughly.
        let sc_sum: f64 = coarse.iter().sum();
        let full_sum: f64 = full.iter().sum();
        assert!((sc_sum - full_sum).abs() < full_sum.abs() * 0.2 + 50.0);
    }

    #[test]
    fn mirror_requires_v2_and_copies_tuples() {
        let fx = fixture();
        let v1 = StreamCorder::connect(
            Arc::clone(&fx.server),
            Arc::clone(&fx.session),
            CacheStrategy::V1StaticPath,
        )
        .unwrap();
        assert!(v1.mirror_metadata().is_err());

        let v2 = StreamCorder::connect(
            Arc::clone(&fx.server),
            Arc::clone(&fx.session),
            CacheStrategy::V2LocalClone,
        )
        .unwrap();
        let (hles, _anas) = v2.mirror_metadata().unwrap();
        assert!(hles > 0);
        let local_hles = v2.local_query(&Query::table("hle")).unwrap();
        assert_eq!(local_hles.rows.len(), hles);
    }

    #[test]
    fn upload_analysis_reaches_server() {
        let fx = fixture();
        let sc = StreamCorder::connect(
            Arc::clone(&fx.server),
            Arc::clone(&fx.session),
            CacheStrategy::V2LocalClone,
        )
        .unwrap();
        let hle = fx
            .server
            .services()
            .query(&fx.session, Query::table("hle").limit(1))
            .unwrap()
            .rows[0][0]
            .as_int()
            .unwrap();
        let spec = hedc_dm::AnaSpec {
            hle_id: hle,
            kind: "lightcurve".into(),
            fingerprint: "sc-local-1".into(),
            t_start: 0,
            t_end: 1000,
            energy_lo: 3.0,
            energy_hi: 100.0,
            param_grid: None,
            param_bins: None,
            param_bin_ms: Some(1000.0),
            duration_ms: 900,
            cpu_ms: 800,
            output_bytes: 128,
            product_type: "series".into(),
            calib_version: 1,
        };
        let files = vec![hedc_dm::FilePayload {
            archive_id: 2,
            path: "uploads/sc/series.json".into(),
            role: "data".into(),
            data: br#"{"counts":[1,2,3]}"#.to_vec(),
        }];
        let (ana_id, item) = sc.upload_analysis(&spec, &files).unwrap();
        assert!(ana_id > 0);
        assert!(item.is_some());
        // The server can serve it back.
        let sv = fx.server.names().fetch_data(item.unwrap()).unwrap();
        assert_eq!(sv, files[0].data);
    }
}
