//! Interactive database visualization (§6.3).
//!
//! "The basic idea is to reorganize the catalogs as a number of
//! multi-dimensional arrays and allow users to specify ranges in any of the
//! dimensions. Based on these ranges the information is then presented in a
//! compact and efficient manner using density (number of tuples per bin)
//! and extent (location and extent of each tuple or cluster of tuples)
//! plots." The arrays are wavelet-encoded for shipping to the client
//! (decoding "at the Java client side to minimize the load at the server").

use hedc_dm::{Dm, DmResult, Session};
use hedc_metadb::{Expr, Query};
use hedc_wavelet::{clusters, encode_signal, Axis, DensityPlot, ExtentPlot};

/// Ranges the user selected in the viz UI.
#[derive(Debug, Clone, Copy)]
pub struct VizRanges {
    /// Time range, mission ms.
    pub t: (u64, u64),
    /// Energy range, keV.
    pub energy: (f64, f64),
    /// Bins per axis.
    pub bins: usize,
}

/// Build the density plot of visible HLEs over (time, energy).
pub fn catalog_density(dm: &Dm, session: &Session, r: VizRanges) -> DmResult<DensityPlot> {
    let q = Query::table("hle").filter(Expr::between("time_start", r.t.0 as i64, r.t.1 as i64));
    let result = dm.services().query(session, q)?;
    let points: Vec<(f64, f64)> = result
        .rows
        .iter()
        .map(|row| {
            (
                row[3].as_int().unwrap_or(0) as f64,
                row[5].as_float().unwrap_or(0.0),
            )
        })
        .collect();
    Ok(DensityPlot::build(
        Axis::new("time_start", r.t.0 as f64, r.t.1 as f64, r.bins),
        Axis::new("energy_lo", r.energy.0, r.energy.1, r.bins),
        points,
    ))
}

/// Build the extent plot of visible HLEs: per time bin, the min/max peak
/// rate (the "location and extent" rendering).
pub fn catalog_extent(dm: &Dm, session: &Session, r: VizRanges) -> DmResult<ExtentPlot> {
    let q = Query::table("hle").filter(Expr::between("time_start", r.t.0 as i64, r.t.1 as i64));
    let result = dm.services().query(session, q)?;
    let points: Vec<(f64, f64)> = result
        .rows
        .iter()
        .filter_map(|row| {
            let t = row[3].as_int()? as f64;
            let rate = row[9].as_float()?;
            Some((t, rate))
        })
        .collect();
    Ok(ExtentPlot::build(
        Axis::new("time_start", r.t.0 as f64, r.t.1 as f64, r.bins),
        points,
    ))
}

/// Wavelet-encode a density plot for shipping to the client (§6.3: "since
/// the partitioned views tend to be large, we encode them using a wavelet
/// transformation"). Returns (encoded bytes, raw f64 bytes it replaces).
pub fn ship_density(plot: &DensityPlot, quant_step: f64) -> (Vec<u8>, usize) {
    let signal = plot.as_signal();
    let encoded = encode_signal(&signal, quant_step);
    let raw = signal.len() * 8;
    (encoded, raw)
}

/// Render a density plot as a PGM (portable graymap) image — the pictorial
/// content the thin client embeds.
pub fn render_pgm(plot: &DensityPlot) -> Vec<u8> {
    let peak = plot.peak().max(1);
    let mut out = format!("P5\n{} {}\n255\n", plot.x.bins, plot.y.bins).into_bytes();
    for by in (0..plot.y.bins).rev() {
        for bx in 0..plot.x.bins {
            let v = plot.count(bx, by);
            out.push(((v * 255) / peak) as u8);
        }
    }
    out
}

/// Summarize an extent plot's clusters as table rows for the thin client:
/// (time range label, tuple count, rate range label).
pub fn cluster_rows(plot: &ExtentPlot) -> Vec<(String, u64, String)> {
    clusters(plot)
        .into_iter()
        .map(|(b0, b1, count, lo, hi)| {
            (
                format!(
                    "{:.0} - {:.0}",
                    plot.x.bin_center(b0),
                    plot.x.bin_center(b1)
                ),
                count,
                format!("{lo:.1} - {hi:.1}"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hedc_dm::{DmConfig, HleSpec};
    use hedc_filestore::{Archive, ArchiveTier, FileStore};
    use std::sync::Arc;

    fn dm_with_events() -> (Arc<Dm>, Arc<Session>) {
        let files = Arc::new(FileStore::new());
        files.register(Archive::in_memory(1, "a", ArchiveTier::OnlineDisk, 1 << 20));
        let dm = Dm::bootstrap(files, DmConfig::default()).unwrap();
        let session = dm.import_session();
        let svc = dm.services();
        for i in 0..50i64 {
            let mut spec = HleSpec::window(
                (i as u64) * 10_000,
                (i as u64) * 10_000 + 5_000,
                if i % 5 == 0 { "grb" } else { "flare" },
            );
            spec.peak_rate = Some(100.0 + i as f64 * 10.0);
            spec.energy_lo = 3.0 + (i % 10) as f64 * 5.0;
            let id = svc.create_hle(&session, &spec).unwrap();
            svc.publish(&session, "hle", id).unwrap();
        }
        (dm, session)
    }

    fn ranges() -> VizRanges {
        VizRanges {
            t: (0, 500_000),
            energy: (0.0, 60.0),
            bins: 20,
        }
    }

    #[test]
    fn density_covers_all_events() {
        let (dm, session) = dm_with_events();
        let plot = catalog_density(&dm, &session, ranges()).unwrap();
        assert_eq!(plot.total(), 50);
        assert!(plot.peak() >= 1);
    }

    #[test]
    fn density_respects_visibility() {
        let (dm, session) = dm_with_events();
        // A private event is invisible to guests.
        let svc = dm.services();
        svc.create_hle(&session, &HleSpec::window(1000, 2000, "secret"))
            .unwrap();
        let guest = Session::anonymous("x");
        let plot = catalog_density(&dm, &guest, ranges()).unwrap();
        assert_eq!(plot.total(), 50, "private event excluded");
        let _ = session;
    }

    #[test]
    fn extent_and_clusters() {
        let (dm, session) = dm_with_events();
        let plot = catalog_extent(&dm, &session, ranges()).unwrap();
        assert!(plot.occupied() > 0);
        let rows = cluster_rows(&plot);
        assert!(!rows.is_empty());
        let total: u64 = rows.iter().map(|(_, c, _)| *c).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn shipping_compresses() {
        let (dm, session) = dm_with_events();
        let plot = catalog_density(&dm, &session, ranges()).unwrap();
        let (encoded, raw) = ship_density(&plot, 0.5);
        assert!(
            encoded.len() < raw / 2,
            "encoded {} vs raw {raw}",
            encoded.len()
        );
        // Decodes to the same bin count.
        let back = hedc_wavelet::decode_prefix(&encoded, usize::MAX).unwrap();
        assert_eq!(back.len(), 400);
    }

    #[test]
    fn pgm_rendering_shape() {
        let (dm, session) = dm_with_events();
        let plot = catalog_density(&dm, &session, ranges()).unwrap();
        let pgm = render_pgm(&plot);
        let header = b"P5\n20 20\n255\n";
        assert!(pgm.starts_with(header));
        assert_eq!(pgm.len(), header.len() + 400);
        // Peak bin maps to 255.
        assert!(pgm[header.len()..].contains(&255));
    }
}
