//! Synoptic search (§6.4).
//!
//! "The synoptic search subsystem serves to locate synoptic data in remote
//! repositories. ... First, online requests are issued to several remote
//! archives in parallel. Then the results are collected, grouped and
//! displayed to the user. Currently, the only search criterion is the
//! observation time. ... The service is best effort (if a query to a remote
//! archive times out, no results are available); query results are not
//! cached, and there is no data synchronization."

use crossbeam::channel::bounded;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A record found in a remote archive.
#[derive(Debug, Clone, PartialEq)]
pub struct SynopticRecord {
    /// Which archive it came from.
    pub archive: String,
    /// Instrument / data type label.
    pub instrument: String,
    /// Observation start, mission ms.
    pub t_start: u64,
    /// Observation end, mission ms.
    pub t_end: u64,
    /// Download URL.
    pub url: String,
}

/// A remote synoptic archive (SOHO, Phoenix-2, GOES, ...).
pub trait RemoteArchive: Send + Sync {
    /// Archive name.
    fn name(&self) -> String;
    /// Search by observation time. This call may be slow or hang — the
    /// search subsystem imposes its own timeout.
    fn search(&self, t_start: u64, t_end: u64) -> Vec<SynopticRecord>;
}

/// A mock remote archive with configurable response latency and outage
/// state — the test double for six real archives of 2002.
pub struct MockArchive {
    name: String,
    instrument: String,
    /// Records spaced every `period_ms` covering the mission timeline.
    period_ms: u64,
    latency: Duration,
    down: AtomicBool,
    calls: AtomicU64,
}

impl MockArchive {
    /// A mock archive producing one record per `period_ms`.
    pub fn new(name: &str, instrument: &str, period_ms: u64, latency: Duration) -> Arc<Self> {
        Arc::new(MockArchive {
            name: name.to_string(),
            instrument: instrument.to_string(),
            period_ms,
            latency,
            down: AtomicBool::new(false),
            calls: AtomicU64::new(0),
        })
    }

    /// Simulate an outage (search blocks until timeout).
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    /// Queries served.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl RemoteArchive for MockArchive {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn search(&self, t_start: u64, t_end: u64) -> Vec<SynopticRecord> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if self.down.load(Ordering::SeqCst) {
            // An unreachable host: block far beyond any sane timeout.
            std::thread::sleep(Duration::from_secs(3600));
        }
        std::thread::sleep(self.latency);
        let mut out = Vec::new();
        let mut t = t_start - (t_start % self.period_ms);
        while t < t_end {
            if t >= t_start {
                out.push(SynopticRecord {
                    archive: self.name.clone(),
                    instrument: self.instrument.clone(),
                    t_start: t,
                    t_end: t + self.period_ms,
                    url: format!("http://{}/data/{t}", self.name),
                });
            }
            t += self.period_ms;
        }
        out
    }
}

/// Result of a fan-out search.
#[derive(Debug)]
pub struct SynopticResults {
    /// Records grouped by archive name, sorted by name then time.
    pub by_archive: Vec<(String, Vec<SynopticRecord>)>,
    /// Archives that did not answer within the timeout (best effort:
    /// "no results are available").
    pub timed_out: Vec<String>,
}

impl SynopticResults {
    /// Total records found.
    pub fn total(&self) -> usize {
        self.by_archive.iter().map(|(_, r)| r.len()).sum()
    }
}

/// The search subsystem: a set of registered archives and a timeout.
pub struct SynopticSearch {
    archives: Vec<Arc<dyn RemoteArchive>>,
    timeout: Duration,
}

impl SynopticSearch {
    /// Build with a timeout per archive.
    pub fn new(archives: Vec<Arc<dyn RemoteArchive>>, timeout: Duration) -> Self {
        SynopticSearch { archives, timeout }
    }

    /// Number of registered archives.
    pub fn archive_count(&self) -> usize {
        self.archives.len()
    }

    /// Fan out the time query to every archive in parallel; collect what
    /// answers within the timeout. "This service operates independently
    /// from other subsystems" — no DM, no caching, no state.
    pub fn search(&self, t_start: u64, t_end: u64) -> SynopticResults {
        let (tx, rx) = bounded(self.archives.len());
        for archive in &self.archives {
            let archive = Arc::clone(archive);
            let tx = tx.clone();
            std::thread::spawn(move || {
                let name = archive.name();
                let records = archive.search(t_start, t_end);
                // The receiver may have given up; that's fine.
                let _ = tx.send((name, records));
            });
        }
        drop(tx);

        let deadline = std::time::Instant::now() + self.timeout;
        let mut by_archive: Vec<(String, Vec<SynopticRecord>)> = Vec::new();
        let mut answered: Vec<String> = Vec::new();
        while answered.len() < self.archives.len() {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break;
            }
            match rx.recv_timeout(remaining) {
                Ok((name, records)) => {
                    answered.push(name.clone());
                    by_archive.push((name, records));
                }
                Err(_) => break,
            }
        }
        let timed_out: Vec<String> = self
            .archives
            .iter()
            .map(|a| a.name())
            .filter(|n| !answered.contains(n))
            .collect();
        by_archive.sort_by(|a, b| a.0.cmp(&b.0));
        SynopticResults {
            by_archive,
            timed_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn archives() -> Vec<Arc<MockArchive>> {
        vec![
            MockArchive::new(
                "soho.nascom.nasa.gov",
                "EIT",
                60_000,
                Duration::from_millis(5),
            ),
            MockArchive::new(
                "phoenix.ethz.ch",
                "Phoenix-2",
                30_000,
                Duration::from_millis(10),
            ),
            MockArchive::new("goes.noaa.gov", "GOES-8", 120_000, Duration::from_millis(2)),
        ]
    }

    fn as_dyn(v: &[Arc<MockArchive>]) -> Vec<Arc<dyn RemoteArchive>> {
        v.iter()
            .map(|a| Arc::clone(a) as Arc<dyn RemoteArchive>)
            .collect()
    }

    #[test]
    fn fan_out_collects_all_archives() {
        let mocks = archives();
        let search = SynopticSearch::new(as_dyn(&mocks), Duration::from_secs(5));
        let r = search.search(0, 300_000);
        assert_eq!(r.by_archive.len(), 3);
        assert!(r.timed_out.is_empty());
        // Counts follow each archive's cadence.
        let counts: Vec<usize> = r.by_archive.iter().map(|(_, v)| v.len()).collect();
        // Sorted by name: goes (120s → 3), phoenix (30s → 10), soho (60s → 5).
        assert_eq!(counts, vec![3, 10, 5]);
        assert_eq!(r.total(), 18);
        for m in &mocks {
            assert_eq!(m.calls(), 1);
        }
    }

    #[test]
    fn down_archive_times_out_best_effort() {
        let mocks = archives();
        mocks[1].set_down(true);
        let search = SynopticSearch::new(as_dyn(&mocks), Duration::from_millis(300));
        let r = search.search(0, 120_000);
        assert_eq!(r.by_archive.len(), 2, "two archives still answer");
        assert_eq!(r.timed_out, vec!["phoenix.ethz.ch".to_string()]);
        assert!(r.total() > 0);
    }

    #[test]
    fn empty_window_returns_empty_records() {
        let mocks = archives();
        let search = SynopticSearch::new(as_dyn(&mocks), Duration::from_secs(1));
        let r = search.search(1000, 1000);
        assert_eq!(r.total(), 0);
        assert_eq!(r.by_archive.len(), 3);
    }

    #[test]
    fn results_grouped_and_time_filtered() {
        let mocks = archives();
        let search = SynopticSearch::new(as_dyn(&mocks), Duration::from_secs(5));
        let r = search.search(60_000, 180_000);
        for (_, records) in &r.by_archive {
            for rec in records {
                assert!(rec.t_start >= 60_000 && rec.t_start < 180_000);
            }
        }
    }
}
