//! A small HTML template engine.
//!
//! §6.1: "a response may involve a combination of multiple HTML template
//! files, which are populated during query processing. Each template
//! contains dynamic and static images, Java Script, CSS style sheets and
//! plain text." Placeholders are `{{name}}`; row repetition uses
//! `{{#each name}} ... {{/each}}` over a list of contexts. Unknown
//! placeholders render empty (a missing attribute must not break a page).

use std::collections::BTreeMap;

/// A template rendering context: scalar values plus named row lists.
#[derive(Debug, Clone, Default)]
pub struct Context {
    values: BTreeMap<String, String>,
    lists: BTreeMap<String, Vec<Context>>,
}

impl Context {
    /// Empty context.
    pub fn new() -> Self {
        Context::default()
    }

    /// Set a scalar (HTML-escaped at render time).
    pub fn set(mut self, key: &str, value: impl ToString) -> Self {
        self.values.insert(key.to_string(), value.to_string());
        self
    }

    /// Set a pre-escaped/raw scalar (for nested rendered fragments).
    pub fn set_raw(mut self, key: &str, value: impl ToString) -> Self {
        self.values.insert(format!("raw:{key}"), value.to_string());
        self
    }

    /// Set a row list for `{{#each key}}`.
    pub fn set_list(mut self, key: &str, rows: Vec<Context>) -> Self {
        self.lists.insert(key.to_string(), rows);
        self
    }
}

/// Escape HTML-special characters.
pub fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

/// Render a template against a context.
pub fn render(template: &str, ctx: &Context) -> String {
    let mut out = String::with_capacity(template.len() * 2);
    render_into(template, ctx, &mut out);
    out
}

fn render_into(template: &str, ctx: &Context, out: &mut String) {
    let mut rest = template;
    while let Some(start) = rest.find("{{") {
        out.push_str(&rest[..start]);
        let after = &rest[start + 2..];
        let Some(end) = after.find("}}") else {
            // Unterminated tag: emit literally.
            out.push_str(&rest[start..]);
            return;
        };
        let tag = after[..end].trim();
        let after_tag = &after[end + 2..];
        if let Some(list_name) = tag.strip_prefix("#each ") {
            let close = "{{/each}}";
            // Find the matching close, honoring nesting.
            let body_end = find_matching_close(after_tag);
            match body_end {
                Some(pos) => {
                    let body = &after_tag[..pos];
                    if let Some(rows) = ctx.lists.get(list_name.trim()) {
                        for row in rows {
                            // Rows inherit the parent's scalars.
                            let merged = merge(ctx, row);
                            render_into(body, &merged, out);
                        }
                    }
                    rest = &after_tag[pos + close.len()..];
                }
                None => {
                    out.push_str(&rest[start..]);
                    return;
                }
            }
        } else if tag == "/each" {
            // Stray close: emit nothing, continue.
            rest = after_tag;
        } else {
            // Scalar: raw variant wins, then escaped scalar, else empty.
            if let Some(v) = ctx.values.get(&format!("raw:{tag}")) {
                out.push_str(v);
            } else if let Some(v) = ctx.values.get(tag) {
                out.push_str(&escape_html(v));
            }
            rest = after_tag;
        }
    }
    out.push_str(rest);
}

fn find_matching_close(s: &str) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = 0usize;
    let bytes = s.as_bytes();
    while i + 1 < bytes.len() {
        if s[i..].starts_with("{{#each ") {
            depth += 1;
            i += 8;
        } else if s[i..].starts_with("{{/each}}") {
            if depth == 0 {
                return Some(i);
            }
            depth -= 1;
            i += 9;
        } else {
            i += 1;
        }
    }
    None
}

fn merge(parent: &Context, child: &Context) -> Context {
    let mut merged = parent.clone();
    for (k, v) in &child.values {
        merged.values.insert(k.clone(), v.clone());
    }
    for (k, v) in &child.lists {
        merged.lists.insert(k.clone(), v.clone());
    }
    merged
}

// ---------------------------------------------------------------------------
// The HEDC page templates (§6.1: header/footer + per-entity templates).
// ---------------------------------------------------------------------------

/// Page header template.
pub const HEADER: &str = r#"<!DOCTYPE html>
<html><head><title>HEDC - {{title}}</title>
<link rel="stylesheet" href="/static/hedc.css"></head>
<body><div class="banner"><img src="/static/logo.gif" alt="HEDC">
<h1>{{title}}</h1><span class="user">{{user}}</span></div>
<nav><a href="/hedc/catalogs">Catalogs</a> | <a href="/hedc/search">Search</a></nav>
"#;

/// Page footer template.
pub const FOOTER: &str = r#"<div class="footer">RHESSI Experimental Data Center</div>
</body></html>
"#;

/// Catalog list template.
pub const CATALOG_LIST: &str = r#"<table class="catalogs">
<tr><th>Catalog</th><th>Kind</th><th>Description</th></tr>
{{#each catalogs}}<tr><td><a href="/hedc/catalog/{{id}}">{{name}}</a></td>
<td>{{kind}}</td><td>{{description}}</td></tr>
{{/each}}</table>
"#;

/// Catalog page: its member events.
pub const CATALOG_PAGE: &str = r#"<h2>Catalog: {{name}}</h2>
<table class="events"><tr><th>Event</th><th>Type</th><th>Class</th><th>Start</th><th>Duration [s]</th></tr>
{{#each events}}<tr><td><a href="/hedc/hle/{{id}}">{{title}}</a></td>
<td>{{event_type}}</td><td>{{flare_class}}</td><td>{{time_start}}</td><td>{{duration_s}}</td></tr>
{{/each}}</table>
"#;

/// HLE page: event header plus one block per analysis (§6.1: "loading and
/// filling in HLE header/footer templates and an analysis template for each
/// ANA tuple").
pub const HLE_PAGE: &str = r#"<h2>{{title}}</h2>
<table class="hle"><tr><td>Type</td><td>{{event_type}}</td></tr>
<tr><td>Window</td><td>{{time_start}} - {{time_end}}</td></tr>
<tr><td>Energy</td><td>{{energy_lo}} - {{energy_hi}} keV</td></tr>
<tr><td>Peak rate</td><td>{{peak_rate}}</td></tr></table>
<h3>Analyses</h3>
{{#each analyses}}<div class="ana"><a href="/hedc/ana/{{id}}">{{kind}}</a>
<img src="{{image_url}}" alt="{{kind}}"><span>{{duration_ms}} ms</span></div>
{{/each}}
<form action="/hedc/analyze/{{id}}" method="post">
<select name="kind"><option>imaging</option><option>lightcurve</option>
<option>spectrum</option><option>histogram</option></select>
<input type="submit" value="Run analysis"></form>
"#;

/// Analysis page.
pub const ANA_PAGE: &str = r#"<h2>Analysis {{id}}: {{kind}}</h2>
<table class="ana"><tr><td>Window</td><td>{{t_start}} - {{t_end}}</td></tr>
<tr><td>Status</td><td>{{status}}</td></tr>
<tr><td>Duration</td><td>{{duration_ms}} ms</td></tr>
<tr><td>Product</td><td>{{product_type}}</td></tr></table>
{{#each files}}<div class="file"><a href="{{url}}">{{name}}</a></div>
{{/each}}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_substitution_and_escaping() {
        let ctx = Context::new().set("name", "<flare> & 'burst'");
        let html = render("Hello {{name}}!", &ctx);
        assert_eq!(html, "Hello &lt;flare&gt; &amp; &#39;burst&#39;!");
    }

    #[test]
    fn missing_scalar_renders_empty() {
        let html = render("[{{nothing}}]", &Context::new());
        assert_eq!(html, "[]");
    }

    #[test]
    fn raw_values_skip_escaping() {
        let ctx = Context::new().set_raw("frag", "<b>bold</b>");
        assert_eq!(render("{{frag}}", &ctx), "<b>bold</b>");
    }

    #[test]
    fn each_iterates_rows() {
        let ctx = Context::new().set_list(
            "rows",
            vec![Context::new().set("v", "a"), Context::new().set("v", "b")],
        );
        assert_eq!(render("{{#each rows}}[{{v}}]{{/each}}", &ctx), "[a][b]");
    }

    #[test]
    fn each_inherits_parent_scalars() {
        let ctx = Context::new()
            .set("page", "cat")
            .set_list("rows", vec![Context::new().set("v", "x")]);
        assert_eq!(
            render("{{#each rows}}{{page}}:{{v}}{{/each}}", &ctx),
            "cat:x"
        );
    }

    #[test]
    fn nested_each() {
        let inner = vec![Context::new().set("n", "1"), Context::new().set("n", "2")];
        let ctx = Context::new().set_list(
            "outer",
            vec![Context::new().set("o", "A").set_list("inner", inner)],
        );
        assert_eq!(
            render(
                "{{#each outer}}{{o}}({{#each inner}}{{n}}{{/each}}){{/each}}",
                &ctx
            ),
            "A(12)"
        );
    }

    #[test]
    fn empty_list_renders_nothing() {
        let ctx = Context::new().set_list("rows", vec![]);
        assert_eq!(render("x{{#each rows}}y{{/each}}z", &ctx), "xz");
    }

    #[test]
    fn unterminated_tag_is_literal() {
        assert_eq!(render("a {{broken", &Context::new()), "a {{broken");
        assert_eq!(
            render("{{#each rows}}no close", &Context::new()),
            "{{#each rows}}no close"
        );
    }

    #[test]
    fn hedc_templates_render() {
        let ctx = Context::new()
            .set("title", "Flare @ 12000")
            .set("user", "etzard")
            .set("event_type", "flare")
            .set("time_start", 12000)
            .set("time_end", 13000)
            .set("energy_lo", 3.0)
            .set("energy_hi", 100.0)
            .set("peak_rate", 250.5)
            .set("id", 42)
            .set_list(
                "analyses",
                vec![Context::new()
                    .set("id", 7)
                    .set("kind", "imaging")
                    .set("image_url", "/files/7/image.fits")
                    .set("duration_ms", 60000)],
            );
        let page = format!(
            "{}{}{}",
            render(HEADER, &ctx),
            render(HLE_PAGE, &ctx),
            render(FOOTER, &ctx)
        );
        assert!(page.contains("<h1>Flare @ 12000</h1>"));
        assert!(page.contains("/hedc/ana/7"));
        assert!(page.contains("60000 ms"));
        assert!(page.contains("Run analysis"));
    }
}
