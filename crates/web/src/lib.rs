//! # hedc-web — the presentation tier
//!
//! Both faces of HEDC (paper §6): the thin Web client whose pages the DM
//! generates from templates, and the StreamCorder fat client that is "in
//! fact, a clone of the HEDC server extended with a GUI and extra
//! services". Plus the two §6 subsystems that make the repository an
//! exploration tool rather than an FTP site: interactive density/extent
//! visualization over wavelet-shipped catalog arrays (§6.3) and the
//! best-effort synoptic fan-out search over remote archives (§6.4).
//!
//! * [`WebServer`] — routes `/hedc/...` requests into DM queries and PL
//!   submissions; the §7 browse workload (7 queries/page) lives here.
//! * [`templates`] — the header/footer/entity HTML templates (§6.1).
//! * [`StreamCorder`] — fat client with the two cache strategies of §6.2
//!   and progressive wavelet-view fetching (§6.3).
//! * [`SynopticSearch`] — parallel best-effort remote search (§6.4).
//! * [`viz`] — density/extent plots and wavelet shipping (§6.3).

#![warn(missing_docs)]

mod streamcorder;
mod synoptic;
pub mod templates;
mod thin;
pub mod viz;

pub use streamcorder::{CacheStrategy, PeerServer, StreamCorder, TransferMeter};
pub use synoptic::{MockArchive, RemoteArchive, SynopticRecord, SynopticResults, SynopticSearch};
pub use thin::{HttpRequest, HttpResponse, WebServer};
