//! Full-stack tests of the thin Web interface: DM + PL + web routing.

use hedc_analysis::AlgorithmRegistry;
use hedc_dm::{Dm, DmConfig, IngestConfig, Rights};
use hedc_events::{generate, package, GenConfig};
use hedc_filestore::{Archive, ArchiveTier, FileStore};
use hedc_pl::{PlConfig, ProcessingLogic};
use hedc_web::{HttpRequest, WebServer};
use std::sync::Arc;

struct Stack {
    server: WebServer,
    dm: Arc<Dm>,
    pl: Arc<ProcessingLogic>,
    hle_id: i64,
}

fn stack() -> Stack {
    let files = Arc::new(FileStore::new());
    files.register(Archive::in_memory(
        1,
        "raw",
        ArchiveTier::OnlineDisk,
        1 << 30,
    ));
    files.register(Archive::in_memory(
        2,
        "derived",
        ArchiveTier::OnlineRaid,
        1 << 30,
    ));
    let dm = Dm::bootstrap(files, DmConfig::default()).unwrap();
    let telemetry = generate(&GenConfig {
        duration_ms: 15 * 60 * 1000,
        flares_per_hour: 8.0,
        background_rate: 15.0,
        seed: 909,
        ..GenConfig::default()
    });
    let import = dm.import_session();
    let cfg = IngestConfig::new(1, 2, dm.extended_catalog);
    let unit = package(&telemetry, usize::MAX, 1).remove(0);
    let report = dm.processes().ingest_unit(&import, &unit, &cfg).unwrap();
    assert!(!report.hle_ids.is_empty());
    dm.create_user("ana", "pw", "sci", Rights::SCIENTIST)
        .unwrap();
    let pl = ProcessingLogic::start(
        Arc::clone(&dm),
        Arc::new(AlgorithmRegistry::with_builtins()),
        PlConfig::default(),
    );
    Stack {
        server: WebServer::new(Arc::clone(&dm), Some(Arc::clone(&pl))),
        dm,
        pl,
        hle_id: report.hle_ids[0],
    }
}

#[test]
fn anonymous_browse_catalogs_and_events() {
    let s = stack();
    let resp = s
        .server
        .handle(&HttpRequest::get("/hedc/catalogs", "1.1.1.1"));
    assert_eq!(resp.status, 200);
    let html = resp.text();
    assert!(html.contains("extended"), "{html}");
    assert!(html.contains("standard"));

    let resp = s.server.handle(&HttpRequest::get(
        &format!("/hedc/catalog/{}", s.dm.extended_catalog),
        "1.1.1.1",
    ));
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains(&format!("/hedc/hle/{}", s.hle_id)));

    let resp = s.server.handle(&HttpRequest::get(
        &format!("/hedc/hle/{}", s.hle_id),
        "1.1.1.1",
    ));
    assert_eq!(resp.status, 200);
    let html = resp.text();
    assert!(html.contains("Analyses"));
    assert!(html.contains("Run analysis"));
    s.pl.shutdown();
}

#[test]
fn login_flow_sets_cookie_and_unlocks_analysis() {
    let s = stack();
    // Anonymous analyze attempt: denied.
    let resp = s.server.handle(
        &HttpRequest::post(&format!("/hedc/analyze/{}", s.hle_id), "9.9.9.9")
            .with_param("kind", "histogram"),
    );
    assert_eq!(resp.status, 403, "{}", resp.text());

    // Login.
    let resp = s.server.handle(
        &HttpRequest::post("/hedc/login", "9.9.9.9")
            .with_param("user", "ana")
            .with_param("password", "pw"),
    );
    assert_eq!(resp.status, 200);
    let cookie = resp.set_cookie.expect("login sets a cookie");

    // Analyze with the session.
    let resp = s.server.handle(
        &HttpRequest::post(&format!("/hedc/analyze/{}", s.hle_id), "9.9.9.9")
            .with_cookie(cookie)
            .with_param("kind", "histogram"),
    );
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert!(resp.text().contains("computed analysis"));

    // The same request again is answered from the catalog (§3.5).
    let resp = s.server.handle(
        &HttpRequest::post(&format!("/hedc/analyze/{}", s.hle_id), "9.9.9.9")
            .with_cookie(cookie)
            .with_param("kind", "histogram"),
    );
    assert!(resp.text().contains("reused existing"), "{}", resp.text());
    s.pl.shutdown();
}

#[test]
fn bad_login_is_401() {
    let s = stack();
    let resp = s.server.handle(
        &HttpRequest::post("/hedc/login", "9.9.9.9")
            .with_param("user", "ana")
            .with_param("password", "wrong"),
    );
    assert_eq!(resp.status, 401);
    s.pl.shutdown();
}

#[test]
fn ana_page_lists_result_files() {
    let s = stack();
    let cookie = {
        let resp = s.server.handle(
            &HttpRequest::post("/hedc/login", "7.7.7.7")
                .with_param("user", "ana")
                .with_param("password", "pw"),
        );
        resp.set_cookie.unwrap()
    };
    let resp = s.server.handle(
        &HttpRequest::post(&format!("/hedc/analyze/{}", s.hle_id), "7.7.7.7")
            .with_cookie(cookie)
            .with_param("kind", "lightcurve"),
    );
    let html = resp.text();
    let ana_id: i64 = html
        .split("/hedc/ana/")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .and_then(|s| s.parse().ok())
        .expect("analysis link in response");
    let resp = s
        .server
        .handle(&HttpRequest::get(&format!("/hedc/ana/{ana_id}"), "7.7.7.7").with_cookie(cookie));
    assert_eq!(resp.status, 200);
    let html = resp.text();
    assert!(html.contains("lightcurve"));
    assert!(html.contains("/files/"), "{html}");
    s.pl.shutdown();
}

#[test]
fn user_sql_requires_rights_and_rejects_dml() {
    let s = stack();
    // Anonymous: denied (download right required).
    let resp = s
        .server
        .handle(&HttpRequest::get("/hedc/sql", "2.2.2.2").with_param("q", "SELECT * FROM hle"));
    assert_eq!(resp.status, 403);

    let cookie = {
        let resp = s.server.handle(
            &HttpRequest::post("/hedc/login", "2.2.2.2")
                .with_param("user", "ana")
                .with_param("password", "pw"),
        );
        resp.set_cookie.unwrap()
    };
    let resp = s.server.handle(
        &HttpRequest::get("/hedc/sql", "2.2.2.2")
            .with_cookie(cookie)
            .with_param(
                "q",
                "SELECT event_type, COUNT(*) FROM hle GROUP BY event_type",
            ),
    );
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert!(resp.text().contains("COUNT(*)"));

    let resp = s.server.handle(
        &HttpRequest::get("/hedc/sql", "2.2.2.2")
            .with_cookie(cookie)
            .with_param("q", "DELETE FROM hle"),
    );
    assert_eq!(resp.status, 500);
    s.pl.shutdown();
}

#[test]
fn unknown_routes_and_ids_404() {
    let s = stack();
    assert_eq!(
        s.server
            .handle(&HttpRequest::get("/nope", "1.1.1.1"))
            .status,
        404
    );
    assert_eq!(
        s.server
            .handle(&HttpRequest::get("/hedc/hle/999999", "1.1.1.1"))
            .status,
        404
    );
    assert_eq!(
        s.server
            .handle(&HttpRequest::get("/hedc/hle/not-a-number", "1.1.1.1"))
            .status,
        404
    );
    s.pl.shutdown();
}

#[test]
fn hle_page_costs_about_seven_queries() {
    // §7.2: "on average, a request generates seven DM queries".
    let s = stack();
    // Attach one analysis so the page includes an ANA block.
    let cookie = {
        let resp = s.server.handle(
            &HttpRequest::post("/hedc/login", "3.3.3.3")
                .with_param("user", "ana")
                .with_param("password", "pw"),
        );
        resp.set_cookie.unwrap()
    };
    s.server.handle(
        &HttpRequest::post(&format!("/hedc/analyze/{}", s.hle_id), "3.3.3.3")
            .with_cookie(cookie)
            .with_param("kind", "histogram"),
    );
    let before = s.dm.io.databases()[0].stats();
    let resp = s.server.handle(&HttpRequest::get(
        &format!("/hedc/hle/{}", s.hle_id),
        "3.3.3.3",
    ));
    assert_eq!(resp.status, 200);
    let delta = s.dm.io.databases()[0].stats().since(&before);
    assert!(
        (2..=10).contains(&delta.queries),
        "HLE page issued {} queries",
        delta.queries
    );
    s.pl.shutdown();
}

#[test]
fn viz_density_returns_pgm() {
    let s = stack();
    let resp = s.server.handle(
        &HttpRequest::get("/hedc/viz/density", "5.5.5.5")
            .with_param("t0", 0)
            .with_param("t1", 900_000)
            .with_param("e0", 3.0)
            .with_param("e1", 100.0)
            .with_param("bins", 16),
    );
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.content_type, "image/x-portable-graymap");
    assert!(resp.body.starts_with(b"P5\n16 16\n255\n"));
    // Degenerate ranges rejected.
    let resp = s.server.handle(
        &HttpRequest::get("/hedc/viz/density", "5.5.5.5")
            .with_param("t0", 100)
            .with_param("t1", 100),
    );
    assert_eq!(resp.status, 404);
    s.pl.shutdown();
}

#[test]
fn summary_served_from_materialized_views() {
    let s = stack();
    // Refresh so the ingest's public events appear.
    s.dm.matviews.refresh_stale(0).unwrap();
    let before = s.dm.io.databases()[0].stats();
    let resp = s
        .server
        .handle(&HttpRequest::get("/hedc/summary", "6.6.6.6"));
    assert_eq!(resp.status, 200);
    let html = resp.text();
    assert!(html.contains("events_by_type"), "{html}");
    assert!(html.contains("flare") || html.contains("grb"), "{html}");
    // The whole page came from snapshots: zero base-table queries.
    let delta = s.dm.io.databases()[0].stats().since(&before);
    assert_eq!(delta.queries, 0);
    s.pl.shutdown();
}

#[test]
fn files_route_downloads_through_metadata() {
    let s = stack();
    let cookie = {
        let resp = s.server.handle(
            &HttpRequest::post("/hedc/login", "8.8.8.8")
                .with_param("user", "ana")
                .with_param("password", "pw"),
        );
        resp.set_cookie.unwrap()
    };
    // Produce an analysis, find its file link on the ana page.
    let resp = s.server.handle(
        &HttpRequest::post(&format!("/hedc/analyze/{}", s.hle_id), "8.8.8.8")
            .with_cookie(cookie)
            .with_param("kind", "spectrum"),
    );
    let ana_id: i64 = resp
        .text()
        .split("/hedc/ana/")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .and_then(|v| v.parse().ok())
        .unwrap();
    let page = s
        .server
        .handle(&HttpRequest::get(&format!("/hedc/ana/{ana_id}"), "8.8.8.8").with_cookie(cookie));
    let html = page.text();
    let link = html
        .split("href=\"/files/")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("a file link");
    // Anonymous download: denied (download right, §5.5).
    let resp = s
        .server
        .handle(&HttpRequest::get(&format!("/files/{link}"), "8.8.8.8"));
    assert_eq!(resp.status, 403);
    // Authorized download succeeds and streams bytes.
    let resp = s
        .server
        .handle(&HttpRequest::get(&format!("/files/{link}"), "8.8.8.8").with_cookie(cookie));
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.content_type, "application/octet-stream");
    assert!(!resp.body.is_empty());
    // Unknown path 404s.
    let resp = s
        .server
        .handle(&HttpRequest::get("/files/nope/missing.fits", "8.8.8.8").with_cookie(cookie));
    assert_eq!(resp.status, 404);
    s.pl.shutdown();
}

#[test]
fn user_sql_is_ownership_scoped() {
    // §5.5 applies to user-submitted SQL too: a user must not see another
    // user's private tuples through /hedc/sql.
    let s = stack();
    s.dm.create_user("rival", "pw", "sci", hedc_dm::Rights::SCIENTIST)
        .unwrap();
    let (ana_cookie, rival_cookie) = {
        let a = s.server.handle(
            &HttpRequest::post("/hedc/login", "ip-ana")
                .with_param("user", "ana")
                .with_param("password", "pw"),
        );
        let b = s.server.handle(
            &HttpRequest::post("/hedc/login", "ip-rival")
                .with_param("user", "rival")
                .with_param("password", "pw"),
        );
        (a.set_cookie.unwrap(), b.set_cookie.unwrap())
    };
    // ana computes a private analysis.
    s.server.handle(
        &HttpRequest::post(&format!("/hedc/analyze/{}", s.hle_id), "ip-ana")
            .with_cookie(ana_cookie)
            .with_param("kind", "histogram"),
    );
    // ana sees one analysis via SQL; rival sees zero.
    let mine = s.server.handle(
        &HttpRequest::get("/hedc/sql", "ip-ana")
            .with_cookie(ana_cookie)
            .with_param("q", "SELECT COUNT(*) FROM ana"),
    );
    assert!(mine.text().contains("<td>1</td>"), "{}", mine.text());
    let theirs = s.server.handle(
        &HttpRequest::get("/hedc/sql", "ip-rival")
            .with_cookie(rival_cookie)
            .with_param("q", "SELECT COUNT(*) FROM ana"),
    );
    assert!(theirs.text().contains("<td>0</td>"), "{}", theirs.text());
    s.pl.shutdown();
}

#[test]
fn files_route_enforces_tuple_visibility() {
    let s = stack();
    s.dm.create_user("rival", "pw", "sci", hedc_dm::Rights::SCIENTIST)
        .unwrap();
    let ana_cookie = s
        .server
        .handle(
            &HttpRequest::post("/hedc/login", "ip-ana")
                .with_param("user", "ana")
                .with_param("password", "pw"),
        )
        .set_cookie
        .unwrap();
    let rival_cookie = s
        .server
        .handle(
            &HttpRequest::post("/hedc/login", "ip-rival")
                .with_param("user", "rival")
                .with_param("password", "pw"),
        )
        .set_cookie
        .unwrap();
    // ana's private analysis produces files.
    let resp = s.server.handle(
        &HttpRequest::post(&format!("/hedc/analyze/{}", s.hle_id), "ip-ana")
            .with_cookie(ana_cookie)
            .with_param("kind", "spectrum"),
    );
    let ana_id: i64 = resp
        .text()
        .split("/hedc/ana/")
        .nth(1)
        .and_then(|r| r.split('"').next())
        .and_then(|v| v.parse().ok())
        .unwrap();
    let page = s.server.handle(
        &HttpRequest::get(&format!("/hedc/ana/{ana_id}"), "ip-ana").with_cookie(ana_cookie),
    );
    let link = page
        .text()
        .split("href=\"/files/")
        .nth(1)
        .and_then(|r| r.split('"').next().map(str::to_string))
        .unwrap();
    // Owner downloads fine; the rival is denied even with download rights.
    let ok = s
        .server
        .handle(&HttpRequest::get(&format!("/files/{link}"), "ip-ana").with_cookie(ana_cookie));
    assert_eq!(ok.status, 200);
    let denied = s
        .server
        .handle(&HttpRequest::get(&format!("/files/{link}"), "ip-rival").with_cookie(rival_cookie));
    assert_eq!(denied.status, 403, "{}", denied.text());
    s.pl.shutdown();
}

#[test]
fn files_route_serves_the_requested_file_not_the_primary() {
    let s = stack();
    let cookie = s
        .server
        .handle(
            &HttpRequest::post("/hedc/login", "ip-x")
                .with_param("user", "ana")
                .with_param("password", "pw"),
        )
        .set_cookie
        .unwrap();
    let resp = s.server.handle(
        &HttpRequest::post(&format!("/hedc/analyze/{}", s.hle_id), "ip-x")
            .with_cookie(cookie)
            .with_param("kind", "histogram"),
    );
    let ana_id: i64 = resp
        .text()
        .split("/hedc/ana/")
        .nth(1)
        .and_then(|r| r.split('"').next())
        .and_then(|v| v.parse().ok())
        .unwrap();
    let page = s
        .server
        .handle(&HttpRequest::get(&format!("/hedc/ana/{ana_id}"), "ip-x").with_cookie(cookie));
    // The page links several files; the run.log must come back as the log's
    // bytes, not the primary JSON result.
    let html = page.text();
    let log_link = html
        .split("href=\"/files/")
        .filter_map(|r| r.split('"').next())
        .find(|l| l.ends_with("run.log"))
        .expect("log link present");
    let resp = s
        .server
        .handle(&HttpRequest::get(&format!("/files/{log_link}"), "ip-x").with_cookie(cookie));
    assert_eq!(resp.status, 200);
    let body = resp.text();
    assert!(body.starts_with("kind=histogram"), "{body}");
}

#[test]
fn flight_recorder_trace_pages_serve_waterfalls() {
    let s = stack();
    // With a 1 us pin threshold this request is guaranteed to pin, so the
    // recorder has at least one trace for the pages below to serve. The
    // recorder is global: restore the threshold before asserting.
    let recorder = hedc_obs::recorder();
    let prev = recorder.pin_threshold_us();
    recorder.set_pin_threshold_us(1);
    let resp = s
        .server
        .handle(&HttpRequest::get("/hedc/catalogs", "1.1.1.1"));
    recorder.set_pin_threshold_us(prev);
    assert_eq!(resp.status, 200);

    let pinned = recorder.pinned();
    assert!(
        !pinned.is_empty(),
        "request did not pin at a 1 us threshold"
    );
    let trace_id = pinned[0].trace_id;

    let resp = s
        .server
        .handle(&HttpRequest::get("/hedc/traces", "1.1.1.1"));
    assert_eq!(resp.status, 200);
    let html = resp.text();
    assert!(html.contains("Flight recorder"), "{html}");
    assert!(html.contains(&format!("/hedc/trace/{trace_id}")), "{html}");

    let resp = s.server.handle(&HttpRequest::get(
        &format!("/hedc/trace/{trace_id}"),
        "1.1.1.1",
    ));
    assert_eq!(resp.status, 200);
    let html = resp.text();
    assert!(html.contains(&format!("Trace {trace_id}")), "{html}");

    let resp = s.server.handle(&HttpRequest::get(
        &format!("/hedc/trace/{trace_id}.json"),
        "1.1.1.1",
    ));
    assert_eq!(resp.status, 200);
    assert_eq!(resp.content_type, "application/json");
    let body = resp.text();
    assert!(body.contains("\"breakdown\""), "{body}");
    assert!(body.contains("\"queue_us\""), "{body}");

    // Unknown / malformed ids are 404s, not 500s.
    let resp = s
        .server
        .handle(&HttpRequest::get("/hedc/trace/notanumber", "1.1.1.1"));
    assert_eq!(resp.status, 404);
    s.pl.shutdown();
}

#[test]
fn stats_page_renders_the_processing_section() {
    let s = stack();
    // The PL registers its reuse/coalescing metrics at start, so the
    // section renders (zero-valued) before any request flows.
    let resp = s.server.handle(&HttpRequest::get("/hedc/stats", "9.9.9.9"));
    assert_eq!(resp.status, 200);
    let html = resp.text();
    assert!(html.contains("== processing =="), "{html}");
    assert!(html.contains("reuse"), "{html}");
    assert!(html.contains("coalesce"), "{html}");
    assert!(html.contains("inflight_groups"), "{html}");
    assert!(html.contains("queue_sessions"), "{html}");
    s.pl.shutdown();
}
