//! Property-based tests: the invariants the rest of HEDC relies on.

use hedc_wavelet::{
    analyze, analyze_2d, decode_prefix, encode_signal, prefixes, rmse, synthesize, synthesize_2d,
    PartitionedView,
};
use proptest::prelude::*;

fn arb_signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1000.0f64..1000.0, 0..max_len)
}

proptest! {
    /// Analysis followed by full synthesis is the identity (within fp eps).
    #[test]
    fn haar_roundtrip_exact(signal in arb_signal(300)) {
        let dec = analyze(&signal);
        let back = synthesize(&dec, usize::MAX);
        prop_assert_eq!(back.len(), signal.len());
        for (a, b) in signal.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    /// Coefficient count equals input length (critically sampled).
    #[test]
    fn critically_sampled(signal in arb_signal(300)) {
        let dec = analyze(&signal);
        prop_assert_eq!(dec.coeff_count(), signal.len());
    }

    /// Progressive reconstruction error is monotone non-increasing in the
    /// number of detail levels used.
    #[test]
    fn progressive_error_monotone(signal in arb_signal(200)) {
        let dec = analyze(&signal);
        let mut prev = f64::INFINITY;
        for lvl in 0..=dec.levels() {
            let err = rmse(&signal, &synthesize(&dec, lvl));
            prop_assert!(err <= prev + 1e-6);
            prev = err;
        }
    }

    /// Encode/decode respects the quantization-step error bound.
    #[test]
    fn encode_error_bounded(signal in arb_signal(256), step in 0.01f64..10.0) {
        let stream = encode_signal(&signal, step);
        let back = decode_prefix(&stream, usize::MAX).unwrap();
        prop_assert_eq!(back.len(), signal.len());
        // Orthonormal transform: per-coefficient error ≤ step/2 bounds the
        // overall RMSE by step/2 (factor 2 margin for fp noise).
        prop_assert!(rmse(&signal, &back) <= step);
    }

    /// Every prefix boundary decodes without error.
    #[test]
    fn all_prefixes_decode(signal in arb_signal(200)) {
        let stream = encode_signal(&signal, 0.5);
        let offsets = prefixes(&stream).unwrap();
        for (k, &end) in offsets.iter().enumerate() {
            let out = decode_prefix(&stream[..end], k).unwrap();
            prop_assert_eq!(out.len(), signal.len());
        }
    }

    /// 2-D roundtrip over arbitrary (small) shapes.
    #[test]
    fn haar_2d_roundtrip(w in 1usize..12, h in 1usize..12, seed in any::<u64>()) {
        let mut x = seed | 1;
        let pixels: Vec<f64> = (0..w * h).map(|_| {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            (x % 1000) as f64 - 500.0
        }).collect();
        let dec = analyze_2d(&pixels, w, h, 5);
        let back = synthesize_2d(&dec, 0);
        for (a, b) in pixels.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// A partitioned view reconstructs any range to within quantization.
    #[test]
    fn partitioned_range_correct(
        signal in arb_signal(400),
        plen in 1usize..80,
        a in 0usize..400,
        b in 0usize..400,
    ) {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let view = PartitionedView::build(&signal, plen, 0.25);
        let got = view.reconstruct_range(a, b, usize::MAX).unwrap();
        let end = b.min(signal.len());
        let start = a.min(end);
        prop_assert_eq!(got.len(), end - start);
        if end > start {
            prop_assert!(rmse(&signal[start..end], &got) <= 0.5);
        }
    }
}
