//! Orthonormal Haar wavelet transforms, 1-D and 2-D, for arbitrary lengths.
//!
//! HEDC preprocesses raw data "to construct wavelet compressed range
//! partitioned views" (§3.4) and encodes large materialized views "using a
//! wavelet transformation" decoded at the client (§6.3). The Haar basis is
//! the natural choice for count/intensity series: averages and differences,
//! exactly reconstructible, and each dropped detail level halves resolution.
//!
//! Arbitrary lengths are handled without padding: each analysis step pairs
//! elements; an odd trailing element is carried into the approximation band
//! unchanged. Synthesis mirrors this, so reconstruction is exact for every
//! length, not just powers of two.

const SQRT2: f64 = std::f64::consts::SQRT_2;

/// One analysis step: split `input` into (approximation, detail).
/// `approx.len() == input.len().div_ceil(2)`, `detail.len() == input.len()/2`.
pub fn analyze_step(input: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let pairs = input.len() / 2;
    let mut approx = Vec::with_capacity(input.len().div_ceil(2));
    let mut detail = Vec::with_capacity(pairs);
    for i in 0..pairs {
        let x = input[2 * i];
        let y = input[2 * i + 1];
        approx.push((x + y) / SQRT2);
        detail.push((x - y) / SQRT2);
    }
    if input.len() % 2 == 1 {
        approx.push(input[input.len() - 1]);
    }
    (approx, detail)
}

/// One synthesis step: reassemble a signal of length `out_len` from its
/// approximation and detail bands. Inverse of [`analyze_step`].
pub fn synthesize_step(approx: &[f64], detail: &[f64], out_len: usize) -> Vec<f64> {
    let pairs = out_len / 2;
    assert_eq!(detail.len(), pairs, "detail band length mismatch");
    assert_eq!(
        approx.len(),
        out_len.div_ceil(2),
        "approx band length mismatch"
    );
    let mut out = Vec::with_capacity(out_len);
    for i in 0..pairs {
        let a = approx[i];
        let d = detail[i];
        out.push((a + d) / SQRT2);
        out.push((a - d) / SQRT2);
    }
    if out_len % 2 == 1 {
        out.push(approx[pairs]);
    }
    out
}

/// A fully decomposed 1-D signal: the coarsest approximation plus detail
/// bands ordered **coarsest-first** (so a prefix of `details` refines
/// progressively).
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Original signal length.
    pub len: usize,
    /// Coarsest approximation band (length 1 for len ≥ 1).
    pub approx: Vec<f64>,
    /// Detail bands, coarsest first. `details[0]` is the smallest band.
    pub details: Vec<Vec<f64>>,
}

impl Decomposition {
    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.details.len()
    }

    /// Count of all coefficients (== original length).
    pub fn coeff_count(&self) -> usize {
        self.approx.len() + self.details.iter().map(Vec::len).sum::<usize>()
    }
}

/// Full multi-level analysis of a signal.
pub fn analyze(signal: &[f64]) -> Decomposition {
    let len = signal.len();
    let mut details_fine_first: Vec<Vec<f64>> = Vec::new();
    let mut current = signal.to_vec();
    while current.len() > 1 {
        let (a, d) = analyze_step(&current);
        details_fine_first.push(d);
        current = a;
    }
    details_fine_first.reverse();
    Decomposition {
        len,
        approx: current,
        details: details_fine_first,
    }
}

/// Full synthesis: exact reconstruction when all detail bands are present.
///
/// `use_levels` caps how many detail bands (coarsest-first) participate;
/// omitted bands are treated as zero, yielding a progressively smoothed
/// approximation — this is what the StreamCorder renders while coefficients
/// are still downloading. Pass `usize::MAX` for exact reconstruction.
pub fn synthesize(dec: &Decomposition, use_levels: usize) -> Vec<f64> {
    // Recompute the chain of band lengths from the original length.
    let mut lengths = Vec::new(); // lengths of signals at each level, fine->coarse
    let mut n = dec.len;
    while n > 1 {
        lengths.push(n);
        n = n.div_ceil(2);
    }
    // lengths: [len, len/2..., 2]; details correspond coarsest-first, so
    // details[k] reconstructs the signal of length lengths[levels-1-k].
    let mut current = dec.approx.clone();
    let levels = dec.details.len();
    for (k, detail) in dec.details.iter().enumerate() {
        let out_len = lengths[levels - 1 - k];
        if k < use_levels {
            current = synthesize_step(&current, detail, out_len);
        } else {
            let zeros = vec![0.0; out_len / 2];
            current = synthesize_step(&current, &zeros, out_len);
        }
    }
    current
}

// ---------------------------------------------------------------------------
// 2-D (separable) transform for images
// ---------------------------------------------------------------------------

/// A single-level 2-D decomposition into LL/LH/HL/HH quadrant bands, stored
/// repeatedly per level (used for progressive image preview).
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition2d {
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Number of levels applied.
    pub levels: usize,
    /// Coefficient plane, same size as the image, bands packed in place
    /// (standard mallat layout: LL in the top-left corner after each level).
    pub plane: Vec<f64>,
}

fn transform_rows(plane: &mut [f64], width: usize, rows: usize, cols: usize, inverse: bool) {
    let mut buf = Vec::with_capacity(cols);
    for r in 0..rows {
        let row = &plane[r * width..r * width + cols];
        if inverse {
            let half = cols.div_ceil(2);
            let rebuilt = synthesize_step(&row[..half], &row[half..half + cols / 2], cols);
            buf.clear();
            buf.extend_from_slice(&rebuilt);
        } else {
            let (a, d) = analyze_step(row);
            buf.clear();
            buf.extend_from_slice(&a);
            buf.extend_from_slice(&d);
        }
        plane[r * width..r * width + cols].copy_from_slice(&buf);
    }
}

fn transform_cols(plane: &mut [f64], width: usize, rows: usize, cols: usize, inverse: bool) {
    let mut col = Vec::with_capacity(rows);
    for c in 0..cols {
        col.clear();
        for r in 0..rows {
            col.push(plane[r * width + c]);
        }
        let rebuilt = if inverse {
            let half = rows.div_ceil(2);
            synthesize_step(&col[..half], &col[half..half + rows / 2], rows)
        } else {
            let (a, d) = analyze_step(&col);
            let mut v = a;
            v.extend_from_slice(&d);
            v
        };
        for (r, v) in rebuilt.iter().enumerate() {
            plane[r * width + c] = *v;
        }
    }
}

/// Multi-level 2-D analysis (Mallat layout).
pub fn analyze_2d(pixels: &[f64], width: usize, height: usize, levels: usize) -> Decomposition2d {
    assert_eq!(pixels.len(), width * height, "pixel buffer size mismatch");
    let mut plane = pixels.to_vec();
    let (mut cols, mut rows) = (width, height);
    let mut applied = 0usize;
    for _ in 0..levels {
        if cols < 2 && rows < 2 {
            break;
        }
        if cols >= 2 {
            transform_rows(&mut plane, width, rows, cols, false);
        }
        if rows >= 2 {
            transform_cols(&mut plane, width, rows, cols, false);
        }
        cols = cols.div_ceil(2);
        rows = rows.div_ceil(2);
        applied += 1;
    }
    Decomposition2d {
        width,
        height,
        levels: applied,
        plane,
    }
}

/// Full 2-D synthesis, optionally zeroing the finest `drop_levels` detail
/// bands first (progressive preview: `drop_levels = levels` gives the
/// coarsest thumbnail, `0` the exact image).
pub fn synthesize_2d(dec: &Decomposition2d, drop_levels: usize) -> Vec<f64> {
    let mut plane = dec.plane.clone();
    // Band sizes per level, computed top-down.
    let mut sizes = Vec::with_capacity(dec.levels);
    let (mut cols, mut rows) = (dec.width, dec.height);
    for _ in 0..dec.levels {
        sizes.push((cols, rows));
        cols = cols.div_ceil(2);
        rows = rows.div_ceil(2);
    }
    // Zero out detail regions of the finest `drop_levels` levels.
    for (lvl, &(c, r)) in sizes.iter().enumerate().take(drop_levels.min(dec.levels)) {
        let (ac, ar) = (c.div_ceil(2), r.div_ceil(2));
        // Everything inside the c×r region except the ac×ar LL corner is
        // detail for this level.
        for row in 0..r {
            for col in 0..c {
                if row >= ar || col >= ac {
                    plane[row * dec.width + col] = 0.0;
                }
            }
        }
        let _ = lvl;
    }
    // Inverse, coarsest level first.
    for &(c, r) in sizes.iter().rev() {
        if r >= 2 {
            transform_cols(&mut plane, dec.width, r, c, true);
        }
        if c >= 2 {
            transform_rows(&mut plane, dec.width, r, c, true);
        }
    }
    plane
}

/// Root-mean-square error between two equal-length signals (used by tests
/// and the approximation-quality reports).
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum();
    (sum / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn single_step_roundtrip_even_odd() {
        for n in [2usize, 3, 4, 7, 8, 17] {
            let signal: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 10.0).collect();
            let (a, d) = analyze_step(&signal);
            let back = synthesize_step(&a, &d, n);
            assert!(close(&signal, &back, 1e-10), "n={n}");
        }
    }

    #[test]
    fn full_roundtrip_various_lengths() {
        for n in [1usize, 2, 3, 5, 16, 100, 255, 256, 1000] {
            let signal: Vec<f64> = (0..n).map(|i| ((i * 37) % 91) as f64 - 45.0).collect();
            let dec = analyze(&signal);
            assert_eq!(dec.coeff_count(), n);
            let back = synthesize(&dec, usize::MAX);
            assert!(close(&signal, &back, 1e-9), "n={n}");
        }
    }

    #[test]
    fn energy_preserved() {
        // Orthonormal transform preserves the L2 norm.
        let signal: Vec<f64> = (0..128).map(|i| ((i * 13) % 31) as f64).collect();
        let dec = analyze(&signal);
        let e_sig: f64 = signal.iter().map(|x| x * x).sum();
        let e_coef: f64 = dec.approx.iter().map(|x| x * x).sum::<f64>()
            + dec
                .details
                .iter()
                .flat_map(|d| d.iter())
                .map(|x| x * x)
                .sum::<f64>();
        assert!((e_sig - e_coef).abs() < 1e-6 * e_sig.max(1.0));
    }

    #[test]
    fn progressive_levels_monotonically_improve() {
        let signal: Vec<f64> = (0..256)
            .map(|i| (i as f64 / 13.0).sin() * 50.0 + (i as f64 / 3.0).cos() * 5.0)
            .collect();
        let dec = analyze(&signal);
        let mut prev_err = f64::INFINITY;
        for lvl in 0..=dec.levels() {
            let approx = synthesize(&dec, lvl);
            let err = rmse(&signal, &approx);
            assert!(
                err <= prev_err + 1e-9,
                "error should not increase: lvl {lvl}, {err} > {prev_err}"
            );
            prev_err = err;
        }
        assert!(prev_err < 1e-9, "full reconstruction exact");
    }

    #[test]
    fn zero_levels_is_mean_like() {
        // With no detail at all, a constant signal reconstructs exactly.
        let signal = vec![7.5; 64];
        let dec = analyze(&signal);
        let approx = synthesize(&dec, 0);
        assert!(close(&signal, &approx, 1e-9));
    }

    #[test]
    fn empty_and_single() {
        let dec = analyze(&[]);
        assert_eq!(synthesize(&dec, usize::MAX), Vec::<f64>::new());
        let dec = analyze(&[42.0]);
        assert_eq!(dec.levels(), 0);
        assert_eq!(synthesize(&dec, usize::MAX), vec![42.0]);
    }

    #[test]
    fn roundtrip_2d_various_shapes() {
        for (w, h) in [(4usize, 4usize), (8, 8), (7, 5), (16, 3), (1, 9), (31, 17)] {
            let pixels: Vec<f64> = (0..w * h).map(|i| ((i * 7) % 23) as f64).collect();
            let dec = analyze_2d(&pixels, w, h, 4);
            let back = synthesize_2d(&dec, 0);
            assert!(close(&pixels, &back, 1e-8), "{w}x{h}");
        }
    }

    #[test]
    fn progressive_2d_preview_improves() {
        let (w, h) = (32usize, 32usize);
        let pixels: Vec<f64> = (0..w * h)
            .map(|i| {
                let (x, y) = ((i % w) as f64, (i / w) as f64);
                (-((x - 16.0).powi(2) + (y - 16.0).powi(2)) / 40.0).exp() * 100.0
            })
            .collect();
        let dec = analyze_2d(&pixels, w, h, 3);
        let coarse = synthesize_2d(&dec, 3);
        let mid = synthesize_2d(&dec, 1);
        let full = synthesize_2d(&dec, 0);
        let e_coarse = rmse(&pixels, &coarse);
        let e_mid = rmse(&pixels, &mid);
        let e_full = rmse(&pixels, &full);
        assert!(e_full < 1e-8);
        assert!(e_mid < e_coarse);
        // The coarse preview still captures the total flux approximately.
        let sum_orig: f64 = pixels.iter().sum();
        let sum_coarse: f64 = coarse.iter().sum();
        assert!((sum_orig - sum_coarse).abs() < 1e-6 * sum_orig.abs().max(1.0));
    }

    #[test]
    fn analyze_2d_respects_level_cap() {
        let pixels = vec![1.0; 4];
        let dec = analyze_2d(&pixels, 2, 2, 99);
        assert_eq!(dec.levels, 1);
    }
}
