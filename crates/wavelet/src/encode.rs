//! Progressive, quantized serialization of wavelet decompositions.
//!
//! The StreamCorder downloads *prefixes* of these streams: the header plus
//! the coarse bands give an immediate approximate rendering, and each
//! further chunk refines it (§6.3: "the client works on approximated and
//! aggregated versions of the original data"). The byte format is therefore
//! chunked per level, each chunk independently decodable and
//! length-prefixed.
//!
//! Detail coefficients are dead-zone quantized and sparse-coded (most Haar
//! details of smooth count series quantize to zero), which is where the
//! compression comes from.

use crate::transform::{analyze, synthesize, Decomposition};
use std::fmt;

/// Errors from decoding a progressive stream.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// Stream too short / structurally invalid.
    Truncated(&'static str),
    /// Magic or version mismatch.
    BadHeader,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated(what) => write!(f, "truncated wavelet stream: {what}"),
            CodecError::BadHeader => write!(f, "bad wavelet stream header"),
        }
    }
}

impl std::error::Error for CodecError {}

const MAGIC: &[u8; 4] = b"HWV1";

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.data.len() {
            return Err(CodecError::Truncated(what));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
}

/// Sparse-code one detail band: (varint run of zeros, zig-zag varint value)*.
fn encode_band(out: &mut Vec<u8>, band: &[f64], step: f64) {
    let start = out.len();
    put_u32(out, 0); // placeholder for chunk byte length
    let mut zeros: u64 = 0;
    let mut nonzero: u64 = 0;
    for &d in band {
        let q = (d / step).round() as i64;
        if q == 0 {
            zeros += 1;
        } else {
            varint(out, zeros);
            let zz = ((q << 1) ^ (q >> 63)) as u64;
            varint(out, zz);
            zeros = 0;
            nonzero += 1;
        }
    }
    let _ = nonzero;
    // Trailing zeros are implicit (band length is known to the decoder).
    let chunk_len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&chunk_len.to_le_bytes());
}

fn decode_band(r: &mut Reader<'_>, len: usize, step: f64) -> Result<Vec<f64>, CodecError> {
    let chunk_len = r.u32("band length")? as usize;
    let body = r.take(chunk_len, "band body")?;
    let mut band = vec![0.0; len];
    let mut pos = 0usize;
    let mut idx = 0usize;
    while pos < body.len() {
        let zeros = devarint(body, &mut pos)?;
        let zz = devarint(body, &mut pos)?;
        idx += zeros as usize;
        if idx >= len {
            return Err(CodecError::Truncated("band index overflow"));
        }
        let q = ((zz >> 1) as i64) ^ -((zz & 1) as i64);
        band[idx] = q as f64 * step;
        idx += 1;
    }
    Ok(band)
}

fn varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn devarint(data: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos).ok_or(CodecError::Truncated("varint"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::Truncated("varint overflow"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encode a signal as a progressive wavelet stream.
///
/// `quant_step` trades size for fidelity: detail coefficients are rounded to
/// multiples of it. RMSE of the full-prefix reconstruction is bounded by
/// `quant_step/2` per coefficient (≈ `quant_step/2` overall for orthonormal
/// Haar).
pub fn encode(signal: &[f64], quant_step: f64) -> Vec<u8> {
    assert!(quant_step > 0.0, "quantization step must be positive");
    let dec = analyze(signal);
    let mut out = Vec::with_capacity(signal.len() + 64);
    out.extend_from_slice(MAGIC);
    put_u64(&mut out, signal.len() as u64);
    put_f64(&mut out, quant_step);
    put_u32(&mut out, dec.details.len() as u32);
    // Approximation band: stored exact (it is tiny — one value).
    put_u32(&mut out, dec.approx.len() as u32);
    for a in &dec.approx {
        put_f64(&mut out, *a);
    }
    // Detail bands coarsest-first: a byte prefix = a resolution level.
    for band in &dec.details {
        encode_band(&mut out, band, quant_step);
    }
    out
}

/// Byte offsets of each progressive prefix: `prefixes()[k]` is the number of
/// bytes needed to decode with `k` detail levels. The last entry is the full
/// stream length.
pub fn prefixes(stream: &[u8]) -> Result<Vec<usize>, CodecError> {
    let mut r = Reader {
        data: stream,
        pos: 0,
    };
    if r.take(4, "magic")? != MAGIC {
        return Err(CodecError::BadHeader);
    }
    let _len = r.u64("length")?;
    let _step = r.f64("step")?;
    let levels = r.u32("levels")? as usize;
    let alen = r.u32("approx length")? as usize;
    r.take(alen * 8, "approx band")?;
    let mut out = Vec::with_capacity(levels + 1);
    out.push(r.pos);
    for _ in 0..levels {
        let chunk = r.u32("band length")? as usize;
        r.take(chunk, "band body")?;
        out.push(r.pos);
    }
    Ok(out)
}

/// Decode a (possibly truncated-at-a-chunk-boundary) stream prefix,
/// reconstructing with however many detail levels are present, capped at
/// `max_levels`.
pub fn decode_prefix(stream: &[u8], max_levels: usize) -> Result<Vec<f64>, CodecError> {
    let mut r = Reader {
        data: stream,
        pos: 0,
    };
    if r.take(4, "magic")? != MAGIC {
        return Err(CodecError::BadHeader);
    }
    let len = r.u64("length")? as usize;
    let step = r.f64("step")?;
    let levels = r.u32("levels")? as usize;
    let alen = r.u32("approx length")? as usize;
    if len > 0 && alen == 0 {
        return Err(CodecError::Truncated("empty approx band"));
    }
    let mut approx = Vec::with_capacity(alen);
    for _ in 0..alen {
        approx.push(r.f64("approx coeff")?);
    }
    // Band lengths: derive from original length, coarsest-first.
    let mut lengths = Vec::new();
    let mut n = len;
    while n > 1 {
        lengths.push(n / 2); // detail band size for this level
        n = n.div_ceil(2);
    }
    lengths.reverse(); // coarsest-first
    let mut details = Vec::with_capacity(levels);
    for (k, &band_len) in lengths.iter().enumerate().take(levels) {
        if k >= max_levels || r.pos >= stream.len() {
            break;
        }
        details.push(decode_band(&mut r, band_len, step)?);
    }
    let present = details.len();
    // Pad with zero bands so `synthesize` sees the full structure.
    for &band_len in lengths.iter().skip(present) {
        details.push(vec![0.0; band_len]);
    }
    let _ = present;
    let dec = Decomposition {
        len,
        approx,
        details,
    };
    // Bands beyond the downloaded prefix were padded with zeros above, so
    // synthesizing with every band gives the best available approximation.
    Ok(synthesize(&dec, usize::MAX))
}

/// Summary of an encoded stream (for catalogs and tests).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamInfo {
    /// Original signal length.
    pub signal_len: usize,
    /// Quantization step.
    pub quant_step: f64,
    /// Detail levels available.
    pub levels: usize,
    /// Total stream bytes.
    pub bytes: usize,
}

/// Parse stream metadata without decoding coefficients.
pub fn info(stream: &[u8]) -> Result<StreamInfo, CodecError> {
    let mut r = Reader {
        data: stream,
        pos: 0,
    };
    if r.take(4, "magic")? != MAGIC {
        return Err(CodecError::BadHeader);
    }
    let signal_len = r.u64("length")? as usize;
    let quant_step = r.f64("step")?;
    let levels = r.u32("levels")? as usize;
    Ok(StreamInfo {
        signal_len,
        quant_step,
        levels,
        bytes: stream.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::rmse;

    fn smooth_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 / 40.0).sin() * 100.0 + (i as f64 / 7.0).cos() * 3.0)
            .collect()
    }

    #[test]
    fn full_decode_bounded_by_quantization() {
        let signal = smooth_signal(1000);
        let step = 0.5;
        let stream = encode(&signal, step);
        let back = decode_prefix(&stream, usize::MAX).unwrap();
        assert_eq!(back.len(), 1000);
        assert!(
            rmse(&signal, &back) <= step,
            "rmse {}",
            rmse(&signal, &back)
        );
    }

    #[test]
    fn compresses_smooth_series() {
        let signal = smooth_signal(4096);
        let stream = encode(&signal, 0.5);
        assert!(
            stream.len() < 4096 * 8 / 4,
            "stream {} bytes vs raw {}",
            stream.len(),
            4096 * 8
        );
    }

    #[test]
    fn prefix_decoding_improves_with_levels() {
        let signal = smooth_signal(2048);
        let stream = encode(&signal, 0.25);
        let offsets = prefixes(&stream).unwrap();
        assert_eq!(*offsets.last().unwrap(), stream.len());
        let mut prev_err = f64::INFINITY;
        for (k, &end) in offsets.iter().enumerate() {
            let approx = decode_prefix(&stream[..end], k).unwrap();
            let err = rmse(&signal, &approx);
            assert!(err <= prev_err + 1e-9, "level {k}: {err} > {prev_err}");
            prev_err = err;
        }
        assert!(prev_err <= 0.25);
    }

    #[test]
    fn coarse_prefix_is_much_smaller() {
        let signal = smooth_signal(8192);
        let stream = encode(&signal, 0.5);
        let offsets = prefixes(&stream).unwrap();
        // Half the levels should need far less than half the bytes.
        let mid = offsets[offsets.len() / 2];
        assert!(mid * 4 < stream.len(), "mid {} full {}", mid, stream.len());
    }

    #[test]
    fn empty_and_singleton_signals() {
        let stream = encode(&[], 1.0);
        assert_eq!(
            decode_prefix(&stream, usize::MAX).unwrap(),
            Vec::<f64>::new()
        );
        let stream = encode(&[5.0], 1.0);
        assert_eq!(decode_prefix(&stream, usize::MAX).unwrap(), vec![5.0]);
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(decode_prefix(b"nope", 1), Err(CodecError::BadHeader));
        assert!(matches!(
            decode_prefix(b"HW", 1),
            Err(CodecError::Truncated(_))
        ));
    }

    #[test]
    fn truncated_mid_band_rejected() {
        let stream = encode(&smooth_signal(128), 0.5);
        let offsets = prefixes(&stream).unwrap();
        // Cut in the middle of the second band's body.
        let cut = (offsets[1] + offsets[2]) / 2;
        assert!(decode_prefix(&stream[..cut], usize::MAX).is_err());
    }

    #[test]
    fn info_reports_metadata() {
        let stream = encode(&smooth_signal(300), 0.75);
        let i = info(&stream).unwrap();
        assert_eq!(i.signal_len, 300);
        assert_eq!(i.quant_step, 0.75);
        assert!(i.levels > 0);
        assert_eq!(i.bytes, stream.len());
    }

    #[test]
    fn spiky_signal_roundtrips() {
        // A flare-like spike train is the realistic workload.
        let mut signal = vec![0.0; 512];
        for (i, v) in signal.iter_mut().enumerate() {
            if i % 97 == 13 {
                *v = 5000.0;
            }
        }
        let stream = encode(&signal, 0.1);
        let back = decode_prefix(&stream, usize::MAX).unwrap();
        assert!(rmse(&signal, &back) <= 0.1);
        // Peak positions survive.
        assert!(back[13] > 4000.0);
    }
}
