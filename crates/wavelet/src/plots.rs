//! Density and extent plots for interactive catalog visualization.
//!
//! §6.3: catalogs are reorganized "as a number of multi-dimensional arrays"
//! and presented "in a compact and efficient manner using density (number of
//! tuples per bin) and extent (location and extent of each tuple or cluster
//! of tuples) plots". These structures are what the StreamCorder renders;
//! they are built server-side over a catalog scan, optionally wavelet
//! compressed (see [`crate::encode`]) before shipping to the client.

/// One plot axis: a named value range divided into equal bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Attribute name (e.g. `time_start`, `energy_kev`).
    pub name: String,
    /// Inclusive lower bound of the plotted range.
    pub min: f64,
    /// Exclusive upper bound of the plotted range.
    pub max: f64,
    /// Number of bins.
    pub bins: usize,
}

impl Axis {
    /// Create an axis. `max` must exceed `min` and `bins` must be non-zero.
    pub fn new(name: impl Into<String>, min: f64, max: f64, bins: usize) -> Self {
        assert!(max > min, "axis range must be non-empty");
        assert!(bins > 0, "axis must have at least one bin");
        Axis {
            name: name.into(),
            min,
            max,
            bins,
        }
    }

    /// Bin index for a value, or `None` if outside the range.
    pub fn bin_of(&self, v: f64) -> Option<usize> {
        if !v.is_finite() || v < self.min || v >= self.max {
            return None;
        }
        let t = (v - self.min) / (self.max - self.min);
        Some(((t * self.bins as f64) as usize).min(self.bins - 1))
    }

    /// Center value of a bin.
    pub fn bin_center(&self, bin: usize) -> f64 {
        let w = (self.max - self.min) / self.bins as f64;
        self.min + (bin as f64 + 0.5) * w
    }
}

/// A 2-D histogram: tuples per (x, y) bin.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityPlot {
    /// X axis.
    pub x: Axis,
    /// Y axis.
    pub y: Axis,
    /// Row-major counts (`y.bins` rows × `x.bins` columns).
    pub counts: Vec<u64>,
    /// Tuples that fell outside the plotted ranges.
    pub out_of_range: u64,
}

impl DensityPlot {
    /// Build from an iterator of (x, y) points.
    pub fn build(x: Axis, y: Axis, points: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let mut counts = vec![0u64; x.bins * y.bins];
        let mut out_of_range = 0u64;
        for (px, py) in points {
            match (x.bin_of(px), y.bin_of(py)) {
                (Some(bx), Some(by)) => counts[by * x.bins + bx] += 1,
                _ => out_of_range += 1,
            }
        }
        DensityPlot {
            x,
            y,
            counts,
            out_of_range,
        }
    }

    /// Count in one bin.
    pub fn count(&self, bx: usize, by: usize) -> u64 {
        self.counts[by * self.x.bins + bx]
    }

    /// Total in-range tuples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Maximum bin count (for color scaling).
    pub fn peak(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// The density surface as f64s, ready for wavelet encoding and
    /// progressive shipping to the client.
    pub fn as_signal(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }
}

/// Location and extent of tuples along one axis: per x-bin, the min/max/count
/// of a second attribute. This is the "extent plot".
#[derive(Debug, Clone, PartialEq)]
pub struct ExtentPlot {
    /// Binned axis.
    pub x: Axis,
    /// Per-bin extent of the measured attribute: `(min, max, count)`;
    /// empty bins hold `(inf, -inf, 0)`.
    pub extents: Vec<(f64, f64, u64)>,
    /// Tuples outside the x range.
    pub out_of_range: u64,
}

impl ExtentPlot {
    /// Build from (x, value) pairs.
    pub fn build(x: Axis, points: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let mut extents = vec![(f64::INFINITY, f64::NEG_INFINITY, 0u64); x.bins];
        let mut out_of_range = 0u64;
        for (px, v) in points {
            match x.bin_of(px) {
                Some(bx) => {
                    let e = &mut extents[bx];
                    e.0 = e.0.min(v);
                    e.1 = e.1.max(v);
                    e.2 += 1;
                }
                None => out_of_range += 1,
            }
        }
        ExtentPlot {
            x,
            extents,
            out_of_range,
        }
    }

    /// Bins that contain at least one tuple.
    pub fn occupied(&self) -> usize {
        self.extents.iter().filter(|e| e.2 > 0).count()
    }
}

/// Clusters of adjacent occupied bins in an extent plot — the "cluster of
/// tuples" rendering for dense catalogs. Returns `(start_bin, end_bin
/// inclusive, total count, value min, value max)` per cluster.
pub fn clusters(plot: &ExtentPlot) -> Vec<(usize, usize, u64, f64, f64)> {
    let mut out = Vec::new();
    let mut current: Option<(usize, usize, u64, f64, f64)> = None;
    for (i, &(lo, hi, n)) in plot.extents.iter().enumerate() {
        if n == 0 {
            if let Some(c) = current.take() {
                out.push(c);
            }
            continue;
        }
        current = Some(match current {
            None => (i, i, n, lo, hi),
            Some((s, _, cn, clo, chi)) => (s, i, cn + n, clo.min(lo), chi.max(hi)),
        });
    }
    if let Some(c) = current {
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_binning_edges() {
        let a = Axis::new("t", 0.0, 10.0, 10);
        assert_eq!(a.bin_of(0.0), Some(0));
        assert_eq!(a.bin_of(9.9999), Some(9));
        assert_eq!(a.bin_of(10.0), None);
        assert_eq!(a.bin_of(-0.001), None);
        assert_eq!(a.bin_of(f64::NAN), None);
        assert_eq!(a.bin_center(0), 0.5);
        assert_eq!(a.bin_center(9), 9.5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn degenerate_axis_panics() {
        Axis::new("t", 5.0, 5.0, 10);
    }

    #[test]
    fn density_counts_and_out_of_range() {
        let points = vec![(1.0, 1.0), (1.2, 1.1), (8.0, 9.0), (99.0, 1.0)];
        let p = DensityPlot::build(
            Axis::new("x", 0.0, 10.0, 10),
            Axis::new("y", 0.0, 10.0, 10),
            points,
        );
        assert_eq!(p.count(1, 1), 2);
        assert_eq!(p.count(8, 9), 1);
        assert_eq!(p.total(), 3);
        assert_eq!(p.out_of_range, 1);
        assert_eq!(p.peak(), 2);
        assert_eq!(p.as_signal().len(), 100);
    }

    #[test]
    fn extent_tracks_min_max() {
        let points = vec![(0.5, 3.0), (0.6, 12.0), (5.5, -2.0)];
        let p = ExtentPlot::build(Axis::new("t", 0.0, 10.0, 10), points);
        assert_eq!(p.extents[0], (3.0, 12.0, 2));
        assert_eq!(p.extents[5], (-2.0, -2.0, 1));
        assert_eq!(p.occupied(), 2);
    }

    #[test]
    fn clusters_merge_adjacent_bins() {
        let points = vec![
            (0.5, 1.0),
            (1.5, 2.0),
            (2.5, 3.0), // bins 0,1,2 -> one cluster
            (7.5, 9.0), // bin 7 -> second cluster
        ];
        let p = ExtentPlot::build(Axis::new("t", 0.0, 10.0, 10), points);
        let cs = clusters(&p);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0], (0, 2, 3, 1.0, 3.0));
        assert_eq!(cs[1], (7, 7, 1, 9.0, 9.0));
    }

    #[test]
    fn empty_plot() {
        let p = DensityPlot::build(
            Axis::new("x", 0.0, 1.0, 4),
            Axis::new("y", 0.0, 1.0, 4),
            std::iter::empty(),
        );
        assert_eq!(p.total(), 0);
        assert_eq!(p.peak(), 0);
        let e = ExtentPlot::build(Axis::new("t", 0.0, 1.0, 4), std::iter::empty());
        assert_eq!(clusters(&e), vec![]);
    }
}
