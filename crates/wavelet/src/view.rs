//! Wavelet-compressed, range-partitioned views.
//!
//! The paper's key latency trick (§3.4): at load time the raw data is
//! "partitioned" and "wavelet encoded ... to allow the data processing
//! routines to work on a fraction of the original data". A
//! [`PartitionedView`] slices a long series (counts per time bin, spectrogram
//! rows, ...) into fixed-length partitions, each an independently decodable
//! progressive stream. A range query touches only the overlapping
//! partitions, and an approximation level caps how many bytes of each it
//! needs — both dimensions of "fraction of the original data".

use crate::encode::{self, CodecError};

/// A range-partitioned progressive view over a 1-D series.
#[derive(Debug, Clone)]
pub struct PartitionedView {
    partition_len: usize,
    total_len: usize,
    quant_step: f64,
    partitions: Vec<Vec<u8>>,
}

impl PartitionedView {
    /// Build a view. `partition_len` is the slice size (the paper's range
    /// partitions); the last partition may be shorter.
    pub fn build(signal: &[f64], partition_len: usize, quant_step: f64) -> Self {
        assert!(partition_len > 0, "partition length must be positive");
        let partitions = signal
            .chunks(partition_len)
            .map(|chunk| encode::encode(chunk, quant_step))
            .collect();
        PartitionedView {
            partition_len,
            total_len: signal.len(),
            quant_step,
            partitions,
        }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Length of the original series.
    pub fn total_len(&self) -> usize {
        self.total_len
    }

    /// Quantization step used at build time.
    pub fn quant_step(&self) -> f64 {
        self.quant_step
    }

    /// Total encoded bytes across all partitions.
    pub fn total_bytes(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Raw encoded stream of one partition (what a client would download).
    pub fn partition_stream(&self, idx: usize) -> Option<&[u8]> {
        self.partitions.get(idx).map(Vec::as_slice)
    }

    /// Indexes of the partitions overlapping `[start, end)`.
    pub fn partitions_for_range(&self, start: usize, end: usize) -> std::ops::Range<usize> {
        if start >= end || start >= self.total_len {
            return 0..0;
        }
        let end = end.min(self.total_len);
        (start / self.partition_len)..end.div_ceil(self.partition_len)
    }

    /// Reconstruct `[start, end)` using at most `max_levels` detail levels
    /// per partition (`usize::MAX` = exact up to quantization).
    pub fn reconstruct_range(
        &self,
        start: usize,
        end: usize,
        max_levels: usize,
    ) -> Result<Vec<f64>, CodecError> {
        let end = end.min(self.total_len);
        if start >= end {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(end - start);
        for pidx in self.partitions_for_range(start, end) {
            let base = pidx * self.partition_len;
            let decoded = encode::decode_prefix(&self.partitions[pidx], max_levels)?;
            let lo = start.saturating_sub(base);
            let hi = (end - base).min(decoded.len());
            out.extend_from_slice(&decoded[lo..hi]);
        }
        Ok(out)
    }

    /// Serialize the whole view (magic + geometry + length-prefixed
    /// partition streams) for storage as an archive file.
    pub fn to_bytes(&self) -> Vec<u8> {
        let total: usize = self.partitions.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total + 32 + self.partitions.len() * 4);
        out.extend_from_slice(b"HPV1");
        out.extend_from_slice(&(self.total_len as u64).to_le_bytes());
        out.extend_from_slice(&(self.partition_len as u64).to_le_bytes());
        out.extend_from_slice(&self.quant_step.to_le_bytes());
        out.extend_from_slice(&(self.partitions.len() as u32).to_le_bytes());
        for p in &self.partitions {
            out.extend_from_slice(&(p.len() as u32).to_le_bytes());
            out.extend_from_slice(p);
        }
        out
    }

    /// Deserialize a [`PartitionedView::to_bytes`] buffer.
    pub fn from_bytes(data: &[u8]) -> Result<Self, CodecError> {
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], CodecError> {
            if *pos + n > data.len() {
                return Err(CodecError::Truncated("view header"));
            }
            let s = &data[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let mut pos = 0usize;
        if take(&mut pos, 4)? != b"HPV1" {
            return Err(CodecError::BadHeader);
        }
        let total_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
        let partition_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
        if partition_len == 0 {
            return Err(CodecError::BadHeader);
        }
        let quant_step = f64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let mut partitions = Vec::with_capacity(count);
        for _ in 0..count {
            let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            partitions.push(take(&mut pos, len)?.to_vec());
        }
        if pos != data.len() {
            return Err(CodecError::Truncated("trailing bytes after view"));
        }
        Ok(PartitionedView {
            partition_len,
            total_len,
            quant_step,
            partitions,
        })
    }

    /// Bytes a client must download to reconstruct `[start, end)` at
    /// `max_levels` detail levels — the transfer-cost model used by the
    /// approximation ablation (A3) and the StreamCorder cache.
    pub fn bytes_for_range(
        &self,
        start: usize,
        end: usize,
        max_levels: usize,
    ) -> Result<usize, CodecError> {
        let mut total = 0usize;
        for pidx in self.partitions_for_range(start, end) {
            let offsets = encode::prefixes(&self.partitions[pidx])?;
            let k = max_levels.min(offsets.len() - 1);
            total += offsets[k];
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::rmse;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                (t / 100.0).sin() * 50.0 + if i % 977 == 0 { 400.0 } else { 0.0 }
            })
            .collect()
    }

    #[test]
    fn build_and_exact_range() {
        let s = signal(10_000);
        let v = PartitionedView::build(&s, 1024, 0.25);
        assert_eq!(v.partition_count(), 10);
        assert_eq!(v.total_len(), 10_000);
        let r = v.reconstruct_range(2000, 3000, usize::MAX).unwrap();
        assert_eq!(r.len(), 1000);
        assert!(rmse(&s[2000..3000], &r) <= 0.25);
    }

    #[test]
    fn range_spanning_partitions() {
        let s = signal(5000);
        let v = PartitionedView::build(&s, 512, 0.1);
        let r = v.reconstruct_range(500, 1600, usize::MAX).unwrap();
        assert_eq!(r.len(), 1100);
        assert!(rmse(&s[500..1600], &r) <= 0.1);
        assert_eq!(v.partitions_for_range(500, 1600), 0..4);
    }

    #[test]
    fn range_clamped_to_length() {
        let s = signal(1000);
        let v = PartitionedView::build(&s, 300, 0.1);
        let r = v.reconstruct_range(900, 99999, usize::MAX).unwrap();
        assert_eq!(r.len(), 100);
        assert!(v.reconstruct_range(2000, 3000, 1).unwrap().is_empty());
        assert!(v.reconstruct_range(500, 500, 1).unwrap().is_empty());
    }

    #[test]
    fn approximation_costs_fewer_bytes() {
        let s = signal(32_768);
        let v = PartitionedView::build(&s, 4096, 0.25);
        let full = v.bytes_for_range(0, 32_768, usize::MAX).unwrap();
        // 6 of 12 levels: resolution of 64-sample blocks, an order of
        // magnitude below the signal's ~628-sample period.
        let coarse = v.bytes_for_range(0, 32_768, 6).unwrap();
        assert!(
            coarse * 5 < full,
            "coarse {coarse} bytes should be ≪ full {full}"
        );
        // And the coarse reconstruction still tracks the large-scale shape.
        let approx = v.reconstruct_range(0, 32_768, 6).unwrap();
        let coarse_err = rmse(&s, &approx);
        let zero_err = rmse(&s, &vec![0.0; s.len()]);
        assert!(coarse_err < zero_err * 0.8);
    }

    #[test]
    fn range_touches_only_needed_partitions() {
        let s = signal(100_000);
        let v = PartitionedView::build(&s, 10_000, 0.25);
        let one = v.bytes_for_range(15_000, 16_000, usize::MAX).unwrap();
        let all = v.total_bytes();
        assert!(one * 5 < all, "single-partition read {one} vs total {all}");
    }

    #[test]
    fn uneven_tail_partition() {
        let s = signal(1050);
        let v = PartitionedView::build(&s, 500, 0.1);
        assert_eq!(v.partition_count(), 3);
        let r = v.reconstruct_range(1000, 1050, usize::MAX).unwrap();
        assert_eq!(r.len(), 50);
        assert!(rmse(&s[1000..1050], &r) <= 0.1);
    }

    #[test]
    fn serialization_roundtrip() {
        let s = signal(3000);
        let v = PartitionedView::build(&s, 700, 0.25);
        let bytes = v.to_bytes();
        let back = PartitionedView::from_bytes(&bytes).unwrap();
        assert_eq!(back.total_len(), v.total_len());
        assert_eq!(back.partition_count(), v.partition_count());
        assert_eq!(back.quant_step(), v.quant_step());
        let a = v.reconstruct_range(100, 2500, usize::MAX).unwrap();
        let b = back.reconstruct_range(100, 2500, usize::MAX).unwrap();
        assert_eq!(a, b);
        // Corruption detected.
        assert!(PartitionedView::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(PartitionedView::from_bytes(b"nope").is_err());
    }

    #[test]
    fn empty_signal() {
        let v = PartitionedView::build(&[], 128, 1.0);
        assert_eq!(v.partition_count(), 0);
        assert!(v.reconstruct_range(0, 10, 1).unwrap().is_empty());
    }
}
