//! # hedc-wavelet — approximated analysis and visualization support
//!
//! Implements the paper's "novel solution that shortens this holistic
//! response time by at least an order of magnitude" (§3.4): preprocess raw
//! data at load time into **wavelet compressed, range partitioned views**,
//! let analyses and visualizations run on progressively reconstructed
//! approximations, and ship only coefficient prefixes to clients (§6.3).
//!
//! * [`transform`] — orthonormal Haar analysis/synthesis, 1-D and 2-D, for
//!   arbitrary lengths, with progressive (level-capped) reconstruction.
//! * [`encode`] — quantized, sparse, chunk-per-level byte streams whose
//!   prefixes decode to coarser approximations.
//! * [`PartitionedView`] — the §3.4 structure: fixed-size range partitions,
//!   each an independent progressive stream; range queries touch only
//!   overlapping partitions.
//! * [`plots`] — density and extent plots over catalog arrays (§6.3).
//!
//! ```
//! use hedc_wavelet::PartitionedView;
//!
//! // A day of 1-second count bins.
//! let counts: Vec<f64> = (0..86_400).map(|i| (i as f64 / 600.0).sin().abs() * 40.0).collect();
//! let view = PartitionedView::build(&counts, 4096, 0.5);
//!
//! // An interactive client asks for a 2-hour window at low detail:
//! let approx = view.reconstruct_range(3600, 10_800, 4).unwrap();
//! assert_eq!(approx.len(), 7200);
//! // ...at a fraction of the bytes of the full-resolution window.
//! let coarse = view.bytes_for_range(3600, 10_800, 4).unwrap();
//! let full = view.bytes_for_range(3600, 10_800, usize::MAX).unwrap();
//! assert!(coarse < full);
//! ```

#![warn(missing_docs)]

pub mod encode;
pub mod plots;
pub mod transform;
mod view;

pub use encode::{decode_prefix, encode as encode_signal, info, prefixes, CodecError, StreamInfo};
pub use plots::{clusters, Axis, DensityPlot, ExtentPlot};
pub use transform::{
    analyze, analyze_2d, rmse, synthesize, synthesize_2d, Decomposition, Decomposition2d,
};
pub use view::PartitionedView;
