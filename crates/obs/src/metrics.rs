//! Counters, gauges, and fixed-bucket latency histograms.
//!
//! Updates are plain relaxed atomics — the same discipline `DbStats` already
//! uses — so the hot path never takes a lock. The registry itself guards its
//! name → metric maps with a mutex, but that is only hit on first lookup;
//! call sites hold the returned `Arc` and update through it.

use std::collections::BTreeMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotone event counter. `Deref`s to its `AtomicU64` so code written
/// against raw atomics (e.g. `DbStats::bump(&stats.queries)`) keeps working
/// unchanged after migrating the field type.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Deref for Counter {
    type Target = AtomicU64;
    fn deref(&self) -> &AtomicU64 {
        &self.0
    }
}

/// A point-in-time signed level (queue depth, pool occupancy).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket upper bounds in microseconds, roughly logarithmic from 1µs to 60s.
/// A final implicit overflow bucket catches everything above the last bound.
pub const BUCKET_BOUNDS_US: [u64; 24] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

const NBUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

/// Fixed-bucket latency histogram. Recording is wait-free (one bucket
/// increment plus count/sum/min/max updates); percentile extraction walks the
/// bucket array at snapshot time. Estimates are the bucket's upper bound,
/// clamped into the observed `[min, max]` range so a single-sample histogram
/// reports that sample exactly.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NBUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    min_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            min_us: AtomicU64::new(u64::MAX),
            max_us: AtomicU64::new(0),
        }
    }

    fn bucket_for(us: u64) -> usize {
        BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(NBUCKETS - 1)
    }

    /// Record one observation, in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_for(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.min_us.fetch_min(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Record a wall-clock duration, floored at 1µs so any real operation is
    /// distinguishable from "never ran" in the percentiles.
    pub fn record(&self, d: Duration) {
        self.record_us((d.as_micros() as u64).max(1));
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Percentile estimate in microseconds. `q` in [0, 1]; 0 on empty.
    pub fn percentile_us(&self, q: f64) -> u64 {
        let snap_buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = snap_buckets.iter().sum();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        let mut estimate = *BUCKET_BOUNDS_US.last().unwrap();
        for (i, n) in snap_buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                estimate = if i < BUCKET_BOUNDS_US.len() {
                    BUCKET_BOUNDS_US[i]
                } else {
                    self.max_us.load(Ordering::Relaxed)
                };
                break;
            }
        }
        let min = self.min_us.load(Ordering::Relaxed);
        let max = self.max_us.load(Ordering::Relaxed);
        estimate.clamp(min.min(max), max)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            min_us: if count == 0 {
                0
            } else {
                self.min_us.load(Ordering::Relaxed)
            },
            max_us: self.max_us.load(Ordering::Relaxed),
            p50_us: self.percentile_us(0.50),
            p95_us: self.percentile_us(0.95),
            p99_us: self.percentile_us(0.99),
        }
    }
}

/// Point-in-time view of a histogram, all fields in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_us: u64,
    pub min_us: u64,
    pub max_us: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
}

impl HistogramSnapshot {
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// Named metrics, get-or-create by name. One global instance (`global()`)
/// serves the whole process; subsystems that need isolated accounting (the
/// per-`Database` `DbStats`, the simulator) create their own.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Counter value by name; 0 if never registered.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap()
            .get(name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time view of a whole registry, name-sorted.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// The process-wide default registry. Cross-tier instrumentation (pool
/// acquire, PL queue wait, metadb query latency, filestore reads, web
/// requests) all lands here.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.p95_us, 0);
        assert_eq!(s.p99_us, 0);
        assert_eq!(s.min_us, 0);
        assert_eq!(s.max_us, 0);
        assert_eq!(s.mean_us(), 0.0);
    }

    #[test]
    fn single_sample_is_exact_at_every_percentile() {
        let h = Histogram::new();
        h.record_us(137);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        // 137 lands in the (100, 250] bucket, but min/max clamping recovers
        // the exact value.
        assert_eq!(s.p50_us, 137);
        assert_eq!(s.p95_us, 137);
        assert_eq!(s.p99_us, 137);
        assert_eq!(s.min_us, 137);
        assert_eq!(s.max_us, 137);
    }

    #[test]
    fn bucket_assignment_is_inclusive_upper_bound() {
        assert_eq!(Histogram::bucket_for(0), 0);
        assert_eq!(Histogram::bucket_for(1), 0);
        assert_eq!(Histogram::bucket_for(2), 1);
        assert_eq!(Histogram::bucket_for(100), 6);
        assert_eq!(Histogram::bucket_for(101), 7);
        assert_eq!(Histogram::bucket_for(60_000_000), NBUCKETS - 2);
        assert_eq!(Histogram::bucket_for(60_000_001), NBUCKETS - 1);
        assert_eq!(Histogram::bucket_for(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us);
        assert!(s.p50_us >= 500 && s.p50_us <= 1000, "p50={}", s.p50_us);
        assert!(s.p99_us <= s.max_us);
        assert_eq!(s.min_us, 1);
        assert_eq!(s.max_us, 1000);
    }

    #[test]
    fn overflow_bucket_uses_observed_max() {
        let h = Histogram::new();
        h.record_us(90_000_000);
        h.record_us(120_000_000);
        let s = h.snapshot();
        assert_eq!(s.p99_us, 120_000_000);
    }

    #[test]
    fn duration_recording_floors_at_one_microsecond() {
        let h = Histogram::new();
        h.record(Duration::from_nanos(10));
        assert_eq!(h.snapshot().min_us, 1);
    }

    #[test]
    fn registry_get_or_create_returns_same_metric() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.counter_value("x"), 1);
        assert_eq!(r.counter_value("never"), 0);
    }

    #[test]
    fn counter_derefs_to_atomic() {
        let c = Counter::new();
        // The DbStats migration relies on this coercion.
        fn bump(a: &AtomicU64) {
            a.fetch_add(1, Ordering::Relaxed);
        }
        bump(&c);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn registry_snapshot_collects_everything() {
        let r = MetricsRegistry::new();
        r.counter("c1").add(5);
        r.gauge("g1").set(-3);
        r.histogram("h1").record_us(42);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("c1".to_string(), 5)]);
        assert_eq!(s.gauges, vec![("g1".to_string(), -3)]);
        assert_eq!(s.histogram("h1").unwrap().count, 1);
        assert_eq!(s.histogram("h1").unwrap().p50_us, 42);
    }
}
