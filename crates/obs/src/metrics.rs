//! Counters, gauges, and fixed-bucket latency histograms.
//!
//! Updates are plain relaxed atomics — the same discipline `DbStats` already
//! uses — so the hot path never takes a lock. The registry itself guards its
//! name → metric maps with a mutex, but that is only hit on first lookup;
//! call sites hold the returned `Arc` and update through it.

use std::collections::BTreeMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotone event counter. `Deref`s to its `AtomicU64` so code written
/// against raw atomics (e.g. `DbStats::bump(&stats.queries)`) keeps working
/// unchanged after migrating the field type.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Deref for Counter {
    type Target = AtomicU64;
    fn deref(&self) -> &AtomicU64 {
        &self.0
    }
}

/// A point-in-time signed level (queue depth, pool occupancy).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket upper bounds in microseconds, roughly logarithmic from 1µs to 60s.
/// A final implicit overflow bucket catches everything above the last bound.
pub const BUCKET_BOUNDS_US: [u64; 24] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

const NBUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

/// Exemplar slots per bucket: slot 0 holds the most recent traced sample,
/// slot 1 the slowest traced sample seen so far, so a p99 bucket always
/// links to both a fresh trace and the worst one.
const EXEMPLAR_SLOTS: usize = 2;

/// One retained traced sample: links a histogram bucket back to the span
/// tree that produced it. `bucket_us` is the bucket's upper bound
/// (`u64::MAX` for the overflow bucket); `at_us` is microseconds since the
/// process epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Exemplar {
    pub trace_id: u64,
    pub value_us: u64,
    pub at_us: u64,
    pub bucket_us: u64,
}

/// Fixed-bucket latency histogram. Recording is wait-free (one bucket
/// increment plus count/sum/min/max updates); percentile extraction walks the
/// bucket array at snapshot time. Estimates are the bucket's upper bound,
/// clamped into the observed `[min, max]` range so a single-sample histogram
/// reports that sample exactly.
///
/// When the recording thread carries an ambient trace, the sample is also
/// retained as an [`Exemplar`] in its bucket (best effort: exemplar updates
/// go through a `try_lock`, so a contended table drops the link rather than
/// stalling the hot path).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NBUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    min_us: AtomicU64,
    max_us: AtomicU64,
    exemplars: Mutex<Box<[Exemplar]>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            min_us: AtomicU64::new(u64::MAX),
            max_us: AtomicU64::new(0),
            exemplars: Mutex::new(
                vec![Exemplar::default(); NBUCKETS * EXEMPLAR_SLOTS].into_boxed_slice(),
            ),
        }
    }

    /// Upper bound of bucket `i` (`u64::MAX` for the overflow bucket).
    fn bucket_bound(i: usize) -> u64 {
        BUCKET_BOUNDS_US.get(i).copied().unwrap_or(u64::MAX)
    }

    fn bucket_for(us: u64) -> usize {
        BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(NBUCKETS - 1)
    }

    /// Record one observation, in microseconds. Picks up the ambient trace
    /// (if any) as the sample's exemplar link.
    pub fn record_us(&self, us: u64) {
        let bucket = Self::bucket_for(us);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.min_us.fetch_min(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
        if let Some(ctx) = crate::trace::current() {
            self.note_exemplar(bucket, ctx.trace_id, us);
        }
    }

    /// Best-effort exemplar retention: slot 0 of the bucket always takes the
    /// newest traced sample; slot 1 keeps the slowest. Contention skips.
    fn note_exemplar(&self, bucket: usize, trace_id: u64, us: u64) {
        if let Ok(mut table) = self.exemplars.try_lock() {
            let e = Exemplar {
                trace_id,
                value_us: us,
                at_us: crate::now_us(),
                bucket_us: Self::bucket_bound(bucket),
            };
            let base = bucket * EXEMPLAR_SLOTS;
            table[base] = e;
            if table[base + 1].trace_id == 0 || us >= table[base + 1].value_us {
                table[base + 1] = e;
            }
        }
    }

    /// Retained exemplars, slowest first, at most one per trace.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        let table = self.exemplars.lock().unwrap();
        let mut out: Vec<Exemplar> = table.iter().filter(|e| e.trace_id != 0).copied().collect();
        out.sort_by(|a, b| b.value_us.cmp(&a.value_us).then(b.at_us.cmp(&a.at_us)));
        let mut seen = Vec::new();
        out.retain(|e| {
            if seen.contains(&e.trace_id) {
                false
            } else {
                seen.push(e.trace_id);
                true
            }
        });
        out
    }

    /// Record a wall-clock duration, floored at 1µs so any real operation is
    /// distinguishable from "never ran" in the percentiles.
    pub fn record(&self, d: Duration) {
        self.record_us((d.as_micros() as u64).max(1));
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Percentile estimate in microseconds. `q` in [0, 1]; 0 on empty.
    pub fn percentile_us(&self, q: f64) -> u64 {
        let snap_buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = snap_buckets.iter().sum();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        let mut estimate = *BUCKET_BOUNDS_US.last().unwrap();
        for (i, n) in snap_buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                estimate = if i < BUCKET_BOUNDS_US.len() {
                    BUCKET_BOUNDS_US[i]
                } else {
                    self.max_us.load(Ordering::Relaxed)
                };
                break;
            }
        }
        let min = self.min_us.load(Ordering::Relaxed);
        let max = self.max_us.load(Ordering::Relaxed);
        estimate.clamp(min.min(max), max)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            min_us: if count == 0 {
                0
            } else {
                self.min_us.load(Ordering::Relaxed)
            },
            max_us: self.max_us.load(Ordering::Relaxed),
            p50_us: self.percentile_us(0.50),
            p95_us: self.percentile_us(0.95),
            p99_us: self.percentile_us(0.99),
        }
    }
}

/// Point-in-time view of a histogram, all fields in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_us: u64,
    pub min_us: u64,
    pub max_us: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
}

impl HistogramSnapshot {
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// Named metrics, get-or-create by name. One global instance (`global()`)
/// serves the whole process; subsystems that need isolated accounting (the
/// per-`Database` `DbStats`, the simulator) create their own.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Counter value by name; 0 if never registered.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap()
            .get(name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    pub fn snapshot(&self) -> RegistrySnapshot {
        let (histograms, exemplars) = {
            let map = self.histograms.lock().unwrap();
            let histograms: Vec<_> = map.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect();
            let exemplars: Vec<_> = map
                .iter()
                .map(|(k, v)| (k.clone(), v.exemplars()))
                .filter(|(_, e)| !e.is_empty())
                .collect();
            (histograms, exemplars)
        };
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms,
            exemplars,
        }
    }
}

/// Point-in-time view of a whole registry, name-sorted. `exemplars` carries,
/// per histogram that saw traced samples, the retained trace links (slowest
/// first) — the bridge from a p99 entry to its span tree.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
    pub exemplars: Vec<(String, Vec<Exemplar>)>,
}

impl RegistrySnapshot {
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// The process-wide default registry. Cross-tier instrumentation (pool
/// acquire, PL queue wait, metadb query latency, filestore reads, web
/// requests) all lands here.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.p95_us, 0);
        assert_eq!(s.p99_us, 0);
        assert_eq!(s.min_us, 0);
        assert_eq!(s.max_us, 0);
        assert_eq!(s.mean_us(), 0.0);
    }

    #[test]
    fn single_sample_is_exact_at_every_percentile() {
        let h = Histogram::new();
        h.record_us(137);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        // 137 lands in the (100, 250] bucket, but min/max clamping recovers
        // the exact value.
        assert_eq!(s.p50_us, 137);
        assert_eq!(s.p95_us, 137);
        assert_eq!(s.p99_us, 137);
        assert_eq!(s.min_us, 137);
        assert_eq!(s.max_us, 137);
    }

    #[test]
    fn bucket_assignment_is_inclusive_upper_bound() {
        assert_eq!(Histogram::bucket_for(0), 0);
        assert_eq!(Histogram::bucket_for(1), 0);
        assert_eq!(Histogram::bucket_for(2), 1);
        assert_eq!(Histogram::bucket_for(100), 6);
        assert_eq!(Histogram::bucket_for(101), 7);
        assert_eq!(Histogram::bucket_for(60_000_000), NBUCKETS - 2);
        assert_eq!(Histogram::bucket_for(60_000_001), NBUCKETS - 1);
        assert_eq!(Histogram::bucket_for(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us);
        assert!(s.p50_us >= 500 && s.p50_us <= 1000, "p50={}", s.p50_us);
        assert!(s.p99_us <= s.max_us);
        assert_eq!(s.min_us, 1);
        assert_eq!(s.max_us, 1000);
    }

    #[test]
    fn overflow_bucket_uses_observed_max() {
        let h = Histogram::new();
        h.record_us(90_000_000);
        h.record_us(120_000_000);
        let s = h.snapshot();
        assert_eq!(s.p99_us, 120_000_000);
    }

    #[test]
    fn duration_recording_floors_at_one_microsecond() {
        let h = Histogram::new();
        h.record(Duration::from_nanos(10));
        assert_eq!(h.snapshot().min_us, 1);
    }

    #[test]
    fn registry_get_or_create_returns_same_metric() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.counter_value("x"), 1);
        assert_eq!(r.counter_value("never"), 0);
    }

    #[test]
    fn counter_derefs_to_atomic() {
        let c = Counter::new();
        // The DbStats migration relies on this coercion.
        fn bump(a: &AtomicU64) {
            a.fetch_add(1, Ordering::Relaxed);
        }
        bump(&c);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn exemplars_link_buckets_to_traces() {
        let h = Histogram::new();
        // No ambient trace: no exemplar retained.
        let _shield = crate::trace::adopt(None);
        h.record_us(100);
        assert!(h.exemplars().is_empty());

        let root = crate::trace::Span::root("ex.root");
        let t1 = root.context().trace_id;
        h.record_us(120); // (100, 250] bucket
        h.record_us(90_000_000); // overflow bucket
        drop(root);
        let slow = crate::trace::Span::root("ex.slow");
        let t2 = slow.context().trace_id;
        h.record_us(200); // same (100, 250] bucket, slower
        drop(slow);

        let ex = h.exemplars();
        // Slowest first; one entry per trace.
        assert_eq!(ex[0].value_us, 90_000_000);
        assert_eq!(ex[0].trace_id, t1);
        assert_eq!(ex[0].bucket_us, u64::MAX);
        let in_bucket: Vec<_> = ex.iter().filter(|e| e.bucket_us == 250).collect();
        // Slot 0 (recent) and slot 1 (slowest) both hold the 200us sample
        // from t2, deduped to one entry.
        assert_eq!(in_bucket.len(), 1);
        assert_eq!(in_bucket[0].trace_id, t2);
        assert_eq!(in_bucket[0].value_us, 200);
    }

    #[test]
    fn exemplar_slots_keep_recent_and_slowest() {
        let h = Histogram::new();
        let _shield = crate::trace::adopt(None);
        let a = crate::trace::Span::root("ex.a");
        let ta = a.context().trace_id;
        h.record_us(240);
        drop(a);
        let b = crate::trace::Span::root("ex.b");
        let tb = b.context().trace_id;
        h.record_us(110); // same bucket, faster, but more recent
        drop(b);
        let ex = h.exemplars();
        let traces: Vec<u64> = ex.iter().map(|e| e.trace_id).collect();
        // Slowest (a) survives in slot 1, most recent (b) in slot 0.
        assert!(traces.contains(&ta) && traces.contains(&tb), "{ex:?}");
        assert_eq!(ex[0].trace_id, ta, "slowest first");
    }

    #[test]
    fn registry_snapshot_collects_everything() {
        let r = MetricsRegistry::new();
        r.counter("c1").add(5);
        r.gauge("g1").set(-3);
        r.histogram("h1").record_us(42);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("c1".to_string(), 5)]);
        assert_eq!(s.gauges, vec![("g1".to_string(), -3)]);
        assert_eq!(s.histogram("h1").unwrap().count, 1);
        assert_eq!(s.histogram("h1").unwrap().p50_us, 42);
    }
}
